"""``sample_fraction=0`` bit-identity guard for the fidelity-tiering layer.

The tiering wrapper must be free when it is off: a
``TieredServiceModel(base, sample_fraction=0)`` fleet has to produce the
*byte-identical* report of the unwrapped ``base`` fleet — same tables,
same formatted text, no tier section.  Together with the committed
E10/E11/E12 goldens (which run un-wrapped fleets through the same
simulator paths the tier column was threaded into) this pins the
acceptance criterion that fraction-0 leaves every pre-tiering report
unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    PoissonArrivals,
    ServingSimulator,
    StarServiceModel,
    TieredServiceModel,
)


def _reports():
    requests = PoissonArrivals(400.0, seq_len=128, seed=11).generate(300)
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)

    def run(model):
        fleet = ChipFleet(model, num_chips=2)
        return ServingSimulator(fleet, batcher).run(requests)

    base = StarServiceModel(seq_len=128)
    return run(base), run(TieredServiceModel(base, sample_fraction=0.0, seed=11))


def test_fraction_zero_report_is_byte_identical():
    plain, wrapped = _reports()
    assert wrapped.format_table() == plain.format_table()
    assert wrapped.summary() == plain.summary()


def test_fraction_zero_tables_match_exactly():
    plain, wrapped = _reports()
    assert np.array_equal(wrapped.requests.completion_s, plain.requests.completion_s)
    assert np.array_equal(wrapped.batches.energy_j, plain.batches.energy_j)
    assert np.array_equal(wrapped.batches.tier, np.zeros(len(plain.batches)))


def test_fraction_zero_never_shows_the_tier_section():
    _, wrapped = _reports()
    assert not wrapped.tiering_enabled
    assert "fidelity tiers" not in wrapped.format_table()
