"""STAR's RRAM softmax engine: CAM/SUB + exponential unit + divider.

This is the paper's central contribution.  The engine processes one softmax
row (one row of the attention-score matrix) as follows:

1. the **CAM/SUB crossbar** quantises the scores, finds ``x_max`` by CAM
   search and produces the non-negative differences ``x_max - x_i``
   (:mod:`repro.core.cam_sub`);
2. the **exponential unit** looks every difference up in the CAM/LUT pair,
   accumulates the per-level histogram in counters and produces the
   denominator with one VMM-crossbar pass (:mod:`repro.core.exponent`);
3. the **divider** normalises each exponential by the denominator
   (:mod:`repro.core.divider`).

With ideal devices the output is bit-identical to the functional
:class:`repro.nn.softmax_models.FixedPointSoftmax` model, which is what the
accuracy experiments use at scale; this class additionally accounts the
area, power, latency and energy that Table I and Fig. 3 need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.energy import EnergyLedger
from repro.core.cam_sub import CamSubCrossbar
from repro.core.config import SoftmaxEngineConfig
from repro.core.divider import DividerUnit
from repro.core.exponent import ExponentialUnit
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.validation import as_1d_float_array

__all__ = ["SoftmaxRowTrace", "RRAMSoftmaxEngine"]


@dataclass(frozen=True)
class SoftmaxRowTrace:
    """Intermediate values of one row for debugging and tests."""

    quantized_scores: np.ndarray
    max_value: float
    differences: np.ndarray
    exponentials: np.ndarray
    denominator: float
    probabilities: np.ndarray


class RRAMSoftmaxEngine:
    """The complete RRAM-crossbar softmax engine."""

    name = "STAR RRAM softmax"

    def __init__(self, config: SoftmaxEngineConfig | None = None) -> None:
        self.config = config or SoftmaxEngineConfig()
        self.cam_sub = CamSubCrossbar(self.config)
        self.exponential = ExponentialUnit(self.config)
        self.divider = DividerUnit(bits=self.config.divider_bits)
        self.rows_processed = 0

    @property
    def fmt(self) -> FixedPointFormat:
        """The fixed-point input format the engine is configured for."""
        return self.config.fmt

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    def softmax_row(self, scores: np.ndarray) -> np.ndarray:
        """Softmax of a single score vector."""
        return self.softmax_row_trace(scores).probabilities

    def softmax_row_trace(self, scores: np.ndarray) -> SoftmaxRowTrace:
        """Softmax of a single score vector, returning every intermediate."""
        vector = as_1d_float_array(scores, "scores")
        cam_result = self.cam_sub.process(vector)
        exp_result = self.exponential.process(cam_result.difference_codes)
        probabilities = self.divider.divide(exp_result.exponentials, exp_result.denominator)
        self.rows_processed += 1
        return SoftmaxRowTrace(
            quantized_scores=self.cam_sub.quantize_scores(vector),
            max_value=cam_result.max_value,
            differences=cam_result.differences,
            exponentials=exp_result.exponentials,
            denominator=exp_result.denominator,
            probabilities=probabilities,
        )

    def softmax(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Softmax along ``axis`` of an arbitrary-rank array (row by row)."""
        arr = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(arr, axis, -1)
        flat = moved.reshape(-1, moved.shape[-1])
        out = np.empty_like(flat)
        for i in range(flat.shape[0]):
            out[i] = self.softmax_row(flat[i])
        return np.moveaxis(out.reshape(moved.shape), -1, axis)

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Alias for :meth:`softmax`, so the engine plugs into the NN layers."""
        return self.softmax(x, axis=axis)

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Total engine area: both crossbar groups plus the divider."""
        return (
            self.cam_sub.area_um2()
            + self.exponential.area_um2()
            + self.divider.area_um2()
        )

    def area_mm2(self) -> float:
        """Total engine area in mm^2."""
        return self.area_um2() * 1e-6

    def row_latency_s(self, seq_len: int, parallel_dividers: int = 4) -> float:
        """Latency of one softmax row of ``seq_len`` elements.

        The divider stage is provisioned with a small number of parallel
        sequential dividers; divisions of one row overlap with the CAM/LUT
        processing of the next, so only the residual (non-overlapped) share
        is charged here.
        """
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        if parallel_dividers < 1:
            raise ValueError(f"parallel_dividers must be >= 1, got {parallel_dividers}")
        cam_sub = self.cam_sub.row_latency_s(seq_len)
        exponent = self.exponential.row_latency_s(seq_len)
        divide_passes = -(-seq_len // parallel_dividers)
        divide = divide_passes * self.divider.divide_latency_s()
        overlap = min(divide, cam_sub + exponent)
        return cam_sub + exponent + divide - 0.5 * overlap

    def row_energy_j(self, seq_len: int) -> float:
        """Energy of one softmax row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return (
            self.cam_sub.row_energy_j(seq_len)
            + self.exponential.row_energy_j(seq_len)
            + seq_len * self.divider.divide_energy_j()
        )

    def power_w(self, seq_len: int = 128) -> float:
        """Average power while continuously processing rows of ``seq_len``."""
        return self.row_energy_j(seq_len) / self.row_latency_s(seq_len)

    def element_energy_j(self) -> float:
        """Average energy per softmax element at a representative row length."""
        seq_len = 128
        return self.row_energy_j(seq_len) / seq_len

    def row_ledger(self, seq_len: int) -> EnergyLedger:
        """Per-component ledger for one softmax row (used by Table I)."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        ledger = EnergyLedger()
        ledger.record(
            "CAM/SUB crossbar",
            energy_j=self.cam_sub.row_energy_j(seq_len),
            latency_s=self.cam_sub.row_latency_s(seq_len),
        )
        ledger.record_area("CAM/SUB crossbar", self.cam_sub.area_um2())
        ledger.record(
            "exponential unit (CAM+LUT+VMM+counters)",
            energy_j=self.exponential.row_energy_j(seq_len),
            latency_s=self.exponential.row_latency_s(seq_len),
        )
        ledger.record_area(
            "exponential unit (CAM+LUT+VMM+counters)", self.exponential.area_um2()
        )
        ledger.record(
            "divider",
            energy_j=seq_len * self.divider.divide_energy_j(),
            latency_s=seq_len * self.divider.divide_latency_s(),
        )
        ledger.record_area("divider", self.divider.area_um2())
        return ledger

    def throughput_rows_per_s(self, seq_len: int = 128) -> float:
        """Softmax rows per second at full utilisation."""
        return 1.0 / self.row_latency_s(seq_len)
