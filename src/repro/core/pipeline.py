"""Attention-pipeline timing models: operand-grained vs STAR's vector-grained.

The attention mechanism is a three-stage producer/consumer chain per head:

    score GEMM (Q K^T)  ->  softmax  ->  context GEMM (A V)

Prior RRAM accelerators schedule it at *operand* granularity: the softmax
stage cannot start until the whole score matrix exists, and the context GEMM
cannot start until the whole attention matrix exists.  Because STAR's
softmax also lives in crossbars with row-at-a-time throughput, the paper
pipelines at *vector* granularity: as soon as the MatMul engine finishes one
score row it is handed to the softmax engine while the next row is being
computed, and finished attention rows immediately feed the context GEMM.

These classes compute the end-to-end latency of both schedules from the
per-row latencies of the stages, and the resulting speedup — the quantity
the E7 ablation reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PipelineConfig
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["StageTiming", "PipelineSchedule", "AttentionPipeline", "attention_streams"]


def attention_streams(
    num_heads: int,
    batch_size: int,
    num_tiles: int,
    tiles_per_stream: int = 2,
) -> int:
    """How many attention head-streams can proceed concurrently on the tiles.

    Each stream (one head of one sequence) keeps its ``K^T`` and ``V``
    operands resident in ``tiles_per_stream`` crossbar tiles; streams beyond
    the tile budget are serialised.  The result scales the effective per-row
    GEMM latencies seen by the pipeline model.
    """
    require_positive(num_heads, "num_heads")
    require_positive(batch_size, "batch_size")
    require_positive(num_tiles, "num_tiles")
    require_positive(tiles_per_stream, "tiles_per_stream")
    return max(1, min(num_heads * batch_size, num_tiles // tiles_per_stream))


@dataclass(frozen=True)
class StageTiming:
    """Per-row latencies of the three attention stages.

    Attributes
    ----------
    score_row_s:
        Time for the MatMul engine to produce one row of ``Q K^T``.
    softmax_row_s:
        Time for the softmax engine to process one score row.
    context_row_s:
        Time for the MatMul engine to produce one row of ``A V``.
    num_rows:
        Number of rows flowing through the pipeline
        (``num_heads * seq_len`` per layer, times batch).
    """

    score_row_s: float
    softmax_row_s: float
    context_row_s: float
    num_rows: int

    def __post_init__(self) -> None:
        # zero-cost stages are legitimate ablation points (e.g. "what if
        # softmax were free?"), so only negative latencies are rejected
        require_non_negative(self.score_row_s, "score_row_s")
        require_non_negative(self.softmax_row_s, "softmax_row_s")
        require_non_negative(self.context_row_s, "context_row_s")
        if self.num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {self.num_rows}")

    @property
    def bottleneck_row_s(self) -> float:
        """Slowest stage's per-row latency (the steady-state pipeline interval)."""
        return max(self.score_row_s, self.softmax_row_s, self.context_row_s)

    @property
    def sum_row_s(self) -> float:
        """Sum of all stage latencies for one row (the pipeline fill time)."""
        return self.score_row_s + self.softmax_row_s + self.context_row_s


@dataclass(frozen=True)
class PipelineSchedule:
    """Latency of one attention computation under a given schedule."""

    granularity: str
    total_latency_s: float
    steady_state_interval_s: float

    def __post_init__(self) -> None:
        # an all-zero-stage ablation with zero handoff yields total == 0
        require_non_negative(self.total_latency_s, "total_latency_s")
        require_non_negative(self.steady_state_interval_s, "steady_state_interval_s")


class AttentionPipeline:
    """Computes attention latency under operand- or vector-grained scheduling."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------ #
    # schedules
    # ------------------------------------------------------------------ #
    def operand_grained_latency(self, timing: StageTiming) -> PipelineSchedule:
        """Coarse schedule: each stage finishes all rows before the next starts."""
        handoff = self.config.stage_handoff_s
        total = (
            timing.num_rows * timing.score_row_s
            + timing.num_rows * timing.softmax_row_s
            + timing.num_rows * timing.context_row_s
            + 2 * handoff
        )
        return PipelineSchedule(
            granularity="operand",
            total_latency_s=total,
            steady_state_interval_s=timing.sum_row_s,
        )

    def vector_grained_latency(self, timing: StageTiming) -> PipelineSchedule:
        """STAR's schedule: rows stream through the three stages back to back."""
        handoff = self.config.stage_handoff_s
        fill = timing.sum_row_s + 2 * handoff
        steady = timing.bottleneck_row_s + handoff
        total = fill + (timing.num_rows - 1) * steady
        return PipelineSchedule(
            granularity="vector",
            total_latency_s=total,
            steady_state_interval_s=steady,
        )

    def latency(self, timing: StageTiming) -> PipelineSchedule:
        """Latency under the configured granularity."""
        if self.config.granularity == "vector":
            return self.vector_grained_latency(timing)
        return self.operand_grained_latency(timing)

    def speedup(self, timing: StageTiming) -> float:
        """Vector-grained speedup over the operand-grained schedule."""
        coarse = self.operand_grained_latency(timing).total_latency_s
        fine = self.vector_grained_latency(timing).total_latency_s
        if fine == 0.0:
            # all-zero stages with zero handoff: both schedules are free,
            # which can only mean parity
            return 1.0
        return coarse / fine
