"""Data converters and analog peripherals for RRAM crossbars.

An analog crossbar needs a fence of mixed-signal circuits around it:

* **DAC** — drives the wordlines with voltages proportional to the digital
  input vector (in STAR's MatMul engine the input is streamed bit-serially,
  so a 1-bit DAC / wordline driver suffices; the Softmax engine's VMM
  crossbar receives multi-bit counter values and uses a multi-bit DAC).
* **ADC** — converts the accumulated bitline current back to a digital code.
  The MatMul engine follows ReTransformer and uses 5-bit ADCs.
* **Sense amplifier (SA)** — a 1-bit comparator used on CAM matchlines and
  LUT bitlines, much cheaper than a full ADC.
* **Sample & hold (S&H)** — holds the bitline current while the (shared)
  ADC is multiplexed across columns.

Area / power / latency constants follow the values commonly used in the PIM
literature (ISAAC, PipeLayer, NeuroSim at 32 nm), scaled with resolution for
the ADC (area and power grow roughly exponentially with bit count for SAR
ADCs at these speeds).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_in_range, require_positive

__all__ = ["ADC", "DAC", "SenseAmplifier", "SampleAndHold"]


@dataclass(frozen=True)
class ADC:
    """Successive-approximation ADC model.

    The default 8-bit reference point (area 3000 um^2, 2 mW at 1.28 GS/s)
    matches the ISAAC/NeuroSim assumptions; other resolutions are scaled by
    ``2 ** (bits - 8)`` for area/power and linearly for latency, which is the
    standard first-order SAR scaling used in architecture papers.
    """

    bits: int = 5
    reference_bits: int = 8
    reference_area_um2: float = 3000.0
    reference_power_w: float = 2.0e-3
    conversion_time_s: float = 1.0e-9

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError(f"ADC bits must be in [1, 16], got {self.bits}")
        require_positive(self.reference_area_um2, "reference_area_um2")
        require_positive(self.reference_power_w, "reference_power_w")
        require_positive(self.conversion_time_s, "conversion_time_s")

    @property
    def num_levels(self) -> int:
        """Number of output codes."""
        return 1 << self.bits

    @property
    def area_um2(self) -> float:
        """Area scaled from the 8-bit reference design."""
        return self.reference_area_um2 * 2.0 ** (self.bits - self.reference_bits)

    @property
    def power_w(self) -> float:
        """Power scaled from the 8-bit reference design."""
        return self.reference_power_w * 2.0 ** (self.bits - self.reference_bits)

    @property
    def latency_s(self) -> float:
        """One conversion; SAR ADCs need one cycle per bit."""
        return self.conversion_time_s * self.bits / self.reference_bits * self.reference_bits

    @property
    def energy_per_conversion_j(self) -> float:
        """Energy of a single conversion."""
        return self.power_w * self.latency_s

    def quantize(self, values: np.ndarray, full_scale: float) -> np.ndarray:
        """Quantise analog values in ``[0, full_scale]`` to ADC codes.

        Values outside the range saturate, modelling ADC clipping.  Accepts
        arrays of any shape — the batched crossbar backend passes whole
        ``(batch, cols)`` current blocks through one call.
        """
        require_positive(full_scale, "full_scale")
        arr = np.asarray(values, dtype=np.float64)
        codes = np.rint(arr / full_scale * (self.num_levels - 1))
        return np.clip(codes, 0, self.num_levels - 1).astype(np.int64)

    def dequantize(self, codes: np.ndarray, full_scale: float) -> np.ndarray:
        """Map ADC codes back to the analog value they represent."""
        require_positive(full_scale, "full_scale")
        return np.asarray(codes, dtype=np.float64) / (self.num_levels - 1) * full_scale

    def _convert_chain(
        self, values: np.ndarray, full_scale: float, low_code: int, out: np.ndarray | None
    ) -> np.ndarray:
        """Shared quantise/dequantise chain, optionally fully in place."""
        require_positive(full_scale, "full_scale")
        arr = np.asarray(values, dtype=np.float64)
        max_code = self.num_levels - 1
        if out is None:
            out = np.empty_like(arr)
        np.multiply(arr, max_code / full_scale, out=out)
        np.rint(out, out=out)
        np.clip(out, low_code, max_code, out=out)
        np.multiply(out, full_scale / max_code, out=out)
        return out

    def convert(
        self, values: np.ndarray, full_scale: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Quantise and immediately dequantise (the value seen downstream).

        Equivalent to ``dequantize(quantize(...))`` up to floating-point
        association (the scaling is fused into one multiply per direction),
        skipping the integer round-trip; with ``out=`` no temporaries are
        allocated.  Both matter on the batched crossbar hot path.
        """
        return self._convert_chain(values, full_scale, 0, out)

    def convert_signed(
        self, values: np.ndarray, full_scale: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Sign-magnitude conversion: ``sign(v) * convert(|v|, full_scale)``.

        Differential crossbars convert the magnitude of the (signed) column
        current difference and reapply the sign.  ``rint`` rounds half to
        even symmetrically and clipping is symmetric, so this fused form is
        value-identical to the explicit sign/abs/convert sequence.
        """
        return self._convert_chain(values, full_scale, -(self.num_levels - 1), out)


@dataclass(frozen=True)
class DAC:
    """Wordline driver / DAC model.

    A 1-bit "DAC" is simply a wordline driver; multi-bit DACs scale linearly
    in area and power with resolution at these small bit counts.
    """

    bits: int = 1
    area_um2_per_bit: float = 0.17
    power_w_per_bit: float = 0.5e-6
    latency_s: float = 0.5e-9

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError(f"DAC bits must be in [1, 16], got {self.bits}")
        require_positive(self.area_um2_per_bit, "area_um2_per_bit")
        require_positive(self.power_w_per_bit, "power_w_per_bit")
        require_positive(self.latency_s, "latency_s")

    @property
    def num_levels(self) -> int:
        """Number of distinct drive voltages."""
        return 1 << self.bits

    @property
    def area_um2(self) -> float:
        """Area of one DAC."""
        return self.area_um2_per_bit * self.bits

    @property
    def power_w(self) -> float:
        """Power of one DAC while driving."""
        return self.power_w_per_bit * self.bits

    @property
    def energy_per_conversion_j(self) -> float:
        """Energy of driving one value onto a wordline."""
        return self.power_w * self.latency_s

    def drive(self, codes: np.ndarray, v_read: float) -> np.ndarray:
        """Convert digital codes to wordline voltages in ``[0, v_read]``.

        Element-wise over arrays of any shape; the batched crossbar backend
        drives a whole ``(batch, rows)`` code block in one call.
        """
        require_positive(v_read, "v_read")
        arr = np.asarray(codes, dtype=np.float64)
        max_code = self.num_levels - 1
        clipped = np.clip(arr, 0, max_code)
        return clipped / max_code * v_read


@dataclass(frozen=True)
class SenseAmplifier:
    """1-bit current sense amplifier used on CAM matchlines and LUT bitlines."""

    area_um2: float = 15.0
    power_w: float = 5.0e-6
    latency_s: float = 0.5e-9
    threshold_a: float = 1.0e-6

    def __post_init__(self) -> None:
        require_positive(self.area_um2, "area_um2")
        require_positive(self.power_w, "power_w")
        require_positive(self.latency_s, "latency_s")
        require_positive(self.threshold_a, "threshold_a")

    @property
    def energy_per_sense_j(self) -> float:
        """Energy of one sensing operation."""
        return self.power_w * self.latency_s

    def sense(self, currents: np.ndarray) -> np.ndarray:
        """Threshold bitline/matchline currents into digital 0/1."""
        arr = np.asarray(currents, dtype=np.float64)
        return (arr >= self.threshold_a).astype(np.int64)


@dataclass(frozen=True)
class SampleAndHold:
    """Sample-and-hold buffer between a bitline and a time-shared ADC."""

    area_um2: float = 10.0
    power_w: float = 1.0e-6
    latency_s: float = 0.2e-9

    def __post_init__(self) -> None:
        require_positive(self.area_um2, "area_um2")
        require_positive(self.power_w, "power_w")
        require_positive(self.latency_s, "latency_s")

    @property
    def energy_per_sample_j(self) -> float:
        """Energy of holding one sample."""
        return self.power_w * self.latency_s
