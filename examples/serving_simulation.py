"""Request-level serving: Poisson traffic against a STAR chip fleet.

Run with:  python examples/serving_simulation.py

The paper times one attention stage; this script runs the layer production
serving actually cares about.  Open-loop Poisson requests (BERT-base
inference queries, seq 128) stream into a fleet of STAR chips through a
dynamic batcher; the simulator — built on the same discrete-event core as
the attention-pipeline executor — reports sustained throughput, p50/p95/p99
tail latency, queue depths, chip utilization and energy per query, and the
single-chip no-batching limit is checked against the M/D/1
Pollaczek–Khinchine prediction.
"""

from __future__ import annotations

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    MD1Queue,
    NO_BATCHING,
    PoissonArrivals,
    ServingSimulator,
    StarServiceModel,
    TraceArrivals,
)


def main() -> None:
    model = StarServiceModel()
    service = model.batch_latency_s(1, 128)
    print(f"One BERT-base (L=128) inference occupies a STAR chip for {service * 1e3:.3f} ms")

    # 1. single chip, no batching, rho = 0.7 — the M/D/1 textbook regime
    rate = 0.7 / service
    arrivals = PoissonArrivals(rate_rps=rate, seq_len=128, seed=0)
    report = ServingSimulator(ChipFleet(model, num_chips=1), NO_BATCHING).run(
        arrivals.generate(20000)
    )
    theory = MD1Queue(arrival_rate_rps=rate, service_s=service)
    print(f"\n--- single chip at rho=0.7, no batching ({rate:.0f} req/s offered) ---")
    print(report.format_table())
    print(
        f"M/D/1 Pollaczek-Khinchine check: simulated mean wait "
        f"{report.mean_wait_s * 1e3:.3f} ms vs theory {theory.mean_wait_s * 1e3:.3f} ms"
    )

    # 2. a 4-chip fleet with dynamic batching at 80% of capacity
    fleet = ChipFleet(model, num_chips=4)
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
    rate = 0.8 * 4 / service
    report = ServingSimulator(fleet, batcher).run(
        PoissonArrivals(rate_rps=rate, seq_len=128, seed=1).generate(4000)
    )
    print(f"\n--- 4-chip fleet at 80% load, batch<=8 + 2 ms timeout ---")
    print(report.format_table())

    # 3. a bursty trace no closed form expresses: on/off traffic with a
    #    mixed sequence-length population
    burst_times = [cycle * 0.1 + i * 0.0005 for cycle in range(40) for i in range(60)]
    trace = TraceArrivals(burst_times, seq_len=(64, 128, 256), seed=2)
    report = ServingSimulator(fleet, batcher).run(trace.generate())
    print("\n--- bursty on/off trace, mixed lengths {64, 128, 256} ---")
    print(report.format_table())


if __name__ == "__main__":
    main()
