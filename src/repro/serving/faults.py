"""Chip failure/repair processes, retries and graceful degradation.

The serving simulator of PRs 4–5 assumed an always-healthy fleet.  This
module supplies the three pieces a production fleet needs when hardware
misbehaves, each usable on its own and composed by
:class:`~repro.serving.simulator.ServingSimulator`:

* :class:`FaultInjector` — per-chip MTBF/MTTR failure–repair processes.
  Each chip draws its time-to-failure from an independent exponential
  stream (its own :class:`numpy.random.Generator`, spawned from one seed
  sequence, so fault draws never perturb arrival or jitter streams).  The
  repair that follows a failure is a *maintenance event with a physical
  price*: the chip's tile bank lost its conductance state, so repair time
  is detection/drain overhead plus the full-model operand reprogramming
  cost from :meth:`~repro.core.batch_cost.BatchCostModel.maintenance_reprogram_latency_s`
  (exposed per chip as ``ChipFleet.reprogram_latency_s``), not a magic
  constant.
* :class:`RetryPolicy` — what happens to the in-flight requests of a
  failed batch: bounded attempts, exponential backoff with seeded jitter,
  and a per-request completion deadline.  The backoff is deadline-aware —
  a retry whose re-enqueue time already exceeds the request's deadline is
  abandoned instead of queued, so a dying request never wastes queue
  capacity.
* :class:`AdmissionController` — graceful degradation under the capacity
  the faults remove: a bounded queue that sheds arrivals when full,
  deadline-based shedding of queued requests that can no longer make
  their SLO, and an optional degraded mode that caps batch size while any
  chip is down (smaller batches shrink the blast radius of the next
  failure).

Every process is seeded and deterministic; a fault-injected simulation is
exactly reproducible, and with no :class:`FaultInjector` the simulator's
healthy path is bit-identical to the pre-fault code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import (
    require_finite,
    require_non_negative,
    require_positive,
)

__all__ = [
    "RetryPolicy",
    "AdmissionController",
    "NO_ADMISSION",
    "FaultInjector",
    "FaultSession",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry semantics for requests lost to a chip failure.

    Attributes
    ----------
    max_attempts:
        Total service attempts a request may consume (first dispatch
        included); a request lost on its ``max_attempts``-th attempt is
        abandoned.
    backoff_base_s:
        Back-off before the first retry re-enters the queue.
    backoff_multiplier:
        Growth factor of the back-off per further retry (exponential
        back-off; 1.0 keeps it constant).
    jitter:
        Uniform ±fraction applied to each back-off (decorrelates the retry
        herd of one lost batch).  Drawn from the fault session's dedicated
        jitter stream, never from arrival or failure streams.
    deadline_s:
        Per-request completion deadline, relative to its arrival.  ``None``
        disables deadline awareness: requests retry until attempts run out
        and are never shed as expired.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1e-3
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        require_positive(self.max_attempts, "max_attempts")
        require_finite(self.backoff_base_s, "backoff_base_s")
        require_non_negative(self.backoff_base_s, "backoff_base_s")
        require_positive(self.backoff_multiplier, "backoff_multiplier")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_s is not None:
            require_finite(self.deadline_s, "deadline_s")
            require_positive(self.deadline_s, "deadline_s")

    def nominal_backoff_s(self, attempt: int) -> float:
        """Jitter-free back-off after the ``attempt``-th failed attempt.

        Non-decreasing in ``attempt`` (the property suite pins this), with
        ``attempt = 1`` the first retry.
        """
        require_positive(attempt, "attempt")
        return self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)

    def backoff_s(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Jittered back-off after the ``attempt``-th failed attempt."""
        nominal = self.nominal_backoff_s(attempt)
        if rng is None or self.jitter == 0.0:
            return nominal
        return nominal * float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))

    def deadline_of(self, arrival_s: float) -> float:
        """Absolute completion deadline of a request (inf when disabled)."""
        if self.deadline_s is None:
            return float("inf")
        return arrival_s + self.deadline_s


@dataclass(frozen=True)
class AdmissionController:
    """Load shedding and degraded-mode policy of the serving queue.

    Attributes
    ----------
    max_queue_depth:
        Bound on the number of queued requests; an arrival (or retry
        re-entry) finding the queue full is shed.  ``None`` keeps the
        queue unbounded — the configuration whose fault response is queue
        blow-up, kept as the explicit baseline the e11 sweep degrades
        gracefully against.
    shed_expired:
        Drop queued requests whose deadline has already passed when they
        reach the head of the queue, instead of spending chip time on work
        nobody is waiting for.  Needs a :class:`RetryPolicy` deadline to
        have any effect.
    degraded_max_batch:
        Batch-size cap applied while any chip is failed (``None`` keeps the
        batcher's cap).  Smaller batches under degradation shrink the blast
        radius: the next failure loses fewer in-flight requests.
    """

    max_queue_depth: int | None = None
    shed_expired: bool = True
    degraded_max_batch: int | None = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None:
            require_positive(self.max_queue_depth, "max_queue_depth")
        if self.degraded_max_batch is not None:
            require_positive(self.degraded_max_batch, "degraded_max_batch")

    def admits(self, queue_depth: int) -> bool:
        """Whether a new arrival may join a queue currently this deep."""
        return self.max_queue_depth is None or queue_depth < self.max_queue_depth


#: Accept everything, serve everything: the pre-admission-control queue.
NO_ADMISSION = AdmissionController(max_queue_depth=None, shed_expired=False)


class FaultSession:
    """The random streams of one fault-injected simulation run.

    Created by :meth:`FaultInjector.session` per simulation; owning the
    generators here (not on the injector) keeps the injector reusable —
    every run over the same injector replays the same failure history.
    Streams are spawned from one :class:`numpy.random.SeedSequence`, so
    per-chip failure processes are mutually independent and adding chips
    never reshuffles existing chips' draws; the retry-jitter stream is the
    last spawn, independent of them all.
    """

    def __init__(self, injector: "FaultInjector", num_chips: int) -> None:
        require_positive(num_chips, "num_chips")
        self.injector = injector
        root = (
            injector.seed
            if isinstance(injector.seed, np.random.SeedSequence)
            else np.random.SeedSequence(injector.seed)
        )
        children = root.spawn(num_chips + 1)
        self._chip_rngs = [np.random.default_rng(seq) for seq in children[:num_chips]]
        self.jitter_rng = np.random.default_rng(children[num_chips])

    def time_to_failure_s(self, chip: int) -> float:
        """Exponential time from (re)entering service to the next failure."""
        return float(self._chip_rngs[chip].exponential(self.injector.mtbf_s))

    def downtime_s(self, chip: int, repair_s: float) -> float:
        """Total downtime of one failure: detection/drain plus the repair.

        ``repair_s`` is the chip's reprogramming cost from the fleet; the
        injector's ``repair_s`` override (when set) replaces it.  The
        duration is deterministic — a maintenance cost, not a draw.
        """
        if self.injector.repair_s is not None:
            repair_s = self.injector.repair_s
        return self.injector.detection_s + repair_s


@dataclass(frozen=True)
class FaultInjector:
    """Per-chip MTBF/MTTR failure–repair configuration.

    Attributes
    ----------
    mtbf_s:
        Mean time between failures of one chip, measured from the moment
        it (re)enters service; times-to-failure are exponential.
    detection_s:
        Downtime before repair begins: failure detection, fleet drain,
        operator response.  This usually dominates the physical rewrite.
    repair_s:
        Repair duration override.  ``None`` (the default) derives it from
        the failed chip's full-model operand reprogramming cost
        (``ChipFleet.reprogram_latency_s``) — the physically grounded
        maintenance event; a float forces a fixed duration (synthetic
        service models that price no reprogramming).
    seed:
        Seed of the per-chip failure streams and the retry-jitter stream —
        an integer, or a :class:`numpy.random.SeedSequence` (how the
        sharded simulator hands each shard an independent fault tree).

    ``steady_state_availability`` gives the long-run healthy fraction of
    one chip under a given repair duration — the knob the e11 sweep turns
    to hold capacity loss at, say, 10%.
    """

    mtbf_s: float
    detection_s: float = 0.0
    repair_s: float | None = None
    seed: int | np.random.SeedSequence = 0

    def __post_init__(self) -> None:
        require_finite(self.mtbf_s, "mtbf_s")
        require_positive(self.mtbf_s, "mtbf_s")
        require_finite(self.detection_s, "detection_s")
        require_non_negative(self.detection_s, "detection_s")
        if self.repair_s is not None:
            require_finite(self.repair_s, "repair_s")
            require_non_negative(self.repair_s, "repair_s")

    def session(self, num_chips: int) -> FaultSession:
        """Fresh, reproducible random streams for one simulation run."""
        return FaultSession(self, num_chips)

    def mean_downtime_s(self, repair_s: float) -> float:
        """Downtime per failure given a chip's reprogramming cost."""
        if self.repair_s is not None:
            repair_s = self.repair_s
        return self.detection_s + repair_s

    def steady_state_availability(self, repair_s: float) -> float:
        """Long-run healthy fraction of one chip: MTBF / (MTBF + MTTR)."""
        downtime = self.mean_downtime_s(repair_s)
        return self.mtbf_s / (self.mtbf_s + downtime)

    @classmethod
    def for_capacity_loss(
        cls,
        loss: float,
        repair_s: float,
        detection_s: float = 0.0,
        seed: int = 0,
    ) -> "FaultInjector":
        """An injector whose steady-state capacity loss is ``loss``.

        Solves ``downtime / (mtbf + downtime) = loss`` for the MTBF at the
        given per-failure downtime (detection plus repair), so sweeps can
        be parameterised directly in the quantity the degradation curves
        plot.
        """
        if not 0.0 < loss < 1.0:
            raise ValueError(f"loss must be in (0, 1), got {loss}")
        require_positive(detection_s + repair_s, "downtime (detection_s + repair_s)")
        downtime = detection_s + repair_s
        mtbf = downtime * (1.0 - loss) / loss
        return cls(mtbf_s=mtbf, detection_s=detection_s, repair_s=None, seed=seed)
