"""CMOS digital-circuit cost models (peripherals and softmax baselines)."""

from repro.circuits.components import (
    Adder,
    ComponentCost,
    Comparator,
    Counter,
    Divider,
    ExponentialUnit,
    MaxComparatorTree,
    Multiplier,
    OrGateArray,
    Register,
    SRAMBuffer,
    Subtractor,
)
from repro.circuits.energy import EnergyLedger, LedgerEntry
from repro.circuits.technology import DEFAULT_TECHNOLOGY, REFERENCE_NODE_NM, TechnologyNode

__all__ = [
    "ComponentCost",
    "Adder",
    "Subtractor",
    "Comparator",
    "Multiplier",
    "Divider",
    "Register",
    "Counter",
    "OrGateArray",
    "SRAMBuffer",
    "ExponentialUnit",
    "MaxComparatorTree",
    "EnergyLedger",
    "LedgerEntry",
    "TechnologyNode",
    "DEFAULT_TECHNOLOGY",
    "REFERENCE_NODE_NM",
]
