"""The STAR accelerator: MatMul engine + RRAM softmax engines + pipeline.

The top-level model assembles the pieces the paper describes and produces
the quantities the evaluation section reports:

* end-to-end BERT-base inference latency, split into the attention pipeline
  (score GEMM -> softmax -> context GEMM, scheduled at vector granularity)
  and the remaining GEMMs (Q/K/V/output projections and the FFN);
* chip power: crossbar tiles, softmax engines and the shared system
  overheads (buffers, network, control) from
  :class:`repro.arch.system.SystemOverheadModel`;
* the Fig. 3 computing-efficiency report (GOPs/s/W).

Chip resources are factored into a first-class :class:`ChipResources`
object — the MatMul tile banks, the softmax-engine pool and the system
overheads a schedule *occupies*.  :class:`STARAccelerator` is the timing
model running on one such chip; the serving simulator
(:mod:`repro.serving`) replicates the same resources across a fleet and
charges request batches against them.  Beyond the single attention stage,
:meth:`STARAccelerator.executed_model_schedule` runs **every encoder
layer's** attention chain through the event-driven executor, and
:meth:`STARAccelerator.request_timing` condenses a whole batched inference
into the service time / energy quantities request-level serving needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.arch.report import CostReport
from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD, SystemOverheadModel
from repro.core.batch_cost import BatchCostModel, BatchGEMMExecutor, DEFAULT_BATCH_COST
from repro.core.config import STARConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine
from repro.core.pipeline import AttentionPipeline, PipelineSchedule, StageTiming, attention_streams
from repro.core.scheduler import ExecutedSchedule, PipelineExecutor, StageJitter
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.bert import BertWorkload
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "ChipResources",
    "LayerLatencyBreakdown",
    "ModelSchedule",
    "PowerState",
    "RequestTiming",
    "STARAccelerator",
]

#: Valid values of the ``schedule`` constructor argument.
SCHEDULES = ("analytical", "executed")


@dataclass(frozen=True)
class PowerState:
    """Deep-sleep power state of one chip: what sleeping saves, waking costs.

    RRAM conductances are non-volatile, so a powered-down STAR chip keeps
    its programmed weights — deep sleep gates the peripheral circuits
    (DACs, ADCs, sense amplifiers, clocking) without losing tile state,
    which is why ``sleep_power_fraction`` can sit far below the idle
    fraction while wake-up needs no reprogramming, only re-biasing.

    ``entry_latency_s`` is how long the chip takes to drain into the low
    power state after the decision; ``exit_latency_s`` is the power-grid /
    PLL ramp before the chip can serve again.  ``wake_energy_j`` is the
    energy of one wake burst; ``None`` derives it as half the exit latency
    at full active power (a linear ramp), evaluated by
    :meth:`ChipResources.wake_energy_j` at the chip's reference length.
    """

    sleep_power_fraction: float = 0.02
    entry_latency_s: float = 1e-3
    exit_latency_s: float = 5e-3
    wake_energy_j: float | None = None

    def __post_init__(self) -> None:
        require_non_negative(self.sleep_power_fraction, "sleep_power_fraction")
        if self.sleep_power_fraction > 1.0:
            raise ValueError(
                f"sleep_power_fraction must lie in [0, 1], got {self.sleep_power_fraction}"
            )
        require_non_negative(self.entry_latency_s, "entry_latency_s")
        require_non_negative(self.exit_latency_s, "exit_latency_s")
        if self.wake_energy_j is not None:
            require_non_negative(self.wake_energy_j, "wake_energy_j")


class ChipResources:
    """The compute resources of one STAR chip, as a first-class object.

    A schedule *occupies* these resources: the attention executor's
    head-streams are tile groups of :attr:`matmul_engine`, its softmax
    pool has :attr:`num_softmax_engines` discrete servers, and the chip's
    power/area include the shared :attr:`system_overhead` substrate.
    Factoring them out of :class:`STARAccelerator` lets the serving fleet
    provision N identical chips and lets an idle or softmax-only chip be
    costed without a full accelerator model around it.
    """

    def __init__(
        self,
        config: STARConfig | None = None,
        num_softmax_engines: int = 64,
        system_overhead: SystemOverheadModel = DEFAULT_SYSTEM_OVERHEAD,
        idle_power_fraction: float = 0.1,
        power_state: PowerState | None = None,
    ) -> None:
        require_positive(num_softmax_engines, "num_softmax_engines")
        require_non_negative(idle_power_fraction, "idle_power_fraction")
        if idle_power_fraction > 1.0:
            raise ValueError(
                f"idle_power_fraction must lie in [0, 1], got {idle_power_fraction}"
            )
        if (
            power_state is not None
            and power_state.sleep_power_fraction > idle_power_fraction
        ):
            raise ValueError(
                f"deep sleep must not draw more than idle: sleep fraction "
                f"{power_state.sleep_power_fraction} > idle fraction "
                f"{idle_power_fraction}"
            )
        self.config = config or STARConfig()
        self.matmul_engine = MatMulEngine(self.config.matmul)
        self.softmax_engine = RRAMSoftmaxEngine(self.config.softmax)
        self.num_softmax_engines = num_softmax_engines
        self.system_overhead = system_overhead
        self.idle_power_fraction = idle_power_fraction
        self.power_state = power_state

    @property
    def num_tiles(self) -> int:
        """Crossbar tiles of the MatMul engine."""
        return self.config.matmul.num_tiles

    def attention_streams(self, num_heads: int, batch_size: int) -> int:
        """Concurrent head-streams the tile budget supports for one workload."""
        return attention_streams(num_heads, batch_size, self.num_tiles)

    def executor(
        self,
        workload: BertWorkload,
        jitter: StageJitter | None = None,
        streams: int | None = None,
    ) -> PipelineExecutor:
        """An event-driven executor occupying this chip's resources.

        ``streams`` overrides the tile-budget allocation (the accelerator
        passes its batch-cost model's stream count so analytical and
        executed schedules agree on the parallelism they price).
        """
        if streams is None:
            streams = self.attention_streams(workload.config.num_heads, workload.batch_size)
        return PipelineExecutor(
            self.config.pipeline,
            streams=streams,
            softmax_engines=self.num_softmax_engines,
            jitter=jitter,
        )

    def power_w(self, seq_len: int = 128) -> float:
        """Average chip power while executing inference at ``seq_len``."""
        tiles = self.matmul_engine.peak_power_w()
        softmax = self.num_softmax_engines * self.softmax_engine.power_w(seq_len)
        overhead = self.system_overhead.total_power_w(self.num_tiles)
        return tiles + softmax + overhead

    def idle_power_w(self, seq_len: int = 128) -> float:
        """Leakage / standby power of the chip while no batch occupies it.

        Modelled as a fraction of the active power — peripheral bias
        currents, eDRAM refresh and clocking do not stop when the tiles
        do.  The serving report charges this over each chip's idle time so
        low-load energy-per-query figures stay honest.
        """
        return self.idle_power_fraction * self.power_w(seq_len)

    def sleep_power_w(self, seq_len: int = 128) -> float:
        """Residual power in deep sleep (idle power without a power state).

        A chip with no :class:`PowerState` cannot sleep deeper than idle,
        so parking it saves nothing beyond what idle already charges.
        """
        if self.power_state is None:
            return self.idle_power_w(seq_len)
        return self.power_state.sleep_power_fraction * self.power_w(seq_len)

    @property
    def sleep_entry_latency_s(self) -> float:
        """Drain time from idle into deep sleep (0 without a power state)."""
        return 0.0 if self.power_state is None else self.power_state.entry_latency_s

    @property
    def wake_latency_s(self) -> float:
        """Power-grid / PLL ramp before a sleeping chip serves again."""
        return 0.0 if self.power_state is None else self.power_state.exit_latency_s

    def wake_energy_j(self, seq_len: int = 128) -> float:
        """Energy of one wake burst (explicit, or the linear-ramp default)."""
        if self.power_state is None:
            return 0.0
        if self.power_state.wake_energy_j is not None:
            return self.power_state.wake_energy_j
        return 0.5 * self.power_state.exit_latency_s * self.power_w(seq_len)

    def area_mm2(self) -> float:
        """Total chip area."""
        tiles = self.matmul_engine.area_mm2()
        softmax = self.num_softmax_engines * self.softmax_engine.area_mm2()
        overhead = self.system_overhead.total_area_mm2(self.num_tiles)
        return tiles + softmax + overhead


@dataclass(frozen=True)
class LayerLatencyBreakdown:
    """Latency components of one encoder layer on the accelerator.

    ``programming_s`` is the one-time-per-batch weight-operand programming
    of the layer's GEMMs; it is zero under the default ``"resident"``
    weight policy and amortises across the batch under ``"streamed"``.
    """

    projection_s: float
    attention_pipeline_s: float
    ffn_s: float
    softmax_only_s: float
    programming_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total latency of the layer."""
        return self.programming_s + self.projection_s + self.attention_pipeline_s + self.ffn_s

    @property
    def softmax_share(self) -> float:
        """Share of the layer spent waiting on softmax (0 when fully hidden)."""
        return self.softmax_only_s / self.total_s if self.total_s > 0 else 0.0


@dataclass(frozen=True)
class ModelSchedule:
    """Whole-model executed timing: every encoder layer, not one scaled stage.

    Each layer's attention chain runs through the event-driven executor
    (with per-layer jitter streams when jitter is configured); the
    projection and FFN GEMMs are charged analytically — they are plain
    weight-stationary GEMMs with no cross-stage pipelining to simulate.
    """

    layers: tuple[LayerLatencyBreakdown, ...]
    attention_schedules: tuple[ExecutedSchedule, ...]

    @property
    def num_layers(self) -> int:
        """Encoder layers in the schedule."""
        return len(self.layers)

    @property
    def total_latency_s(self) -> float:
        """End-to-end model latency."""
        return sum(layer.total_s for layer in self.layers)

    @property
    def attention_latency_s(self) -> float:
        """Total time spent in the executed attention pipelines."""
        return sum(layer.attention_pipeline_s for layer in self.layers)

    def softmax_utilization(self) -> float:
        """Mean softmax-pool occupancy across the layers' executions."""
        schedules = self.attention_schedules
        return sum(s.utilization("softmax") for s in schedules) / len(schedules)


@dataclass(frozen=True)
class RequestTiming:
    """Service time and energy of one batched inference request.

    The quantity the request-level serving simulator charges a chip with:
    ``latency_s`` occupies the chip's resources for the whole batch and
    ``energy_j`` is the active energy of that occupancy.
    """

    batch_size: int
    seq_len: int
    latency_s: float
    energy_j: float

    @property
    def latency_per_request_s(self) -> float:
        """Amortised per-request service time within the batch."""
        return self.latency_s / self.batch_size

    @property
    def energy_per_request_j(self) -> float:
        """Amortised per-request energy within the batch."""
        return self.energy_j / self.batch_size


class STARAccelerator:
    """Architectural model of the full STAR accelerator.

    ``schedule`` selects how the attention-pipeline latency is obtained:
    ``"analytical"`` evaluates the closed-form
    :class:`~repro.core.pipeline.AttentionPipeline` formulas (the fast
    default), ``"executed"`` runs the workload's rows through the
    event-driven :class:`~repro.core.scheduler.PipelineExecutor` with the
    chip's actual resources — ``attention_streams`` parallel tile groups
    for the GEMM stages and ``num_softmax_engines`` discrete softmax
    engines — and reports the simulated makespan.  ``jitter`` optionally
    perturbs the executed per-row stage times (ignored by the analytical
    schedule, which cannot express it).

    The chip's resources live in a :class:`ChipResources` object; pass one
    as ``resources`` to share or replicate a provisioned chip (the serving
    fleet does this), or let the constructor build one from ``config`` /
    ``num_softmax_engines`` / ``system_overhead``.

    ``batch_cost`` selects the :class:`~repro.core.batch_cost.BatchCostModel`
    pricing a batched inference: the default keeps ``batch_size = 1``
    bit-identical to the pre-batching model while double-buffering rows of
    later requests; :meth:`BatchCostModel.streamed
    <repro.core.batch_cost.BatchCostModel.streamed>` additionally charges
    (and amortises) per-batch operand programming, and
    :meth:`BatchCostModel.legacy
    <repro.core.batch_cost.BatchCostModel.legacy>` reproduces the old
    strictly linear pricing.
    """

    name = "STAR"

    def __init__(
        self,
        config: STARConfig | None = None,
        num_softmax_engines: int = 64,
        system_overhead: SystemOverheadModel = DEFAULT_SYSTEM_OVERHEAD,
        schedule: str = "analytical",
        jitter: StageJitter | None = None,
        resources: ChipResources | None = None,
        batch_cost: BatchCostModel | None = None,
    ) -> None:
        if schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
        if resources is None:
            resources = ChipResources(config, num_softmax_engines, system_overhead)
        else:
            # an explicit resources object IS the chip: the piecewise
            # parameters must be left at their defaults, or they would be
            # silently ignored
            if config is not None and resources.config is not config:
                raise ValueError("pass either config or resources, not conflicting both")
            if num_softmax_engines != 64 and num_softmax_engines != resources.num_softmax_engines:
                raise ValueError(
                    "pass either num_softmax_engines or resources, not conflicting both"
                )
            if (
                system_overhead is not DEFAULT_SYSTEM_OVERHEAD
                and system_overhead is not resources.system_overhead
            ):
                raise ValueError(
                    "pass either system_overhead or resources, not conflicting both"
                )
        self.resources = resources
        self.config = resources.config
        self.matmul_engine = resources.matmul_engine
        self.softmax_engine = resources.softmax_engine
        self.num_softmax_engines = resources.num_softmax_engines
        self.pipeline = AttentionPipeline(self.config.pipeline)
        self.schedule = schedule
        self.jitter = jitter
        self.system_overhead = resources.system_overhead
        self.batch_cost = batch_cost or DEFAULT_BATCH_COST

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #
    def _gemm_streaming_s(self, workload: BertWorkload, shape: GEMMShape) -> float:
        """Row-streaming latency of one per-request GEMM across the batch."""
        return self.matmul_engine.gemm_streaming_latency_s(
            shape, batch_size=workload.batch_size, cost_model=self.batch_cost
        )

    def _projection_latency_s(self, workload: BertWorkload) -> float:
        return 4 * self._gemm_streaming_s(workload, workload.projection_shape())

    def _ffn_latency_s(self, workload: BertWorkload) -> float:
        return self._gemm_streaming_s(workload, workload.ffn_up_shape()) + self._gemm_streaming_s(
            workload, workload.ffn_down_shape()
        )

    def _programming_latency_s(self, workload: BertWorkload) -> float:
        """One-time weight-operand programming of one layer's GEMMs.

        Zero under the ``"resident"`` weight policy; under ``"streamed"``
        each stationary operand is written once per dispatched batch and
        the cost amortises across the batch's requests.
        """
        if not self.batch_cost.charges_programming:
            return 0.0
        engine = self.matmul_engine
        return sum(
            engine.programming_latency_s(shape)
            for shape in workload.weight_operand_shapes_per_layer()
        )

    def _attention_streams(self, workload: BertWorkload) -> int:
        """Concurrent head-streams under the configured batch-cost model."""
        batch = workload.batch_size if self.batch_cost.inter_request_parallelism else 1
        return attention_streams(
            workload.config.num_heads, batch, self.config.matmul.num_tiles
        )

    def attention_stage_timing(self, workload: BertWorkload) -> StageTiming:
        """Per-row stage timings of the attention pipeline for one layer.

        The per-row GEMM latencies are divided by the number of concurrent
        head-streams the tile budget supports, and the softmax row latency
        by the number of parallel softmax engines: the timings describe the
        *aggregate* row intervals the pipeline model consumes.
        """
        native = self.native_attention_stage_timing(workload)
        streams = self._attention_streams(workload)
        return StageTiming(
            score_row_s=native.score_row_s / streams,
            softmax_row_s=native.softmax_row_s / self.num_softmax_engines,
            context_row_s=native.context_row_s / streams,
            num_rows=native.num_rows,
        )

    def native_attention_stage_timing(self, workload: BertWorkload) -> StageTiming:
        """Per-row stage timings as one server of each stage sees them.

        Unlike :meth:`attention_stage_timing` nothing is divided by the
        stream or engine counts — these are the service times of one tile
        group / one softmax engine, which is what the event-driven executor
        consumes (it models the parallelism with discrete servers instead
        of rate scaling).
        """
        cfg = workload.config
        seq_len = workload.seq_len
        return StageTiming(
            score_row_s=self.matmul_engine.row_latency_s(workload.attention_score_row_shape()),
            softmax_row_s=self.softmax_engine.row_latency_s(seq_len),
            context_row_s=self.matmul_engine.row_latency_s(workload.attention_context_row_shape()),
            num_rows=workload.batch_size * cfg.num_heads * seq_len,
        )

    def attention_executor(
        self, workload: BertWorkload, jitter: StageJitter | None = None
    ) -> PipelineExecutor:
        """The event-driven executor provisioned for this workload.

        ``jitter`` overrides the accelerator-level jitter for this one
        executor (used by :meth:`executed_model_schedule` to give every
        encoder layer an independent jitter stream).
        """
        return self.resources.executor(
            workload,
            jitter=jitter or self.jitter,
            streams=self._attention_streams(workload),
        )

    def executed_attention_schedule(
        self, workload: BertWorkload, granularity: str | None = None
    ) -> ExecutedSchedule:
        """Run the workload's attention rows through the event-driven executor.

        ``granularity`` overrides the configured pipeline granularity for
        this one execution (``None`` keeps the configured one).
        """
        executor = self.attention_executor(workload)
        timing = self.native_attention_stage_timing(workload)
        if granularity == "vector":
            return executor.execute_vector(timing)
        if granularity == "operand":
            return executor.execute_operand(timing)
        if granularity is not None:
            raise ValueError(
                f"granularity must be 'vector', 'operand' or None, got {granularity!r}"
            )
        return executor.execute(timing)

    def attention_pipeline_schedule(self, workload: BertWorkload) -> PipelineSchedule:
        """Attention-pipeline latency under the configured schedule source."""
        if self.schedule == "executed":
            return self.executed_attention_schedule(workload).as_pipeline_schedule()
        return self.pipeline.latency(self.attention_stage_timing(workload))

    def layer_latency_breakdown(self, workload: BertWorkload) -> LayerLatencyBreakdown:
        """Latency components of one encoder layer."""
        timing = self.attention_stage_timing(workload)
        schedule = self.attention_pipeline_schedule(workload)
        softmax_only = timing.softmax_row_s * timing.num_rows
        return LayerLatencyBreakdown(
            projection_s=self._projection_latency_s(workload),
            attention_pipeline_s=schedule.total_latency_s,
            ffn_s=self._ffn_latency_s(workload),
            softmax_only_s=softmax_only,
            programming_s=self._programming_latency_s(workload),
        )

    def executed_gemm_schedule(self, workload: BertWorkload, shape: GEMMShape):
        """Event-driven execution of one per-request GEMM across the batch.

        Every tile-level VMM task is dispatched to the first free tile of
        the bank (:class:`~repro.core.batch_cost.BatchGEMMExecutor`); the
        measured makespan cross-validates
        :meth:`~repro.core.matmul_engine.MatMulEngine.gemm_streaming_latency_s`
        — exact when the task count divides the tile parallelism, within a
        wave otherwise.
        """
        executor = BatchGEMMExecutor(self.matmul_engine, self.batch_cost)
        return executor.execute(shape, batch_size=workload.batch_size)

    def executed_model_schedule(self, workload: BertWorkload) -> ModelSchedule:
        """Execute the attention chain of **every** encoder layer.

        This replaces the single analytically-scaled attention stage with
        one event-driven execution per layer.  Without jitter the layers
        are identical, so one execution is reused for all of them (the
        totals stay bit-identical to ``num_layers`` independent runs);
        with jitter each layer draws an independent per-row stream
        (``seed + layer``), which is exactly the variation the one-stage
        model cannot express.

        The projection and FFN GEMMs are executed too: their batched row
        streams run through the event-driven
        :class:`~repro.core.batch_cost.BatchGEMMExecutor` over the tile
        bank, so the whole-model batch price is *measured* rather than
        taken from the closed forms (at batch 1 the two coincide exactly —
        equal task durations over the bank complete in full waves).
        """
        native = self.native_attention_stage_timing(workload)
        timing = self.attention_stage_timing(workload)
        projection_s = 4 * self.executed_gemm_schedule(
            workload, workload.projection_shape()
        ).streaming_makespan_s
        ffn_s = (
            self.executed_gemm_schedule(workload, workload.ffn_up_shape()).streaming_makespan_s
            + self.executed_gemm_schedule(workload, workload.ffn_down_shape()).streaming_makespan_s
        )
        programming_s = self._programming_latency_s(workload)
        softmax_only = timing.softmax_row_s * timing.num_rows

        schedules: list[ExecutedSchedule] = []
        num_layers = workload.config.num_layers
        if self.jitter is None or self.jitter.sigma == 0.0:
            # jitter-free layers are identical: one execution serves all
            schedules = [self.attention_executor(workload).execute(native)] * num_layers
        else:
            for layer in range(num_layers):
                jitter = replace(self.jitter, seed=self.jitter.seed + layer)
                schedules.append(
                    self.attention_executor(workload, jitter=jitter).execute(native)
                )
        layers = tuple(
            LayerLatencyBreakdown(
                projection_s=projection_s,
                attention_pipeline_s=schedule.total_latency_s,
                ffn_s=ffn_s,
                softmax_only_s=softmax_only,
                programming_s=programming_s,
            )
            for schedule in schedules
        )
        return ModelSchedule(layers=layers, attention_schedules=tuple(schedules))

    def inference_latency_s(self, workload: BertWorkload) -> float:
        """End-to-end latency of one BERT inference."""
        if self.schedule == "executed":
            return self.executed_model_schedule(workload).total_latency_s
        layer = self.layer_latency_breakdown(workload)
        return workload.config.num_layers * layer.total_s

    def _energy_reference_latency_s(self, workload: BertWorkload) -> float:
        """Serialized-equivalent active time the chip's converters run.

        Double-buffering shortens a batch's wall clock by hiding input
        staging under the shared-ADC readout, but it removes no DAC/ADC
        conversions and no cell reads — so energy is charged at the
        serialized streaming rate (the same closed forms with the
        double-buffering lever off), keeping the engine-level invariant
        that only operand programming amortises across a batch.  At batch
        1 the two rates coincide and energy stays ``power * latency``
        bit-identically.
        """
        model = self.batch_cost
        if model.double_buffering:
            model = replace(model, double_buffering=False)
        engine = self.matmul_engine
        batch = workload.batch_size
        projection = 4 * engine.gemm_streaming_latency_s(
            workload.projection_shape(), batch_size=batch, cost_model=model
        )
        ffn = engine.gemm_streaming_latency_s(
            workload.ffn_up_shape(), batch_size=batch, cost_model=model
        ) + engine.gemm_streaming_latency_s(
            workload.ffn_down_shape(), batch_size=batch, cost_model=model
        )
        attention = self.pipeline.latency(self.attention_stage_timing(workload)).total_latency_s
        programming = self._programming_latency_s(workload)
        return workload.config.num_layers * (programming + projection + attention + ffn)

    def request_timing(self, workload: BertWorkload) -> RequestTiming:
        """Service time and active energy of one batched inference request.

        The serving simulator charges a chip with exactly this quantity
        when it dispatches a batch: the chip is occupied for ``latency_s``,
        while ``energy_j`` is ``power_w`` over the *serialized-equivalent*
        active time (:meth:`_energy_reference_latency_s`) — batching
        amortises the one-time programming energy but never the per-row
        conversion energy that double-buffering merely overlaps.
        """
        latency = self.inference_latency_s(workload)
        energy = self.power_w(workload.seq_len) * self._energy_reference_latency_s(workload)
        return RequestTiming(
            batch_size=workload.batch_size,
            seq_len=workload.seq_len,
            latency_s=latency,
            energy_j=energy,
        )

    # ------------------------------------------------------------------ #
    # power and area
    # ------------------------------------------------------------------ #
    def power_w(self, seq_len: int = 128) -> float:
        """Average chip power while executing BERT-base inference."""
        return self.resources.power_w(seq_len)

    def area_mm2(self) -> float:
        """Total chip area."""
        return self.resources.area_mm2()

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #
    def cost_report(self, workload: BertWorkload) -> CostReport:
        """Fig. 3 computing-efficiency report for one BERT workload."""
        latency = self.inference_latency_s(workload)
        return CostReport(
            name=self.name,
            area_mm2=self.area_mm2(),
            power_w=self.power_w(workload.seq_len),
            latency_s=latency,
            operations=float(workload.total_ops()),
        )

    def computing_efficiency_gops_per_watt(self, workload: BertWorkload) -> float:
        """The headline metric of Fig. 3."""
        return self.cost_report(workload).computing_efficiency_gops_per_watt
