"""Benchmark: the batched crossbar VMM path of the MatMul engine.

The seed's `MatMulEngine.matmul` re-programmed a fresh tile per block on
every call and pushed activation rows through the crossbar one Python-loop
iteration at a time.  The tile-bank refactor programs the stationary
operand once and streams the whole activation matrix through
`AnalogCrossbar.matvec_batch` in one vectorized pass per tile.

These benchmarks record the batched GEMM's throughput on the flagship
256x128x128 shape (one attention-head context GEMM at BERT scale on
128x128 tiles) and act as the performance gate: the batched path must stay
at least **10x** (CI floor; the flagship number is reported in
``extra_info``) faster than the seed-style row loop, which is re-simulated
on a row sample and extrapolated linearly — rows are independent, so the
per-row cost is uniform.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import MatMulEngineConfig
from repro.core.matmul_engine import MatMulEngine

from conftest import best_of, record


def _seed_matvec(tile, vector: np.ndarray) -> np.ndarray:
    """The seed's per-vector bit-serial dataflow, replayed verbatim.

    `AnalogCrossbar.matvec` now delegates to the vectorized batched kernels,
    so timing it would understate the seed baseline.  This reproduces the
    seed implementation — a fresh conductance read (full-array copy) and a
    BLAS ``vector @ matrix`` per bit-serial cycle — against the same tile
    state, reaching into the crossbar's private conductance arrays exactly
    the way the historical code did internally (ideal devices, no IR drop,
    differential array, as the MatMul engine configures its tiles).
    """
    cfg = tile.config
    v_read = tile.device.config.read_voltage_v
    g_min = tile.device.config.g_min_s
    span = tile.device.config.g_max_s - g_min
    in_max = float(np.max(vector))
    in_scale = in_max if in_max > 0 else 1.0
    max_input_code = (1 << cfg.input_bits) - 1
    input_codes = np.rint(vector / in_scale * max_input_code).astype(np.int64)
    dac_levels = tile.dac.num_levels
    dac_max = dac_levels - 1
    full_scale = cfg.rows * v_read * span
    accumulated = np.zeros(cfg.cols)
    remaining = input_codes.copy()
    cycle_weight = 1
    for _ in range(cfg.input_cycles):
        slice_codes = remaining % dac_levels
        remaining //= dac_levels
        voltages = tile.dac.drive(slice_codes, v_read)
        g_pos = tile.noise.apply_read(tile._conductance_pos)
        currents = voltages @ g_pos
        if cfg.differential:
            g_neg = tile.noise.apply_read(tile._conductance_neg)
            currents = currents - voltages @ g_neg
        else:
            currents = currents - float(np.sum(voltages)) * g_min
        currents = tile.noise.perturb_current(currents)
        if cfg.differential:
            signs = np.sign(currents)
            currents = signs * tile.adc.convert(np.abs(currents), full_scale)
        else:
            currents = tile.adc.convert(np.clip(currents, 0.0, None), full_scale)
        accumulated += currents * cycle_weight
        cycle_weight *= dac_levels
    return accumulated * dac_max * in_scale * tile._weight_scale / (
        v_read * span * max_input_code
    )


def _seed_row_loop_seconds(
    engine: MatMulEngine, a: np.ndarray, b: np.ndarray, sample_rows: int
) -> float:
    """Wall time of the seed dataflow, extrapolated from a row sample.

    Replays exactly what the seed `MatMulEngine.matmul` did per call:
    program a fresh tile for every ``crossbar_rows x crossbar_cols`` block
    of ``b``, then stream the activation rows through the per-vector VMM one
    at a time with a per-row offset correction.  Rows are independent, so
    the per-row cost is uniform and a sample extrapolates linearly.
    """
    rows, cols = engine.config.crossbar_rows, engine.config.crossbar_cols
    m, k = a.shape
    _, n = b.shape
    sample = min(sample_rows, m)
    out = np.zeros((sample, n))
    start = time.perf_counter()
    for k0 in range(0, k, rows):
        k1 = min(k0 + rows, k)
        for n0 in range(0, n, cols):
            n1 = min(n0 + cols, n)
            block = np.zeros((rows, cols))
            block[: k1 - k0, : n1 - n0] = b[k0:k1, n0:n1]
            tile = engine.new_tile()
            tile.program(block)
            for i in range(sample):
                vector = np.zeros(rows)
                segment = a[i, k0:k1]
                offset = float(np.min(segment))
                vector[: k1 - k0] = segment - offset
                result = _seed_matvec(tile, vector)
                correction = offset * np.sum(block, axis=0)
                out[i, n0:n1] += result[: n1 - n0] + correction[: n1 - n0]
    elapsed = time.perf_counter() - start
    return elapsed * (m / sample)


def test_bench_crossbar_batched_gemm(benchmark):
    """Flagship: 256x128x128 GEMM through the persistent tile bank."""
    engine = MatMulEngine(MatMulEngineConfig())
    rng = np.random.default_rng(0)
    a = rng.normal(size=(256, 128))
    b = rng.normal(size=(128, 128))
    operand = engine.program_operand(b)
    engine.matmul(a, operand)  # warm the allocator and caches

    out = benchmark(engine.matmul, a, operand)

    batch_s = best_of(lambda: engine.matmul(a, operand), repeats=5)
    seed_s = _seed_row_loop_seconds(engine, a, b, sample_rows=32)
    speedup = seed_s / batch_s
    record(
        benchmark,
        m=256,
        k=128,
        n=128,
        batched_gemm_s=round(batch_s, 5),
        seed_row_loop_s=round(seed_s, 3),
        speedup_vs_seed_row_loop=round(speedup, 1),
        batched_rows_per_s=round(256 / batch_s),
    )
    assert out.shape == (256, 128)
    # the batched result is deterministic with ideal devices
    np.testing.assert_array_equal(out, engine.matmul(a, operand))
    assert speedup >= 10.0, (
        f"batched GEMM is only {speedup:.1f}x faster than the seed row loop "
        f"({batch_s * 1e3:.1f} ms vs {seed_s * 1e3:.0f} ms); the ISSUE CI floor is 10x"
    )


def test_bench_operand_reuse_avoids_reprogramming(benchmark):
    """Weight-stationary reuse: matmul on a resident operand writes nothing."""
    engine = MatMulEngine(MatMulEngineConfig())
    rng = np.random.default_rng(1)
    a = rng.normal(size=(64, 128))
    operand = engine.program_operand(rng.normal(size=(128, 128)))
    pulses_before = engine.access_stats.programming_pulses

    benchmark(engine.matmul, a, operand)

    assert engine.access_stats.programming_pulses == pulses_before
    record(
        benchmark,
        programming_pulses_per_reuse=0,
        resident_tiles=operand.num_tiles,
    )
