"""Shared utilities: fixed-point formats, statistics, units and validation."""

from repro.utils.fixed_point import (
    CNEWS_FORMAT,
    COLA_FORMAT,
    MRPC_FORMAT,
    FixedPointFormat,
    dequantize_codes,
    quantization_error,
    quantize,
    sqnr_db,
)
from repro.utils.stats import (
    RunningStats,
    geometric_mean,
    kl_divergence,
    percentile_range,
    relative_error,
    summarize,
)
from repro.utils.units import format_si, to_giga_ops_per_watt

__all__ = [
    "FixedPointFormat",
    "CNEWS_FORMAT",
    "MRPC_FORMAT",
    "COLA_FORMAT",
    "quantize",
    "dequantize_codes",
    "quantization_error",
    "sqnr_db",
    "RunningStats",
    "summarize",
    "percentile_range",
    "geometric_mean",
    "relative_error",
    "kl_divergence",
    "format_si",
    "to_giga_ops_per_watt",
]
