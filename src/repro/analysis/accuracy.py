"""Accuracy-vs-precision analysis of the softmax implementations.

Supports two complementary metrics:

* **distribution fidelity** — mean KL divergence and maximum absolute
  probability error of a softmax implementation against the exact softmax,
  measured on synthetic attention-score rows;
* **task accuracy** — agreement of a model using the approximate softmax
  with the float-softmax teacher on the synthetic classification task
  (:class:`repro.workloads.classification.ClassificationTask`).

These feed the E8 precision-sweep ablation and back the paper's claim that
softmax is "insensitive to computing precision".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.config import SoftmaxEngineConfig
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.functional import softmax as exact_softmax
from repro.nn.softmax_models import FixedPointSoftmax
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.stats import kl_divergence
from repro.workloads.classification import ClassificationTask
from repro.workloads.scores import AttentionScoreGenerator, ScoreProfile

__all__ = ["FidelityMetrics", "PrecisionSweepPoint", "AccuracyAnalyzer"]

SoftmaxFactory = Callable[[FixedPointFormat], Callable[[np.ndarray], np.ndarray]]


@dataclass(frozen=True)
class FidelityMetrics:
    """Distribution-level fidelity of one softmax implementation."""

    mean_kl: float
    max_abs_error: float
    mean_abs_error: float


@dataclass(frozen=True)
class PrecisionSweepPoint:
    """One point of the precision sweep (E8)."""

    integer_bits: int
    frac_bits: int
    fidelity: FidelityMetrics
    task_accuracy: float | None = None

    @property
    def total_bits(self) -> int:
        """Total bits of this sweep point."""
        return self.integer_bits + self.frac_bits


class AccuracyAnalyzer:
    """Measures softmax fidelity and downstream task accuracy."""

    def __init__(self, num_rows: int = 256, seed: int = 0) -> None:
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        self.num_rows = num_rows
        self.seed = seed

    @staticmethod
    def engine_for_format(fmt: FixedPointFormat) -> RRAMSoftmaxEngine:
        """A cycle-accurate engine for one swept format (a softmax factory).

        The engine's crossbars must hold every representable level, so the
        sweep sizes them to the format instead of using the paper defaults.
        """
        rows = max(512, fmt.num_levels)
        return RRAMSoftmaxEngine(
            SoftmaxEngineConfig(fmt=fmt, cam_sub_rows=rows, exp_rows=max(256, fmt.num_levels))
        )

    # ------------------------------------------------------------------ #
    # distribution fidelity
    # ------------------------------------------------------------------ #
    def fidelity(
        self,
        softmax_fn: Callable[[np.ndarray], np.ndarray],
        profile: ScoreProfile,
        seq_len: int | None = None,
    ) -> FidelityMetrics:
        """Fidelity of ``softmax_fn`` against the exact softmax on one profile."""
        generator = AttentionScoreGenerator(profile, seed=self.seed)
        rows = generator.rows(self.num_rows, seq_len)
        approx = softmax_fn(rows)
        exact = exact_softmax(rows)
        errors = np.abs(approx - exact)
        kls = [kl_divergence(exact[i], approx[i]) for i in range(rows.shape[0])]
        return FidelityMetrics(
            mean_kl=float(np.mean(kls)),
            max_abs_error=float(np.max(errors)),
            mean_abs_error=float(np.mean(errors)),
        )

    # ------------------------------------------------------------------ #
    # precision sweep (E8)
    # ------------------------------------------------------------------ #
    def precision_sweep(
        self,
        profile: ScoreProfile,
        formats: list[tuple[int, int]],
        include_task_accuracy: bool = False,
        task: ClassificationTask | None = None,
        softmax_factory: SoftmaxFactory | None = None,
    ) -> list[PrecisionSweepPoint]:
        """Fidelity (and optionally task accuracy) across fixed-point formats.

        ``softmax_factory`` maps each swept format to the softmax callable
        under test.  It defaults to the functional
        :class:`~repro.nn.softmax_models.FixedPointSoftmax`; pass
        :meth:`engine_for_format` to sweep the cycle-accurate RRAM engine
        itself — its batched backend makes that no slower than the
        functional model.
        """
        if not formats:
            raise ValueError("formats must not be empty")
        if include_task_accuracy and task is None:
            task = ClassificationTask(profile, num_examples=32, seq_len=32, seed=self.seed)
        factory = softmax_factory if softmax_factory is not None else FixedPointSoftmax
        points = []
        for integer_bits, frac_bits in formats:
            fmt = FixedPointFormat(integer_bits, frac_bits)
            softmax_fn = factory(fmt)
            fidelity = self.fidelity(softmax_fn, profile)
            accuracy = None
            if include_task_accuracy and task is not None:
                accuracy = task.evaluate(softmax_fn).accuracy
            points.append(
                PrecisionSweepPoint(
                    integer_bits=integer_bits,
                    frac_bits=frac_bits,
                    fidelity=fidelity,
                    task_accuracy=accuracy,
                )
            )
        return points

    def accuracy_drop_table(
        self,
        profiles: list[ScoreProfile],
        fmt_for_profile: Callable[[ScoreProfile], FixedPointFormat],
    ) -> dict[str, float]:
        """Task-accuracy drop per dataset at its chosen format (small task sizes)."""
        drops: dict[str, float] = {}
        for profile in profiles:
            task = ClassificationTask(profile, num_examples=32, seq_len=32, seed=self.seed)
            fmt = fmt_for_profile(profile)
            drops[profile.name] = task.accuracy_drop(FixedPointSoftmax(fmt))
        return drops
