"""Unit tests of the request-level serving simulator and its report."""

from __future__ import annotations

import pytest

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    NO_BATCHING,
    PoissonArrivals,
    Request,
    ServingSimulator,
    StarServiceModel,
    TraceArrivals,
)


def fixed_fleet(num_chips=1, service=1.0, energy=2.0, speedups=None):
    return ChipFleet(
        FixedServiceModel(request_latency_s=service, request_energy_j=energy),
        num_chips=num_chips,
        speedups=speedups,
    )


class TestSingleRequests:
    def test_one_request(self):
        report = ServingSimulator(fixed_fleet(), NO_BATCHING).run(
            [Request(index=0, arrival_s=0.5, seq_len=128)]
        )
        record = report.requests[0]
        assert record.dispatch_s == pytest.approx(0.5)
        assert record.completion_s == pytest.approx(1.5)
        assert record.wait_s == pytest.approx(0.0)
        assert report.throughput_rps == pytest.approx(1.0)
        assert report.energy_per_query_j == pytest.approx(2.0)

    def test_back_to_back_requests_queue(self):
        # both arrive before the first finishes: the second waits
        requests = [
            Request(index=0, arrival_s=0.0, seq_len=128),
            Request(index=1, arrival_s=0.1, seq_len=128),
        ]
        report = ServingSimulator(fixed_fleet(), NO_BATCHING).run(requests)
        first, second = sorted(report.requests, key=lambda r: r.index)
        assert first.completion_s == pytest.approx(1.0)
        assert second.dispatch_s == pytest.approx(1.0)
        assert second.wait_s == pytest.approx(0.9)
        assert report.queue_peak == 1

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ServingSimulator(fixed_fleet(), NO_BATCHING).run([])

    def test_unsorted_arrivals_served_in_arrival_order(self):
        requests = [
            Request(index=0, arrival_s=2.0, seq_len=128),
            Request(index=1, arrival_s=0.0, seq_len=128),
        ]
        report = ServingSimulator(fixed_fleet(), NO_BATCHING).run(requests)
        dispatch_order = [r.index for r in report.requests]
        assert dispatch_order == [1, 0]


class TestBatching:
    def test_full_batch_dispatches_together(self):
        requests = [Request(index=i, arrival_s=0.001 * i, seq_len=128) for i in range(4)]
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=10.0)
        report = ServingSimulator(fixed_fleet(), batcher).run(requests)
        assert report.num_batches == 1
        batch = report.batches[0]
        # the batch leaves when its fourth member arrives, not at the timeout
        assert batch.dispatch_s == pytest.approx(0.003)
        assert batch.size == 4
        assert all(r.completion_s == pytest.approx(batch.completion_s) for r in report.requests)

    def test_timeout_releases_partial_batch(self):
        requests = [Request(index=0, arrival_s=0.0, seq_len=128)]
        batcher = DynamicBatcher(max_batch_size=8, max_wait_s=0.25)
        report = ServingSimulator(fixed_fleet(), batcher).run(requests)
        assert report.num_batches == 1
        assert report.batches[0].dispatch_s == pytest.approx(0.25)
        assert report.batches[0].size == 1

    def test_zero_wait_dispatches_whatever_is_queued(self):
        # chip busy until t=1 while three requests accumulate; at the free
        # they all leave as one batch despite max_wait_s == 0
        requests = [Request(index=0, arrival_s=0.0, seq_len=128)] + [
            Request(index=i, arrival_s=0.5, seq_len=128) for i in (1, 2, 3)
        ]
        batcher = DynamicBatcher(max_batch_size=8, max_wait_s=0.0)
        report = ServingSimulator(fixed_fleet(), batcher).run(requests)
        assert report.num_batches == 2
        assert report.batches[1].size == 3
        assert report.batches[1].dispatch_s == pytest.approx(1.0)

    def test_batch_pads_to_longest_member(self):
        trace = TraceArrivals([0.0, 0.0], per_request_lens=[64, 256])
        fleet = ChipFleet(StarServiceModel(), num_chips=1)
        batcher = DynamicBatcher(max_batch_size=2, max_wait_s=0.0)
        report = ServingSimulator(fleet, batcher).run(trace.generate())
        assert report.num_batches == 1
        assert report.batches[0].seq_len == 256

    def test_mean_batch_size(self):
        requests = [Request(index=i, arrival_s=0.0, seq_len=128) for i in range(6)]
        batcher = DynamicBatcher(max_batch_size=4, max_wait_s=0.0)
        report = ServingSimulator(fixed_fleet(), batcher).run(requests)
        assert report.num_batches == 2
        assert report.mean_batch_size == pytest.approx(3.0)


class TestFleet:
    def test_two_chips_serve_in_parallel(self):
        requests = [
            Request(index=0, arrival_s=0.0, seq_len=128),
            Request(index=1, arrival_s=0.0, seq_len=128),
        ]
        report = ServingSimulator(fixed_fleet(num_chips=2), NO_BATCHING).run(requests)
        assert {r.chip for r in report.requests} == {0, 1}
        assert all(r.wait_s == pytest.approx(0.0) for r in report.requests)
        assert report.makespan_s == pytest.approx(1.0)

    def test_speedup_scales_service_and_energy(self):
        requests = [Request(index=0, arrival_s=0.0, seq_len=128)]
        fleet = fixed_fleet(num_chips=1, service=1.0, energy=2.0, speedups=(4.0,))
        report = ServingSimulator(fleet, NO_BATCHING).run(requests)
        assert report.batches[0].service_s == pytest.approx(0.25)
        assert report.batches[0].energy_j == pytest.approx(0.5)

    def test_utilization_and_busy_time(self):
        requests = [
            Request(index=0, arrival_s=0.0, seq_len=128),
            Request(index=1, arrival_s=1.0, seq_len=128),
        ]
        report = ServingSimulator(fixed_fleet(num_chips=2), NO_BATCHING).run(requests)
        # both requests run on chip 0 (it is idle each time an arrival lands)
        assert report.chip_busy_s[0] == pytest.approx(2.0)
        assert report.chip_busy_s[1] == pytest.approx(0.0)
        assert report.chip_utilization(0) == pytest.approx(1.0)
        assert report.mean_utilization == pytest.approx(0.5)

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            fixed_fleet(num_chips=0)
        with pytest.raises(ValueError):
            fixed_fleet(num_chips=2, speedups=(1.0,))
        with pytest.raises(ValueError):
            fixed_fleet(num_chips=1, speedups=(-1.0,))


class TestReportMetrics:
    def test_percentiles_are_ordered(self):
        requests = PoissonArrivals(800.0, seed=11).generate(2000)
        report = ServingSimulator(fixed_fleet(service=1e-3), NO_BATCHING).run(requests)
        assert report.p50_latency_s <= report.p95_latency_s <= report.p99_latency_s
        assert report.mean_latency_s >= 1e-3  # at least one service time

    def test_summary_keys_match_format_table(self):
        requests = PoissonArrivals(100.0, seed=0).generate(50)
        report = ServingSimulator(fixed_fleet(service=1e-3), NO_BATCHING).run(requests)
        summary = report.summary()
        assert summary["num_requests"] == 50
        assert "p99_latency_s" in summary
        text = report.format_table()
        assert "p50/p95/p99" in text and "energy per query" in text

    def test_star_service_model_caches(self):
        from repro.serving import PricingCache

        cache = PricingCache(maxsize=8)
        model = StarServiceModel(cache=cache)
        first = model.batch_latency_s(2, 128)
        assert model.batch_latency_s(2, 128) == first
        assert len(cache) == 1 and cache.hits == 1 and cache.misses == 1
        # an identically-configured model shares the priced shape...
        twin = StarServiceModel(cache=cache)
        assert twin.batch_latency_s(2, 128) == first
        assert len(cache) == 1 and cache.hits == 2
        # ...while a differently-configured one can never collide
        from repro.core.batch_cost import BatchCostModel

        other = StarServiceModel(cache=cache, batch_cost=BatchCostModel.legacy())
        assert other.batch_latency_s(2, 128) != first
        assert len(cache) == 2

    def test_pricing_cache_is_bounded(self):
        from repro.serving import PricingCache

        cache = PricingCache(maxsize=4)
        model = StarServiceModel(cache=cache)
        for batch in range(1, 8):
            model.batch_latency_s(batch, 64)
        assert len(cache) == 4  # LRU-evicted down to the bound
        # the evicted shape re-prices to the same deterministic value
        assert model.batch_latency_s(1, 64) == StarServiceModel(
            cache=PricingCache(maxsize=4)
        ).batch_latency_s(1, 64)
