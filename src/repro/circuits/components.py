"""Area / power / latency models of the digital CMOS building blocks.

These are the blocks that surround the RRAM arrays (counters, divider,
registers, OR-merge logic) and the blocks that make up the two CMOS softmax
baselines of Table I (adders, comparators, multipliers, exponential units,
SRAM buffers).

Every figure is calibrated at the 32 nm / 1 GHz reference point used by the
ISAAC and PipeLayer cost tables, with per-bit (or per-bit-squared for the
multiplier) constants taken from published standard-cell synthesis results.
Other nodes are obtained through :class:`~repro.circuits.technology.TechnologyNode`
scaling.  Absolute numbers carry the usual architecture-model error bars;
the Table I experiment only relies on the *relative* costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math

from repro.circuits.technology import DEFAULT_TECHNOLOGY, TechnologyNode
from repro.utils.validation import require_positive

__all__ = [
    "ComponentCost",
    "Adder",
    "Subtractor",
    "Comparator",
    "Multiplier",
    "Divider",
    "Register",
    "Counter",
    "OrGateArray",
    "SRAMBuffer",
    "ExponentialUnit",
    "MaxComparatorTree",
]


@dataclass(frozen=True)
class ComponentCost:
    """Area, power and latency of one digital component instance."""

    name: str
    area_um2: float
    power_w: float
    latency_s: float

    def __post_init__(self) -> None:
        require_positive(self.area_um2, "area_um2")
        require_positive(self.power_w, "power_w")
        require_positive(self.latency_s, "latency_s")

    @property
    def energy_per_op_j(self) -> float:
        """Energy of one operation at full activity."""
        return self.power_w * self.latency_s

    def scaled(self, count: int) -> "ComponentCost":
        """Cost of ``count`` identical instances operating in parallel."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return ComponentCost(
            name=f"{count}x {self.name}",
            area_um2=self.area_um2 * count,
            power_w=self.power_w * count,
            latency_s=self.latency_s,
        )


def _cost(
    name: str,
    bits: int,
    area_per_bit_um2: float,
    power_per_bit_w: float,
    cycles: float,
    tech: TechnologyNode,
) -> ComponentCost:
    """Shared helper: linear-in-bits component at the reference node."""
    if bits < 1:
        raise ValueError(f"{name} width must be >= 1 bit, got {bits}")
    return ComponentCost(
        name=f"{bits}-bit {name}",
        area_um2=tech.scale_area_um2(area_per_bit_um2 * bits),
        power_w=tech.scale_power_w(power_per_bit_w * bits),
        latency_s=cycles * tech.cycle_time_s,
    )


class Adder:
    """Ripple/carry-select adder, one cycle."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of an n-bit adder."""
        return _cost("adder", bits, area_per_bit_um2=4.5, power_per_bit_w=1.5e-6, cycles=1.0, tech=tech)


class Subtractor:
    """Two's-complement subtractor (adder + inverters), one cycle."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of an n-bit subtractor."""
        return _cost("subtractor", bits, area_per_bit_um2=5.0, power_per_bit_w=1.7e-6, cycles=1.0, tech=tech)


class Comparator:
    """Magnitude comparator, one cycle."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of an n-bit comparator."""
        return _cost("comparator", bits, area_per_bit_um2=3.0, power_per_bit_w=1.0e-6, cycles=1.0, tech=tech)


class Register:
    """Flip-flop register, clocked every cycle."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of an n-bit register."""
        return _cost("register", bits, area_per_bit_um2=6.0, power_per_bit_w=1.2e-6, cycles=1.0, tech=tech)


class Counter:
    """Up-counter (register plus incrementer), one cycle per count."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of an n-bit counter."""
        return _cost("counter", bits, area_per_bit_um2=9.5, power_per_bit_w=2.2e-6, cycles=1.0, tech=tech)


class OrGateArray:
    """Array of 2-input OR gates merging CAM match vectors (Fig. 1, step 3)."""

    @staticmethod
    def cost(num_gates: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of ``num_gates`` OR gates switching each cycle."""
        if num_gates < 1:
            raise ValueError(f"num_gates must be >= 1, got {num_gates}")
        return ComponentCost(
            name=f"{num_gates}x OR gate",
            area_um2=tech.scale_area_um2(1.2 * num_gates),
            power_w=tech.scale_power_w(0.25e-6 * num_gates),
            latency_s=0.1 * tech.cycle_time_s,
        )


class Multiplier:
    """Array multiplier; area and power grow with the product of operand widths."""

    @staticmethod
    def cost(
        bits_a: int,
        bits_b: int | None = None,
        tech: TechnologyNode = DEFAULT_TECHNOLOGY,
    ) -> ComponentCost:
        """Cost of a ``bits_a x bits_b`` multiplier (square if ``bits_b`` omitted)."""
        if bits_b is None:
            bits_b = bits_a
        if bits_a < 1 or bits_b < 1:
            raise ValueError("multiplier operand widths must be >= 1 bit")
        cells = bits_a * bits_b
        return ComponentCost(
            name=f"{bits_a}x{bits_b} multiplier",
            area_um2=tech.scale_area_um2(6.0 * cells),
            power_w=tech.scale_power_w(2.0e-6 * cells),
            latency_s=1.0 * tech.cycle_time_s,
        )


class Divider:
    """Sequential (non-restoring) divider: one cycle per quotient bit."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of an n-bit divider; latency is ``bits`` cycles."""
        if bits < 1:
            raise ValueError(f"divider width must be >= 1 bit, got {bits}")
        return ComponentCost(
            name=f"{bits}-bit divider",
            area_um2=tech.scale_area_um2(22.0 * bits),
            power_w=tech.scale_power_w(4.5e-6 * bits),
            latency_s=bits * tech.cycle_time_s,
        )


class SRAMBuffer:
    """On-chip SRAM buffer (6T cells plus peripheral overhead)."""

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of a ``bits``-bit SRAM macro; latency is one access cycle."""
        if bits < 1:
            raise ValueError(f"SRAM size must be >= 1 bit, got {bits}")
        # 0.17 um^2 per bit cell plus 20% periphery at 32 nm
        area = 0.17 * bits * 1.2
        # dynamic read power dominated by bitline swing, approx 20 uW per KB at 1 GHz
        power = 20.0e-6 * (bits / 8192.0) + 1.0e-6
        return ComponentCost(
            name=f"{bits}-bit SRAM",
            area_um2=tech.scale_area_um2(area),
            power_w=tech.scale_power_w(power),
            latency_s=1.0 * tech.cycle_time_s,
        )


class ExponentialUnit:
    """CMOS exponential function unit used by the baseline softmax.

    Modelled as a piecewise-linear interpolator: a range-reduction subtractor,
    a 64-entry coefficient LUT in SRAM, one multiplier and one adder — the
    structure used by the floating-point softmax blocks that Softermax
    compares against.
    """

    @staticmethod
    def cost(bits: int, tech: TechnologyNode = DEFAULT_TECHNOLOGY) -> ComponentCost:
        """Cost of one exponential unit operating on ``bits``-bit inputs."""
        if bits < 1:
            raise ValueError(f"exponential unit width must be >= 1 bit, got {bits}")
        lut = SRAMBuffer.cost(64 * 2 * bits, tech)
        mult = Multiplier.cost(bits, bits, tech)
        add = Adder.cost(bits, tech)
        sub = Subtractor.cost(bits, tech)
        area = lut.area_um2 + mult.area_um2 + add.area_um2 + sub.area_um2
        power = lut.power_w + mult.power_w + add.power_w + sub.power_w
        return ComponentCost(
            name=f"{bits}-bit exp unit",
            area_um2=area,
            power_w=power,
            latency_s=3.0 * tech.cycle_time_s,
        )


class MaxComparatorTree:
    """Tree of comparators finding the maximum of ``n`` values.

    The CMOS baseline softmax needs this for the ``x_i - x_max`` stage; STAR
    replaces it with the CAM search.
    """

    @staticmethod
    def cost(
        num_inputs: int,
        bits: int,
        tech: TechnologyNode = DEFAULT_TECHNOLOGY,
    ) -> ComponentCost:
        """Cost of a comparator tree over ``num_inputs`` values of ``bits`` bits."""
        if num_inputs < 2:
            raise ValueError(f"a max tree needs at least 2 inputs, got {num_inputs}")
        num_comparators = num_inputs - 1
        depth = math.ceil(math.log2(num_inputs))
        single = Comparator.cost(bits, tech)
        mux = Register.cost(bits, tech)  # a 2:1 mux + latch per comparator, similar cost
        area = num_comparators * (single.area_um2 + mux.area_um2)
        power = num_comparators * (single.power_w + mux.power_w)
        return ComponentCost(
            name=f"max tree ({num_inputs} x {bits}-bit)",
            area_um2=area,
            power_w=power,
            latency_s=depth * tech.cycle_time_s,
        )
