"""Tests for the vectorized batched simulation backend of the softmax engine.

The contract under test: the batch backend is **bit-identical**
(``np.array_equal``) to the cycle-accurate row-by-row path and to the
functional :class:`~repro.nn.softmax_models.FixedPointSoftmax` model across
all three dataset formats, including CAM-miss rows and the
all-zero-denominator uniform fallback — while never mutating shared state on
the hot path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_stats import AccessStats
from repro.core.config import SoftmaxEngineConfig
from repro.core.divider import DividerUnit
from repro.core.exponent import ExponentialUnit
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.softmax_models import FixedPointSoftmax
from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.rram.noise import NoiseConfig
from repro.utils.fixed_point import CNEWS_FORMAT, COLA_FORMAT, MRPC_FORMAT

ALL_FORMATS = {"CNEWS": CNEWS_FORMAT, "MRPC": MRPC_FORMAT, "CoLA": COLA_FORMAT}


def _row_by_row(engine: RRAMSoftmaxEngine, block: np.ndarray) -> np.ndarray:
    return np.stack([engine.softmax_row(row) for row in block])


class TestBitIdentity:
    """Batched backend == row backend == functional model, bit for bit."""

    @pytest.mark.parametrize("name", sorted(ALL_FORMATS))
    def test_identity_across_dataset_formats(self, name, rng):
        fmt = ALL_FORMATS[name]
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=fmt))
        # spread beyond the representable range: exercises clipping and, for
        # MRPC (512 levels > 256 stored), CAM-miss rows
        block = rng.uniform(-80.0, 80.0, size=(48, 96))
        batched = engine.softmax_batch(block)
        np.testing.assert_array_equal(batched, _row_by_row(engine, block))
        np.testing.assert_array_equal(batched, FixedPointSoftmax(fmt)(block))

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        num_rows=st.integers(min_value=1, max_value=24),
        seq_len=st.integers(min_value=1, max_value=40),
        name=st.sampled_from(sorted(ALL_FORMATS)),
    )
    @settings(max_examples=25, deadline=None)
    def test_identity_property(self, seed, num_rows, seq_len, name):
        fmt = ALL_FORMATS[name]
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=fmt))
        rng = np.random.default_rng(seed)
        block = rng.uniform(-90.0, 90.0, size=(num_rows, seq_len))
        batched = engine.softmax_batch(block)
        np.testing.assert_array_equal(batched, _row_by_row(engine, block))
        np.testing.assert_array_equal(batched, FixedPointSoftmax(fmt)(block))

    def test_cam_miss_rows_are_exact_zero(self, rng):
        # MRPC: 512 representable levels but only 256 stored -> misses exist
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=MRPC_FORMAT))
        block = np.array([[31.0, -32.0, -31.875, 30.0]])  # diff codes > 255
        batched = engine.softmax_batch(block)
        np.testing.assert_array_equal(batched, _row_by_row(engine, block))
        assert engine.access_stats.cam_misses > 0
        assert batched[0, 1] == 0.0  # missed element reads an exact zero

    def test_identity_under_counter_saturation(self, rng):
        # 4-bit counters saturate at 15; a 40-element row overflows them
        config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT, counter_bits=4)
        engine = RRAMSoftmaxEngine(config)
        block = rng.uniform(-5.0, 5.0, size=(6, 40))
        np.testing.assert_array_equal(
            engine.softmax_batch(block), _row_by_row(engine, block)
        )

    def test_softmax_dispatches_to_batch_for_any_rank(self, rng):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        scores = rng.normal(0, 8, size=(2, 3, 5, 16))
        probs = engine.softmax(scores)
        np.testing.assert_array_equal(probs, FixedPointSoftmax(CNEWS_FORMAT)(scores))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    def test_empty_batch(self):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        out = engine.softmax_batch(np.empty((0, 7)))
        assert out.shape == (0, 7)

    def test_invalid_batches_rejected(self):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        with pytest.raises(ValueError):
            engine.softmax_batch(np.zeros(4))  # 1D
        with pytest.raises(ValueError):
            engine.softmax_batch(np.zeros((3, 0)))  # empty rows


class TestUniformFallback:
    """The all-zero-denominator saturation must match the row path exactly."""

    def test_all_miss_rows_give_uniform(self):
        # fed directly with out-of-range codes, every exponential is zero and
        # the denominator is zero -> the divider saturates to uniform
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=MRPC_FORMAT))
        divider = DividerUnit()
        codes = np.array([[300, 400, 500], [0, 1, 2]])
        result = unit.process_batch(codes)
        assert result.denominators[0] == 0.0
        probs = divider.divide_batch(result.exponentials, result.denominators)
        row0 = divider.divide(result.exponentials[0], float(result.denominators[0]))
        row1 = divider.divide(result.exponentials[1], float(result.denominators[1]))
        np.testing.assert_array_equal(probs, np.stack([row0, row1]))
        np.testing.assert_array_equal(probs[0], np.full(3, 1.0 / 3.0))

    def test_divide_batch_matches_divide_rows(self, rng):
        divider = DividerUnit(quotient_frac_bits=6)
        block = rng.uniform(0, 1, size=(8, 16))
        denoms = rng.uniform(0.5, 4.0, size=8)
        denoms[2] = 0.0
        denoms[5] = -1.0
        batched = divider.divide_batch(block, denoms)
        rows = np.stack([divider.divide(block[i], denoms[i]) for i in range(8)])
        np.testing.assert_array_equal(batched, rows)

    def test_divide_batch_validates_shapes(self):
        divider = DividerUnit()
        with pytest.raises(ValueError):
            divider.divide_batch(np.zeros(4), np.ones(4))
        with pytest.raises(ValueError):
            divider.divide_batch(np.zeros((2, 4)), np.ones(3))
        with pytest.raises(ValueError):
            divider.divide_batch(np.zeros((5, 0)), np.zeros(5))  # empty rows
        assert divider.divide_batch(np.zeros((0, 4)), np.zeros(0)).shape == (0, 4)


class TestBatchedCamSearch:
    """CAMCrossbar.search_max_codes / search_histograms semantics."""

    def test_max_codes_match_looped_searches(self, rng):
        cam = CAMCrossbar(CAMConfig(rows=32, bits=6))
        cam.program_codes(np.arange(20))
        block = rng.integers(0, 40, size=(10, 12))
        fast = cam.search_max_codes(block)
        slow = []
        for row in block:
            hits = [int(q) for q in row if cam.match_index(int(q)) >= 0]
            slow.append(max(hits) if hits else -1)
        np.testing.assert_array_equal(fast, np.asarray(slow))

    def test_non_contiguous_storage(self):
        cam = CAMCrossbar(CAMConfig(rows=8, bits=5))
        cam.program_codes(np.array([3, 9, 17]))
        block = np.array([[1, 2, 4], [9, 3, 31], [17, 18, 19]])
        np.testing.assert_array_equal(cam.search_max_codes(block), [-1, 9, 17])
        hist = cam.search_histograms(block, 10)
        assert hist[1, 9] == 1 and hist[1, 3] == 1 and hist[1].sum() == 2
        assert hist[0].sum() == 0  # nothing stored matches row 0

    def test_histograms_match_counterbank_semantics(self, rng):
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        codes = rng.integers(0, 60, size=(5, 64))
        batched = unit.process_batch(codes).histograms
        rows = np.stack([unit.process(codes[i]).histogram for i in range(5)])
        np.testing.assert_array_equal(batched, rows)

    def test_histograms_never_count_out_of_capacity_queries(self):
        # regression: with num_codes beyond the code space, a query >= capacity
        # must not clamp onto a stored code and be counted as a match
        cam = CAMCrossbar(CAMConfig(rows=4, bits=3))
        cam.program_codes(np.array([0, 2, 5, 7]))  # capacity 8, code 7 stored
        hist = cam.search_histograms(np.array([[9, 7, 2]]), num_codes=12)
        assert hist[0, 9] == 0
        assert hist[0, 7] == 1 and hist[0, 2] == 1
        np.testing.assert_array_equal(cam.search_max_codes(np.array([[9, 1]])), [-1])

    def test_batched_search_refuses_error_injection(self):
        cam = CAMCrossbar(CAMConfig(rows=8, bits=3, search_error_rate=0.1))
        cam.program_codes(np.arange(8))
        with pytest.raises(RuntimeError):
            cam.search_max_codes(np.zeros((1, 4), dtype=np.int64))
        with pytest.raises(RuntimeError):
            cam.search_histograms(np.zeros((1, 4), dtype=np.int64), 8)


class TestSearchErrorWiring:
    """config.cam_search_error_rate reaches the CAM/SUB stage."""

    def test_error_rate_propagates_to_cam_sub(self):
        config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT, cam_search_error_rate=0.05, cam_seed=7)
        engine = RRAMSoftmaxEngine(config)
        assert engine.cam_sub.cam.config.search_error_rate == 0.05
        assert engine.cam_sub.cam.config.seed == 7
        # the exponential unit's CAM stays ideal on the functional path
        assert engine.exponential.cam.config.search_error_rate == 0.0

    def test_engine_falls_back_to_row_path_under_search_errors(self, rng):
        config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT, cam_search_error_rate=0.2, cam_seed=3)
        noisy = RRAMSoftmaxEngine(config)
        ideal = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        block = rng.uniform(-20, 20, size=(8, 24))
        noisy_out = noisy.softmax(block)  # must not raise: row-path fallback
        assert noisy_out.shape == block.shape
        assert not np.array_equal(noisy_out, ideal.softmax(block))
        assert noisy.rows_processed == 8

    def test_all_flipped_row_resolves_to_true_maximum(self):
        # regression: with length-1 rows an injected flip can clear every
        # matchline; the controller re-search must recover the true max
        # instead of raising mid-sweep
        config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT, cam_search_error_rate=1e-3, cam_seed=0)
        engine = RRAMSoftmaxEngine(config)
        for value in np.linspace(-20, 20, 200):
            probs = engine.softmax_row(np.array([value]))
            np.testing.assert_array_equal(probs, [1.0])

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxEngineConfig(cam_search_error_rate=1.5)


class TestHotPathPurity:
    """process/process_batch leave no shared state behind (ideal devices)."""

    def test_exponential_unit_is_repeatable(self, rng):
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        codes = rng.integers(0, 50, size=64)
        first = unit.process(codes)
        second = unit.process(codes)
        np.testing.assert_array_equal(first.exponentials, second.exponentials)
        assert first.denominator == second.denominator
        np.testing.assert_array_equal(first.histogram, second.histogram)

    def test_counterbank_is_not_mutated(self, rng):
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        unit.process(rng.integers(0, 50, size=64))
        unit.process_batch(rng.integers(0, 50, size=(4, 64)))
        assert unit.counters.values.sum() == 0
        assert unit.counters.increment_count == 0

    def test_interleaved_row_and_batch_results_agree(self, rng):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        block = rng.uniform(-30, 30, size=(6, 32))
        interleaved = []
        for i in range(6):
            interleaved.append(engine.softmax_row(block[i]))
            engine.softmax_batch(block)  # must not disturb subsequent rows
        np.testing.assert_array_equal(np.stack(interleaved), engine.softmax_batch(block))


class TestAccessStats:
    def test_block_stats_accumulate(self, rng):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        block = rng.uniform(-30, 30, size=(10, 32))
        engine.softmax_batch(block)
        stats = engine.access_stats
        assert stats.rows == 10
        assert stats.elements == 320
        assert stats.cam_sub_searches == 320
        assert stats.sub_passes == 320
        assert stats.register_writes == 10
        assert stats.vmm_passes == 10
        assert stats.divides == 320
        assert 0 < stats.counter_increments <= 320
        assert stats.lut_reads == 320 - stats.cam_misses

    def test_row_and_batch_paths_record_identical_stats(self, rng):
        block = rng.uniform(-40, 40, size=(7, 48))
        batch_engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=MRPC_FORMAT))
        row_engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=MRPC_FORMAT))
        batch_engine.softmax_batch(block)
        _row_by_row(row_engine, block)
        assert batch_engine.access_stats == row_engine.access_stats

    def test_stats_compose(self):
        one = AccessStats.for_block(1, 8)
        ten = AccessStats.for_block(10, 8)
        assert one.scaled(10) == ten
        assert one + one == AccessStats.for_block(2, 8)
        with pytest.raises(ValueError):
            AccessStats(rows=-1)

    def test_costs_derive_from_stats(self):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        stats = engine.stats_for(1, 128)
        assert engine.energy_j_of(stats) == engine.row_energy_j(128)
        assert engine.latency_s_of(stats) == engine.row_latency_s(128)
        ledger = engine.ledger_of(stats)
        assert ledger.total_energy_j == pytest.approx(engine.row_energy_j(128), rel=0.35)
        # a 100-row block costs exactly 100x one row in energy
        assert engine.batch_energy_j(100, 128) == pytest.approx(
            100 * engine.row_energy_j(128)
        )

    def test_live_stats_power_matches_closed_form(self, rng):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        block = rng.uniform(-3, 3, size=(16, 128))  # narrow: no misses
        engine.softmax_batch(block)
        live = engine.access_stats
        assert live.cam_misses == 0
        assert engine.energy_j_of(live) == pytest.approx(
            engine.batch_energy_j(16, 128), rel=0.05
        )


class TestBatchedNoise:
    def test_noise_draws_vectorized_but_statistically_sane(self, rng):
        config = SoftmaxEngineConfig(
            fmt=CNEWS_FORMAT, noise=NoiseConfig(read_noise_sigma=0.05, seed=11)
        )
        noisy = RRAMSoftmaxEngine(config)
        ideal = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        block = rng.uniform(-20, 20, size=(32, 64))
        noisy_out = noisy.softmax_batch(block)
        ideal_out = ideal.softmax_batch(block)
        assert not np.allclose(noisy_out, ideal_out)
        np.testing.assert_allclose(noisy_out.sum(axis=-1), 1.0, atol=0.25)
        assert np.max(np.abs(noisy_out - ideal_out)) < 0.2
