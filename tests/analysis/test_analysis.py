"""Tests for the analysis package (bit-width, accuracy, breakdown, efficiency, ablations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ablation import AblationSuite
from repro.analysis.accuracy import AccuracyAnalyzer
from repro.analysis.bitwidth import BitwidthAnalyzer
from repro.analysis.breakdown import LatencyBreakdownAnalyzer
from repro.analysis.efficiency import EfficiencyComparison
from repro.nn.softmax_models import FixedPointSoftmax, ReferenceSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT, FixedPointFormat
from repro.workloads import CNEWS_PROFILE, COLA_PROFILE, DATASET_PROFILES, MRPC_PROFILE
from repro.workloads.sweeps import SequenceLengthSweep


class TestBitwidthAnalysis:
    """E4: the paper's per-dataset precision table."""

    def test_reproduces_paper_bitwidth_table(self):
        analyzer = BitwidthAnalyzer()
        results = {r.dataset: r for r in analyzer.analyze_all(DATASET_PROFILES)}
        assert (results["CNEWS"].integer_bits, results["CNEWS"].frac_bits) == (6, 2)
        assert (results["MRPC"].integer_bits, results["MRPC"].frac_bits) == (6, 3)
        assert (results["CoLA"].integer_bits, results["CoLA"].frac_bits) == (5, 2)
        assert results["CNEWS"].total_bits == 8
        assert results["MRPC"].total_bits == 9
        assert results["CoLA"].total_bits == 7

    def test_result_is_stable_across_seeds(self):
        for seed in (1, 2):
            result = BitwidthAnalyzer(seed=seed).analyze(MRPC_PROFILE)
            assert result.total_bits == 9

    def test_requirement_fmt_property(self):
        result = BitwidthAnalyzer(num_rows=64).analyze(COLA_PROFILE)
        assert result.fmt == FixedPointFormat(result.integer_bits, result.frac_bits)

    def test_tighter_budget_needs_more_bits(self):
        loose = BitwidthAnalyzer(kl_budget=1e-1, num_rows=64).analyze(CNEWS_PROFILE)
        tight = BitwidthAnalyzer(kl_budget=1e-5, num_rows=64).analyze(CNEWS_PROFILE)
        assert tight.frac_bits >= loose.frac_bits

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BitwidthAnalyzer(kl_budget=0)
        with pytest.raises(ValueError):
            BitwidthAnalyzer(num_rows=0)
        with pytest.raises(ValueError):
            BitwidthAnalyzer(range_coverage_percentile=10.0)


class TestAccuracyAnalyzer:
    def test_reference_softmax_has_zero_error(self):
        analyzer = AccuracyAnalyzer(num_rows=32)
        metrics = analyzer.fidelity(ReferenceSoftmax(), CNEWS_PROFILE, seq_len=32)
        assert metrics.mean_kl == pytest.approx(0.0, abs=1e-9)
        assert metrics.max_abs_error == pytest.approx(0.0, abs=1e-9)

    def test_fixed_point_fidelity_improves_with_bits(self):
        analyzer = AccuracyAnalyzer(num_rows=32)
        sweep = analyzer.precision_sweep(CNEWS_PROFILE, [(6, 1), (6, 4)])
        assert sweep[1].fidelity.mean_kl < sweep[0].fidelity.mean_kl

    def test_precision_sweep_with_task_accuracy(self):
        analyzer = AccuracyAnalyzer(num_rows=16)
        sweep = analyzer.precision_sweep(
            COLA_PROFILE, [(5, 2)], include_task_accuracy=True
        )
        assert sweep[0].task_accuracy is not None
        assert 0.0 <= sweep[0].task_accuracy <= 1.0

    def test_accuracy_drop_table(self):
        analyzer = AccuracyAnalyzer(num_rows=16)
        drops = analyzer.accuracy_drop_table(
            [CNEWS_PROFILE], lambda profile: CNEWS_FORMAT
        )
        assert "CNEWS" in drops
        assert drops["CNEWS"] <= 0.3

    def test_empty_formats_rejected(self):
        with pytest.raises(ValueError):
            AccuracyAnalyzer().precision_sweep(CNEWS_PROFILE, [])


class TestLatencyBreakdown:
    """E1: the introduction's softmax-share observation."""

    def test_share_monotonically_increases(self):
        rows = LatencyBreakdownAnalyzer().sweep_rows()
        shares = [row.softmax_share for row in rows]
        assert shares == sorted(shares)

    def test_crossover_at_512(self):
        analyzer = LatencyBreakdownAnalyzer()
        assert analyzer.crossover_length() == 512

    def test_share_at_512_is_majority(self):
        row = LatencyBreakdownAnalyzer().row_for(512)
        assert row.softmax_share > 0.5
        assert row.softmax_s > row.matmul_s

    def test_custom_sweep(self):
        analyzer = LatencyBreakdownAnalyzer(sweep=SequenceLengthSweep(lengths=(64, 128)))
        assert len(analyzer.sweep_rows()) == 2

    def test_format_table(self):
        text = LatencyBreakdownAnalyzer(sweep=SequenceLengthSweep(lengths=(128,))).format_table()
        assert "128" in text and "%" in text


class TestEfficiencyComparison:
    """E6 / Fig. 3."""

    def test_star_wins_and_ratios_land_in_paper_regime(self):
        results = EfficiencyComparison().run()
        assert results.star_efficiency == pytest.approx(612.66, rel=0.25)
        assert results.gain_over_gpu == pytest.approx(30.63, rel=0.35)
        assert results.gain_over_pipelayer == pytest.approx(4.32, rel=0.35)
        assert results.gain_over_retransformer == pytest.approx(1.31, rel=0.25)

    def test_reports_cover_all_four_designs(self):
        comparison = EfficiencyComparison()
        names = {report.name for report in comparison.reports()}
        assert names == {"Titan RTX", "PipeLayer", "ReTransformer", "STAR"}

    def test_summary_keys(self):
        summary = EfficiencyComparison().run().summary()
        assert set(summary) == {
            "star_gops_per_watt",
            "gain_over_gpu",
            "gain_over_pipelayer",
            "gain_over_retransformer",
        }


class TestAblations:
    def test_pipeline_ablation_speedup_greater_than_one(self):
        rows = AblationSuite().pipeline_ablation((128, 256))
        assert all(row.speedup > 1.0 for row in rows)
        assert [row.seq_len for row in rows] == [128, 256]

    def test_precision_ablation_monotone_fidelity(self):
        rows = AblationSuite().precision_ablation(
            CNEWS_PROFILE, formats=((5, 1), (6, 3)), num_rows=6, seq_len=24
        )
        assert rows[0].mean_kl > rows[1].mean_kl
        assert rows[1].area_um2 >= rows[0].area_um2 * 0.5

    def test_noise_ablation_orders_by_severity(self):
        rows = AblationSuite().noise_ablation(
            CNEWS_PROFILE, CNEWS_FORMAT, num_rows=6, seq_len=24
        )
        labels = [row.label for row in rows]
        assert labels == ["ideal", "typical", "aggressive"]
        # noise perturbs individual outputs even when the aggregate KL barely moves
        assert rows[2].max_abs_error >= rows[0].max_abs_error
        # even aggressive noise keeps the distribution close (paper's premise)
        assert rows[2].max_abs_error < 0.2
