"""Benchmark: the vectorized batched backend of the RRAM softmax engine.

The paper's headline claim is softmax *throughput*; reproducing it at BERT
scale (12 layers x 12 heads x 512 x 512 score matrices) requires the engine
simulation itself to be fast.  These benchmarks record the batched backend's
rows/sec into the pytest-benchmark report (seeding the ``BENCH_*.json``
trajectory) and act as the performance gate:

* the flagship block — 1536 rows x 512 elements, one full BERT-base layer's
  attention rows at L=512 — must run at least **50x** faster batched than
  through the row-by-row cycle-accurate loop;
* a small smoke block must stay at least **10x** faster, failing the suite
  on any regression that erodes the batched path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SoftmaxEngineConfig
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.softmax_models import FixedPointSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT
from repro.workloads import CNEWS_PROFILE, AttentionScoreGenerator

from conftest import best_of, record


def _row_loop_seconds(engine: RRAMSoftmaxEngine, block: np.ndarray, sample_rows: int) -> float:
    """Wall time of the row-by-row loop, extrapolated from a row sample.

    Rows are processed independently, so the per-row cost is uniform and a
    sample extrapolates linearly — running all 1536 rows would dominate the
    benchmark suite's runtime for no extra information.
    """
    sample = block[:sample_rows]
    start = time.perf_counter()
    for row in sample:
        engine.softmax_row(row)
    elapsed = time.perf_counter() - start
    return elapsed * (block.shape[0] / sample_rows)


def test_bench_engine_batched_block(benchmark):
    """Flagship: 1536 x 512 block, >= 50x over the row-by-row loop."""
    engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    block = AttentionScoreGenerator(CNEWS_PROFILE, seed=0).rows(1536, 512)
    engine.softmax_batch(block)  # warm the allocator and caches

    probs = benchmark(engine.softmax_batch, block)

    batch_s = best_of(lambda: engine.softmax_batch(block), repeats=7)
    row_s = _row_loop_seconds(engine, block, sample_rows=96)
    speedup = row_s / batch_s
    record(
        benchmark,
        rows=1536,
        seq_len=512,
        batched_rows_per_s=round(1536 / batch_s),
        row_loop_rows_per_s=round(1536 / row_s),
        speedup_vs_row_loop=round(speedup, 1),
    )
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
    # bit-identical to the functional model at full scale
    np.testing.assert_array_equal(probs, FixedPointSoftmax(CNEWS_FORMAT)(block))
    assert speedup >= 50.0, (
        f"batched backend is only {speedup:.1f}x faster than the row loop "
        f"({batch_s * 1e3:.1f} ms vs {row_s:.2f} s); the ISSUE demands >= 50x"
    )


def test_bench_batched_speedup_smoke(benchmark):
    """CI perf smoke: a small block must stay >= 10x over the row loop."""
    engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    block = AttentionScoreGenerator(CNEWS_PROFILE, seed=1).rows(256, 128)
    engine.softmax_batch(block)  # warm

    probs = benchmark(engine.softmax_batch, block)

    batch_s = best_of(lambda: engine.softmax_batch(block), repeats=9)
    row_s = _row_loop_seconds(engine, block, sample_rows=64)
    speedup = row_s / batch_s
    record(
        benchmark,
        rows=256,
        seq_len=128,
        batched_rows_per_s=round(256 / batch_s),
        speedup_vs_row_loop=round(speedup, 1),
    )
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
    assert speedup >= 10.0, (
        f"batched backend fell below the 10x floor ({speedup:.1f}x); "
        "the vectorized hot path has regressed"
    )
