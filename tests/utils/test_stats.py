"""Tests for repro.utils.stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    geometric_mean,
    kl_divergence,
    percentile_range,
    relative_error,
    summarize,
)


class TestRunningStats:
    def test_matches_numpy_moments(self, rng):
        values = rng.normal(3.0, 2.0, size=500)
        stats = RunningStats()
        stats.update(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values), rel=1e-9)
        assert stats.minimum == pytest.approx(np.min(values))
        assert stats.maximum == pytest.approx(np.max(values))

    def test_incremental_updates_equal_batch(self, rng):
        values = rng.normal(size=100)
        batch = RunningStats()
        batch.update(values)
        incremental = RunningStats()
        for value in values:
            incremental.update(value)
        assert incremental.mean == pytest.approx(batch.mean)
        assert incremental.variance == pytest.approx(batch.variance)

    def test_range(self):
        stats = RunningStats()
        stats.update([1.0, 5.0, -2.0])
        assert stats.range == pytest.approx(7.0)

    def test_empty_stats_are_nan(self):
        stats = RunningStats()
        assert np.isnan(stats.variance)
        assert np.isnan(stats.range)


class TestSummaries:
    def test_summarize_keys_and_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_range_covers_bulk(self, rng):
        values = rng.normal(0, 1, size=10000)
        low, high = percentile_range(values, coverage=0.95)
        inside = np.mean((values >= low) & (values <= high))
        assert inside == pytest.approx(0.95, abs=0.02)

    def test_percentile_range_invalid_coverage(self):
        with pytest.raises(ValueError):
            percentile_range(np.ones(10), coverage=0.0)

    def test_percentile_range_empty(self):
        with pytest.raises(ValueError):
            percentile_range(np.array([]))


class TestRatios:
    def test_geometric_mean_of_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_geometric_mean_of_reciprocal_pair(self):
        assert geometric_mean([2.0, 0.5]) == pytest.approx(1.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")


class TestKLDivergence:
    def test_identical_distributions_have_zero_kl(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_kl_is_non_negative(self, rng):
        for _ in range(20):
            p = rng.dirichlet(np.ones(16))
            q = rng.dirichlet(np.ones(16))
            assert kl_divergence(p, q) >= -1e-12

    def test_kl_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.ones(3) / 3, np.ones(4) / 4)

    def test_kl_normalises_inputs(self):
        p = np.array([2.0, 3.0, 5.0])
        q = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, q) == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=2, max_value=32), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_kl_non_negative_property(self, size, seed):
        generator = np.random.default_rng(seed)
        p = generator.dirichlet(np.ones(size))
        q = generator.dirichlet(np.ones(size))
        assert kl_divergence(p, q) >= -1e-12
