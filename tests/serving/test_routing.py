"""Topology-aware routing: policies, network stage, stealing, faults.

Unit coverage of :mod:`repro.serving.routing` and the surfaces it threads
through — the simulator's ``router=`` switch, the report's
:class:`RoutingStats` section and merge, the profiler's routing columns,
and the sharded variant's topology partitioning.  The statistical /
bit-identity legs live in ``test_routing_properties.py``.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    AdmissionController,
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    FixedServiceModel,
    NetworkModel,
    NO_BATCHING,
    PoissonArrivals,
    RetryPolicy,
    Router,
    RoutingStats,
    ROUTING_POLICIES,
    ServingReport,
    ServingSimulator,
    ShardedServingSimulator,
    SLOClass,
    SLOPolicy,
    StealRecord,
)
from repro.serving.autoscale import Autoscaler


class PerTokenModel:
    """Minimal length-sensitive pricing: ``batch x (base + seq_len x rate)``."""

    def __init__(self, base_s: float, per_token_s: float) -> None:
        self.base_s = base_s
        self.per_token_s = per_token_s

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return batch_size * (self.base_s + seq_len * self.per_token_s)

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return 0.0


def fixed_fleet(num_chips: int = 4, service_s: float = 1e-3) -> ChipFleet:
    return ChipFleet(
        FixedServiceModel(service_s, request_energy_j=1e-5, idle_power_w=0.1),
        num_chips=num_chips,
    )


def routed(
    num_chips: int = 4,
    policy: str = "shortest_expected_delay",
    network: NetworkModel = NetworkModel(),
    stealing: bool = True,
    batcher: DynamicBatcher = NO_BATCHING,
    **kwargs,
) -> ServingSimulator:
    router = Router(policy=policy, network=network, stealing=stealing)
    return ServingSimulator(fixed_fleet(num_chips), batcher, router=router, **kwargs)


class TestNetworkModel:
    def test_scalar_link_replicates(self):
        assert NetworkModel(link_latency_s=2e-6).links(3) == (2e-6,) * 3

    def test_per_link_tuple_must_match_fleet(self):
        network = NetworkModel(link_latency_s=(1e-6, 2e-6))
        assert network.links(2) == (1e-6, 2e-6)
        with pytest.raises(ValueError, match="link latencies"):
            network.links(3)

    def test_negative_latencies_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(link_latency_s=-1e-6)
        with pytest.raises(ValueError):
            NetworkModel(link_latency_s=(1e-6, -2e-6))
        with pytest.raises(ValueError):
            NetworkModel(steal_latency_s=-1e-6)

    def test_for_chips_slices_tuple_links(self):
        network = NetworkModel(link_latency_s=(1e-6, 2e-6, 3e-6, 4e-6))
        assert network.for_chips(slice(1, 3)).link_latency_s == (2e-6, 3e-6)
        scalar = NetworkModel(link_latency_s=5e-6)
        assert scalar.for_chips(slice(0, 2)) is scalar


class TestRouterValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            Router(policy="by-vibes")
        assert set(ROUTING_POLICIES) == {
            "round_robin",
            "join_shortest_queue",
            "shortest_expected_delay",
        }

    def test_router_with_autoscaler_rejected(self):
        scaler = Autoscaler(min_chips=1)
        with pytest.raises(ValueError, match="autoscal"):
            ServingSimulator(fixed_fleet(), autoscaler=scaler, router=Router())

    def test_router_with_closed_loop_rejected(self):
        from repro.serving.arrivals import ClosedLoopClients

        simulator = routed()
        with pytest.raises(ValueError, match="closed-loop"):
            simulator.run_closed_loop(
                ClosedLoopClients(num_clients=4, think_s=1e-3, seed=0), 20
            )


class TestRoutingPolicies:
    def test_round_robin_interleaves_queues(self):
        simulator = routed(policy="round_robin")
        report = simulator.run(PoissonArrivals(500.0, seed=0).generate(40))
        assert report.routing is not None
        assert report.routing.policy == "round_robin"
        assert report.routing.num_routed == 40
        assert report.routing.queue_requests == (10, 10, 10, 10)

    def test_jsq_balances_queues(self):
        simulator = routed(policy="join_shortest_queue")
        report = simulator.run(PoissonArrivals(4000.0, seed=1).generate(400))
        assert report.num_requests == 400
        assert min(report.routing.queue_requests) > 0

    def test_sed_prefers_fast_chip(self):
        # chip 0 serves 4x faster: the oracle should send it most traffic
        fleet = ChipFleet(
            service_models=[
                FixedServiceModel(1e-3),
                FixedServiceModel(4e-3),
            ]
        )
        simulator = ServingSimulator(
            fleet, router=Router(policy="shortest_expected_delay", stealing=False)
        )
        report = simulator.run(PoissonArrivals(700.0, seed=2).generate(300))
        assert report.routing.queue_requests[0] > report.routing.queue_requests[1]

    def test_sed_routes_long_sequences_to_big_chip(self):
        # chip 0 is insensitive to length, chip 1 prices it steeply: long
        # requests must prefer chip 0 even under load
        fleet = ChipFleet(
            service_models=[
                FixedServiceModel(2e-3),
                PerTokenModel(base_s=1e-4, per_token_s=1e-4),
            ]
        )
        simulator = ServingSimulator(
            fleet, router=Router(policy="shortest_expected_delay", stealing=False)
        )
        report = simulator.run(
            PoissonArrivals(400.0, seq_len=[16, 512], seed=3).generate(300)
        )
        long_chips = [
            record.chip for record in report.requests if record.seq_len == 512
        ]
        assert long_chips and all(chip == 0 for chip in long_chips)

    def test_all_policies_conserve_requests(self):
        requests = PoissonArrivals(2000.0, seed=4).generate(157)
        for policy in ROUTING_POLICIES:
            report = routed(policy=policy).run(requests)
            assert report.num_requests == 157
            assert sorted(report.requests.index.tolist()) == list(range(157))


class TestNetworkStage:
    def test_dispatch_waits_for_the_hop(self):
        hop = 5e-4
        report = routed(network=NetworkModel(link_latency_s=hop)).run(
            PoissonArrivals(500.0, seed=5).generate(60)
        )
        for record in report.requests:
            assert record.dispatch_s >= record.arrival_s + hop - 1e-12

    def test_route_network_time_accumulates(self):
        hop = 1e-4
        report = routed(network=NetworkModel(link_latency_s=hop)).run(
            PoissonArrivals(500.0, seed=5).generate(60)
        )
        assert report.routing.route_network_s == pytest.approx(60 * hop)

    def test_zero_latency_links_add_no_hop_events(self):
        requests = PoissonArrivals(500.0, seed=6).generate(50)
        simulator = routed()
        simulator.run(requests, label="zero-hop")
        zero_events = simulator.last_profile.events_scheduled
        delayed = routed(network=NetworkModel(link_latency_s=1e-5))
        delayed.run(requests, label="with-hop")
        assert delayed.last_profile.events_scheduled == zero_events + len(requests)


class TestWorkStealing:
    def steal_report(self, stealing: bool) -> ServingReport:
        # round-robin halves traffic over a 4x-speed-skewed pair: the fast
        # chip drains its own queue and then idles unless it may steal
        fleet = ChipFleet(
            FixedServiceModel(1e-3, request_energy_j=1e-5, idle_power_w=0.1),
            num_chips=2,
            speedups=(4.0, 1.0),
        )
        router = Router(
            policy="round_robin",
            network=NetworkModel(steal_latency_s=1e-5),
            stealing=stealing,
        )
        simulator = ServingSimulator(fleet, router=router)
        return simulator.run(PoissonArrivals(3000.0, seed=7).generate(400))

    def test_stealing_happens_and_is_recorded(self):
        report = self.steal_report(stealing=True)
        stats = report.routing
        assert stats.stolen_batches > 0
        assert len(stats.steals) == stats.stolen_batches
        assert stats.steal_network_s == pytest.approx(stats.stolen_batches * 1e-5)
        for steal in stats.steals:
            assert steal.queue != steal.chip
            batch = report.batches[steal.batch_index]
            assert batch.chip == steal.chip
            # the stolen batch pays the hop after the steal decision
            assert batch.dispatch_s == pytest.approx(steal.decided_s + 1e-5)

    def test_stealing_improves_makespan(self):
        with_steal = self.steal_report(stealing=True)
        without = self.steal_report(stealing=False)
        assert without.routing.stolen_batches == 0
        assert with_steal.makespan_s < without.makespan_s

    def test_steal_record_validates(self):
        with pytest.raises(ValueError, match="steal"):
            StealRecord(batch_index=0, queue=1, chip=1, decided_s=0.0)


class TestRoutedFaults:
    def fault_run(self) -> ServingReport:
        simulator = routed(
            num_chips=3,
            batcher=DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            faults=FaultInjector(mtbf_s=0.05, detection_s=1e-3, repair_s=5e-3, seed=9),
            retry=RetryPolicy(max_attempts=4),
        )
        return simulator.run(PoissonArrivals(2000.0, seed=9).generate(600))

    def test_fault_run_completes_with_retries(self):
        report = self.fault_run()
        assert report.faults_enabled
        assert report.num_failures > 0
        assert report.num_retries > 0
        assert report.num_requests + report.num_shed + report.num_abandoned == 600

    def test_fault_run_reproducible(self):
        assert self.fault_run().requests == self.fault_run().requests

    def test_admission_sheds_against_fleet_backlog(self):
        simulator = routed(
            num_chips=2,
            admission=AdmissionController(max_queue_depth=10),
        )
        report = simulator.run(PoissonArrivals(50000.0, seed=10).generate(500))
        assert report.num_shed > 0
        assert report.num_requests + report.num_shed == 500

    def test_routed_edf_improves_attainment(self):
        # routing composes with EDF dispatch: deadlines drain first
        slo = SLOPolicy(
            (SLOClass("interactive", 5e-3), SLOClass("batch", 1.0))
        )
        requests = slo.tag_by_length(
            PoissonArrivals(4000.0, seq_len=[64, 128], seed=11).generate(500),
            boundaries=(64,),
        )
        def run(order: str) -> float:
            simulator = routed(
                num_chips=2,
                policy="round_robin",
                batcher=DynamicBatcher(max_batch_size=4, max_wait_s=1e-3, order=order),
                retry=RetryPolicy(),
            )
            return simulator.run(requests).deadline_attainment()

        assert run("edf") >= run("fifo")


class TestRoutingStatsAndReport:
    def one_report(self) -> ServingReport:
        return routed(num_chips=2, policy="round_robin").run(
            PoissonArrivals(3000.0, seed=12).generate(200)
        )

    def test_summary_and_format_include_routing(self):
        report = self.one_report()
        assert report.routing_enabled
        summary = report.summary()
        assert summary["num_routed"] == 200
        text = report.format_table()
        assert "routing policy" in text
        assert "local / stolen batches" in text
        assert "per-queue peak depth" in text

    def test_unrouted_report_has_no_routing_section(self):
        report = ServingSimulator(fixed_fleet(2)).run(
            PoissonArrivals(3000.0, seed=12).generate(200)
        )
        assert not report.routing_enabled
        assert "routing policy" not in report.format_table()
        assert "num_routed" not in report.summary()

    def test_stats_derived_metrics(self):
        stats = self.one_report().routing
        assert stats.num_queues == 2
        assert stats.peak_queue_depth == max(stats.queue_peaks)
        assert 0.0 <= stats.stolen_fraction <= 1.0
        total = stats.local_batches + stats.stolen_batches
        assert stats.stolen_fraction == pytest.approx(stats.stolen_batches / total)
        for queue in range(stats.num_queues):
            assert stats.queue_mean_wait_s(queue) >= 0.0

    def test_merge_offsets_queues_and_sums_counters(self):
        first, second = self.one_report(), self.one_report()
        merged = ServingReport.merge([first, second])
        stats = merged.routing
        assert stats.num_routed == 400
        assert stats.queue_peaks == first.routing.queue_peaks + second.routing.queue_peaks
        assert stats.stolen_batches == (
            first.routing.stolen_batches + second.routing.stolen_batches
        )
        for steal in stats.steals[len(first.routing.steals) :]:
            assert steal.queue >= first.num_chips
            assert steal.chip >= first.num_chips

    def test_merge_routed_with_unrouted_rejected(self):
        routed_report = self.one_report()
        plain = ServingSimulator(fixed_fleet(2)).run(
            PoissonArrivals(3000.0, seed=12).generate(200)
        )
        with pytest.raises(ValueError, match="routed"):
            ServingReport.merge([routed_report, plain])

    def test_merge_mixed_policies_rejected(self):
        jsq = routed(num_chips=2, policy="join_shortest_queue").run(
            PoissonArrivals(3000.0, seed=12).generate(200)
        )
        with pytest.raises(ValueError, match="polic"):
            ServingReport.merge([self.one_report(), jsq])


class TestRoutedProfiling:
    def test_profile_routing_counters(self):
        simulator = routed(num_chips=2, policy="round_robin")
        report = simulator.run(
            PoissonArrivals(3000.0, seed=13).generate(150), label="routed"
        )
        profile = simulator.last_profile
        assert profile.routed_requests == 150
        assert profile.stolen_batches == report.routing.stolen_batches
        assert profile.peak_queue_depth == report.routing.peak_queue_depth

    def test_unrouted_profile_counters_stay_zero(self):
        simulator = ServingSimulator(fixed_fleet(2))
        simulator.run(PoissonArrivals(3000.0, seed=13).generate(150), label="plain")
        assert simulator.last_profile.routed_requests == 0
        assert simulator.last_profile.stolen_batches == 0
        assert simulator.last_profile.peak_queue_depth == 0

    def test_profiler_table_shows_routing_columns(self):
        from repro.serving import Profiler

        profiler = Profiler()
        profiler.enabled = True
        simulator = routed(num_chips=2)
        simulator.run(PoissonArrivals(3000.0, seed=13).generate(100), label="routed")
        profiler.record(simulator.last_profile)
        table = profiler.format_table()
        assert "routed" in table and "stolen" in table and "peak q" in table


class TestShardedRouting:
    def test_serial_matches_parallel_with_router(self):
        router = Router(
            policy="shortest_expected_delay",
            network=NetworkModel(
                link_latency_s=(1e-5, 2e-5, 3e-5, 4e-5), steal_latency_s=1e-5
            ),
        )
        arrivals = PoissonArrivals(3000.0, seq_len=[64, 128], seed=14)

        def run(parallel: bool) -> ServingReport:
            simulator = ShardedServingSimulator(
                fixed_fleet(4), num_shards=2, router=router, parallel=parallel
            )
            return simulator.run_poisson(arrivals, 800)

        serial, parallel = run(False), run(True)
        assert serial.requests == parallel.requests
        assert serial.batches == parallel.batches
        assert serial.routing == parallel.routing

    def test_topology_partitions_with_chips(self):
        router = Router(network=NetworkModel(link_latency_s=(1e-5, 2e-5, 3e-5, 4e-5)))
        simulator = ShardedServingSimulator(
            fixed_fleet(4), num_shards=2, router=router, parallel=False
        )
        tasks = simulator._tasks()
        assert tasks[0].router.network.link_latency_s == (1e-5, 2e-5)
        assert tasks[1].router.network.link_latency_s == (3e-5, 4e-5)

    def test_merged_routing_covers_all_queues(self):
        simulator = ShardedServingSimulator(
            fixed_fleet(4), num_shards=2, router=Router(), parallel=False
        )
        report = simulator.run_poisson(PoissonArrivals(3000.0, seed=15), 600)
        assert report.routing.num_queues == 4
        assert report.routing.num_routed == 600
