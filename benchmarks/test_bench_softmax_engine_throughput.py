"""Supplementary benchmark: raw simulation throughput of the softmax models.

Not a paper artefact, but useful for users of the library: how fast the
functional fixed-point softmax and the crossbar-level engine simulate, and
how the analog MatMul engine scales on small GEMMs.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MatMulEngineConfig, SoftmaxEngineConfig
from repro.core.matmul_engine import MatMulEngine
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.softmax_models import FixedPointSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT
from repro.workloads import CNEWS_PROFILE, AttentionScoreGenerator

from conftest import record


def test_bench_functional_softmax_throughput(benchmark):
    """Vectorised functional model over a full attention tensor (12 x 128 x 128)."""
    scores = AttentionScoreGenerator(CNEWS_PROFILE, seed=0).rows(12 * 128, 128)
    scores = scores.reshape(12, 128, 128)
    softmax_fn = FixedPointSoftmax(CNEWS_FORMAT)

    probs = benchmark(softmax_fn, scores)

    record(benchmark, elements=int(scores.size))
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)


def test_bench_engine_softmax_row(benchmark):
    """Crossbar-level engine on a single 128-element row."""
    engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    row = AttentionScoreGenerator(CNEWS_PROFILE, seed=1).rows(1, 128)[0]

    probs = benchmark(engine.softmax_row, row)

    record(benchmark, modeled_row_latency_us=round(engine.row_latency_s(128) * 1e6, 3))
    assert probs.sum() == benchmark.extra_info.get("sum", probs.sum())


def test_bench_analog_matmul_tile(benchmark, rng=np.random.default_rng(3)):
    """One analog 128 x 128 tile VMM (functional path with 8-bit inputs)."""
    engine = MatMulEngine(MatMulEngineConfig(bits_per_cell=4))
    tile = engine.new_tile()
    tile.program(rng.normal(size=(128, 128)))
    vector = rng.uniform(0, 1, size=128)

    result = benchmark(tile.matvec, vector)

    record(
        benchmark,
        modeled_vmm_latency_ns=round(engine.tile_vmm_latency_s() * 1e9, 2),
        modeled_vmm_energy_pj=round(engine.tile_vmm_energy_j() * 1e12, 2),
    )
    assert result.shape == (128,)
