"""Transformer encoder layer and stack (BERT-base topology).

Both pluggable pieces thread through here: the softmax implementation
(``softmax_fn``) and the GEMM compute backend (``backend``,
:mod:`repro.nn.backend`) are passed once and shared by every layer of the
stack, so one constructor argument switches the whole encoder between
exact NumPy and simulated analog crossbar hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.backend import ComputeBackend
from repro.nn.layers import FeedForward, LayerNorm

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.scheduler import AttentionExecutor, ExecutedSchedule

__all__ = ["TransformerEncoderLayer", "TransformerEncoder"]


class TransformerEncoderLayer:
    """One post-norm BERT encoder layer: MHA + Add&Norm + FFN + Add&Norm."""

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        intermediate: int,
        rng: np.random.Generator | None = None,
        softmax_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        backend: ComputeBackend | None = None,
        executor: "AttentionExecutor | None" = None,
    ) -> None:
        generator = rng if rng is not None else np.random.default_rng(0)
        self.attention = MultiHeadAttention(
            hidden,
            num_heads,
            rng=generator,
            softmax_fn=softmax_fn,
            backend=backend,
            executor=executor,
        )
        self.attention_norm = LayerNorm(hidden)
        self.feed_forward = FeedForward(hidden, intermediate, rng=generator, backend=backend)
        self.output_norm = LayerNorm(hidden)

    def __call__(self, x: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Forward pass with residual connections."""
        attended = self.attention(x, mask=mask)
        x = self.attention_norm(x + attended)
        transformed = self.feed_forward(x)
        return self.output_norm(x + transformed)

    def flops(self, seq_len: int) -> dict[str, int]:
        """Per-operation FLOP counts for one sequence through this layer."""
        return {
            "qkv_projections": self.attention.projection_flops(seq_len),
            "attention_scores": self.attention.score_flops(seq_len),
            "softmax": self.attention.softmax_flops(seq_len),
            "feed_forward": self.feed_forward.flops(seq_len),
        }


class TransformerEncoder:
    """A stack of identical encoder layers sharing one softmax and one backend."""

    def __init__(
        self,
        num_layers: int,
        hidden: int,
        num_heads: int,
        intermediate: int,
        rng: np.random.Generator | None = None,
        softmax_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        backend: ComputeBackend | None = None,
        executor: "AttentionExecutor | None" = None,
    ) -> None:
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        generator = rng if rng is not None else np.random.default_rng(0)
        self.layers = [
            TransformerEncoderLayer(
                hidden,
                num_heads,
                intermediate,
                rng=generator,
                softmax_fn=softmax_fn,
                backend=backend,
                executor=executor,
            )
            for _ in range(num_layers)
        ]

    def __call__(self, x: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Forward pass through all layers."""
        for layer in self.layers:
            x = layer(x, mask=mask)
        return x

    def flops(self, seq_len: int) -> dict[str, int]:
        """Aggregated FLOP counts over all layers for one sequence."""
        totals: dict[str, int] = {}
        for layer in self.layers:
            for key, value in layer.flops(seq_len).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def collect_attention_scores(self) -> list[np.ndarray]:
        """Raw attention scores captured by each layer during the last forward."""
        scores = []
        for layer in self.layers:
            if layer.attention.last_scores is not None:
                scores.append(layer.attention.last_scores)
        return scores

    def collect_attention_schedules(self) -> "list[ExecutedSchedule]":
        """Executed attention schedules captured by each layer (executor runs)."""
        schedules = []
        for layer in self.layers:
            if layer.attention.last_schedule is not None:
                schedules.append(layer.attention.last_schedule)
        return schedules
