"""Request-level serving simulation of STAR accelerator fleets.

The paper models one attention stage; production serving is requests:
arrival processes, dynamic batching, whole-model chip occupancy and
tail-latency/energy-per-query reporting.  This package assembles those
layers on the shared discrete-event core (:mod:`repro.core.events`):

* :mod:`~repro.serving.arrivals` — open-loop Poisson, Markov-modulated
  (MMPP) and diurnal-curve request streams, trace replay, and closed-loop
  client populations whose arrivals react to completions;
* :mod:`~repro.serving.batcher` — the max-size + timeout dynamic batcher,
  draining FIFO or EDF (earliest absolute deadline first);
* :mod:`~repro.serving.slo` — SLO classes/policies for tagging traffic
  and the control-plane event loop (EDF dispatch, closed-loop clients,
  autoscaling);
* :mod:`~repro.serving.autoscale` — the hysteresis-band autoscaler that
  parks idle chips into non-volatile deep sleep and wakes them against
  utilization/backlog targets;
* :mod:`~repro.serving.fleet` — single- and multi-chip fleets priced by a
  service model (the STAR accelerator's batch-aware whole-model request
  timing, its linearized baseline, a fixed-service stand-in for theory
  checks, or a pre-priced timing table shipped to worker processes), with
  per-chip heterogeneity, shared bounded pricing caches, and tiered
  fidelity (a sampled fraction of dispatches priced off cached
  executed-schedule templates with per-layer jitter);
* :mod:`~repro.serving.simulator` — the event-driven simulation itself;
* :mod:`~repro.serving.routing` — topology-aware multi-queue serving:
  per-chip queues behind a front-end router with a configurable
  front-end→chip network stage, round-robin / join-shortest-queue /
  shortest-expected-delay routing (the latter using batch-aware pricing
  as a cost oracle, so long sequences prefer big-tile chips), and work
  stealing by idle chips;
* :mod:`~repro.serving.sharded` — the multi-process scale-out: partition
  fleet and traffic across worker-process shards and merge the reports;
* :mod:`~repro.serving.faults` — per-chip MTBF/MTTR failure–repair
  processes (repair priced as full-model operand reprogramming), retry
  policies with deadline-aware backoff, and admission control / load
  shedding for graceful degradation;
* :mod:`~repro.serving.report` — throughput / p50-p95-p99 latency / queue
  / utilization / energy-per-query reporting on columnar array-backed
  record tables, mergeable across shards, plus the availability ledger of
  fault-injected runs;
* :mod:`~repro.serving.profiling` — first-party hot-path counters
  (events, dispatch sweeps, wall time) behind the experiments CLI's
  ``--profile`` flag;
* :mod:`~repro.serving.theory` — M/D/1, M/M/1 and machine-repair
  M/M/1//N closed forms the simulator is cross-validated against.
"""

from repro.serving.arrivals import (
    ClosedLoopClients,
    DayCurveArrivals,
    MMPPArrivals,
    PoissonArrivals,
    Request,
    TraceArrivals,
)
from repro.serving.autoscale import Autoscaler
from repro.serving.batcher import BATCH_ORDERS, NO_BATCHING, DynamicBatcher
from repro.serving.faults import (
    AdmissionController,
    FaultInjector,
    FaultSession,
    NO_ADMISSION,
    RetryPolicy,
)
from repro.serving.fleet import (
    ChipFleet,
    ExponentialServiceModel,
    FixedServiceModel,
    LinearServiceModel,
    PricingCache,
    ServiceModel,
    StarServiceModel,
    TabulatedServiceModel,
    TieredServiceModel,
    TIER_ANALYTIC,
    TIER_EXECUTED,
)
from repro.serving.profiling import PROFILER, Profiler, RunProfile
from repro.serving.report import (
    BatchRecord,
    BatchTable,
    DropRecord,
    FailureRecord,
    RequestRecord,
    RequestTable,
    RetryRecord,
    RoutingStats,
    ScaleEvent,
    ServingReport,
    StealRecord,
)
from repro.serving.routing import ROUTING_POLICIES, NetworkModel, Router
from repro.serving.sharded import SPLIT_POLICIES, ShardedServingSimulator
from repro.serving.simulator import ServingSimulator
from repro.serving.slo import SLOClass, SLOPolicy
from repro.serving.theory import MachineRepairQueue, MD1Queue, MM1Queue

__all__ = [
    "Request",
    "PoissonArrivals",
    "TraceArrivals",
    "MMPPArrivals",
    "DayCurveArrivals",
    "ClosedLoopClients",
    "DynamicBatcher",
    "NO_BATCHING",
    "BATCH_ORDERS",
    "SLOClass",
    "SLOPolicy",
    "Autoscaler",
    "ServiceModel",
    "FixedServiceModel",
    "ExponentialServiceModel",
    "StarServiceModel",
    "LinearServiceModel",
    "TabulatedServiceModel",
    "TieredServiceModel",
    "TIER_ANALYTIC",
    "TIER_EXECUTED",
    "PricingCache",
    "ChipFleet",
    "ServingSimulator",
    "ShardedServingSimulator",
    "SPLIT_POLICIES",
    "Router",
    "NetworkModel",
    "ROUTING_POLICIES",
    "FaultInjector",
    "FaultSession",
    "RetryPolicy",
    "AdmissionController",
    "NO_ADMISSION",
    "RequestRecord",
    "BatchRecord",
    "RequestTable",
    "BatchTable",
    "DropRecord",
    "RetryRecord",
    "FailureRecord",
    "ScaleEvent",
    "StealRecord",
    "RoutingStats",
    "ServingReport",
    "Profiler",
    "RunProfile",
    "PROFILER",
    "MD1Queue",
    "MM1Queue",
    "MachineRepairQueue",
]
