"""Serving invariants: property tests and the M/D/1 queueing cross-check.

The property suite drives the simulator with randomly generated traffic,
fleets and batching policies and asserts the structural invariants any
correct serving system obeys: request conservation, causal timestamps,
FIFO dispatch (and FIFO completion within a batch), chip exclusivity and
Little's law at steady state.  The queueing cross-check pins the
simulator's single-chip no-batching limit to the Pollaczek–Khinchine
M/D/1 mean wait — the acceptance criterion of the serving subsystem.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    MD1Queue,
    MM1Queue,
    NO_BATCHING,
    PoissonArrivals,
    ServingSimulator,
)

# a random serving scenario: traffic, fleet size and batching policy
scenarios = st.fixed_dictionaries(
    {
        "num_requests": st.integers(min_value=1, max_value=120),
        "rate_rps": st.floats(min_value=10.0, max_value=5000.0),
        "service_s": st.floats(min_value=1e-5, max_value=5e-3),
        "num_chips": st.integers(min_value=1, max_value=5),
        "max_batch": st.integers(min_value=1, max_value=8),
        "max_wait_s": st.sampled_from([0.0, 1e-4, 2e-3]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def simulate(params):
    requests = PoissonArrivals(
        params["rate_rps"], seq_len=128, seed=params["seed"]
    ).generate(params["num_requests"])
    fleet = ChipFleet(
        FixedServiceModel(params["service_s"], request_energy_j=1e-6),
        num_chips=params["num_chips"],
    )
    batcher = DynamicBatcher(
        max_batch_size=params["max_batch"], max_wait_s=params["max_wait_s"]
    )
    return requests, ServingSimulator(fleet, batcher).run(requests)


class TestServingProperties:
    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_request_conservation(self, params):
        """Every request enters exactly once, completes exactly once."""
        requests, report = simulate(params)
        assert report.num_requests == len(requests)
        assert sorted(r.index for r in report.requests) == sorted(
            r.index for r in requests
        )
        assert sum(batch.size for batch in report.batches) == len(requests)

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_causality(self, params):
        """arrival <= dispatch <= completion, and waits respect the policy."""
        _, report = simulate(params)
        for record in report.requests:
            assert record.dispatch_s >= record.arrival_s - 1e-12
            assert record.completion_s >= record.dispatch_s

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_fifo_dispatch_and_batch_completion(self, params):
        """Dispatch follows arrival order; a batch completes its members
        together, in arrival order within the batch."""
        _, report = simulate(params)
        dispatch_order = [r.arrival_s for r in report.requests]
        assert dispatch_order == sorted(dispatch_order)
        by_batch: dict[int, list] = {}
        for record in report.requests:
            by_batch.setdefault(record.batch_index, []).append(record)
        for batch_index, members in by_batch.items():
            batch = report.batches[batch_index]
            assert len(members) == batch.size
            arrivals = [m.arrival_s for m in members]
            assert arrivals == sorted(arrivals)
            for member in members:
                assert member.completion_s == pytest.approx(batch.completion_s)
                assert member.chip == batch.chip

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_chip_exclusivity(self, params):
        """Batches on the same chip never overlap in time."""
        _, report = simulate(params)
        by_chip: dict[int, list] = {}
        for batch in report.batches:
            by_chip.setdefault(batch.chip, []).append(batch)
        for batches in by_chip.values():
            batches.sort(key=lambda b: b.dispatch_s)
            for earlier, later in zip(batches, batches[1:]):
                assert later.dispatch_s >= earlier.completion_s - 1e-12

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_batch_size_cap_and_queue_accounting(self, params):
        """No batch exceeds the cap; busy time matches the batch records."""
        _, report = simulate(params)
        assert all(b.size <= params["max_batch"] for b in report.batches)
        for chip in range(report.num_chips):
            from_batches = sum(
                b.service_s for b in report.batches if b.chip == chip
            )
            assert report.chip_busy_s[chip] == pytest.approx(from_batches)

    def test_littles_law_at_steady_state(self):
        """Time-averaged occupancy ~= arrival rate x mean latency (N = lambda T)."""
        service = 1e-3
        rate = 0.6 / service
        requests = PoissonArrivals(rate, seed=42).generate(20000)
        fleet = ChipFleet(FixedServiceModel(service), num_chips=1)
        report = ServingSimulator(fleet, NO_BATCHING).run(requests)
        # independent integration of N(t) over the run from the raw records
        events = []
        for r in report.requests:
            events.append((r.arrival_s, +1))
            events.append((r.completion_s, -1))
        events.sort()
        t0 = events[0][0]
        occupancy_integral, level, prev = 0.0, 0, t0
        for time, delta in events:
            occupancy_integral += level * (time - prev)
            level += delta
            prev = time
        window = prev - t0
        mean_in_system = occupancy_integral / window
        assert mean_in_system == pytest.approx(report.mean_in_system, rel=1e-9)
        # Little's law against the *offered* rate holds only statistically
        assert mean_in_system == pytest.approx(rate * report.mean_latency_s, rel=0.05)


class TestMD1CrossValidation:
    """The serving acceptance criterion: P-K mean wait within 5%."""

    @pytest.mark.parametrize("utilization", (0.3, 0.5, 0.7))
    def test_mean_wait_matches_pollaczek_khinchine(self, utilization):
        service = 1e-3
        rate = utilization / service
        requests = PoissonArrivals(rate, seed=7).generate(30000)
        fleet = ChipFleet(FixedServiceModel(service), num_chips=1)
        report = ServingSimulator(fleet, NO_BATCHING).run(requests)
        theory = MD1Queue(arrival_rate_rps=rate, service_s=service)
        assert report.mean_wait_s == pytest.approx(theory.mean_wait_s, rel=0.05)
        # and the server is exactly as busy as the offered load says
        assert report.mean_utilization == pytest.approx(utilization, rel=0.05)

    def test_deterministic_service_beats_mm1(self):
        """The simulated M/D/1 wait sits near half the M/M/1 wait."""
        service = 1e-3
        rate = 0.7 / service
        requests = PoissonArrivals(rate, seed=3).generate(30000)
        report = ServingSimulator(
            ChipFleet(FixedServiceModel(service), num_chips=1), NO_BATCHING
        ).run(requests)
        md1 = MD1Queue(rate, service)
        mm1 = MM1Queue(rate, service)
        assert mm1.mean_wait_s == pytest.approx(2 * md1.mean_wait_s, rel=1e-12)
        assert report.mean_wait_s < 0.75 * mm1.mean_wait_s

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValueError):
            MD1Queue(arrival_rate_rps=1001.0, service_s=1e-3)
        with pytest.raises(ValueError):
            MM1Queue(arrival_rate_rps=0.0, service_s=1e-3)

    def test_littles_law_identities(self):
        queue = MD1Queue(arrival_rate_rps=500.0, service_s=1e-3)
        assert queue.utilization == pytest.approx(0.5)
        assert queue.mean_queue_len == pytest.approx(
            queue.arrival_rate_rps * queue.mean_wait_s
        )
        assert queue.mean_in_system == pytest.approx(
            queue.arrival_rate_rps * queue.mean_latency_s
        )
        assert queue.mean_latency_s == pytest.approx(
            queue.mean_wait_s + queue.service_s
        )
