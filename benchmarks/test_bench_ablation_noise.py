"""E9 (ablation) — RRAM non-idealities vs softmax fidelity.

The paper's premise is that softmax is "insensitive to computing precision",
which is what makes an analog RRAM implementation viable.  This ablation
injects programming variation, read noise and stuck-at faults into the
engine's crossbars and measures the output distortion.
"""

from __future__ import annotations

from repro.analysis.ablation import AblationSuite
from repro.utils.fixed_point import CNEWS_FORMAT
from repro.workloads import CNEWS_PROFILE

from conftest import record


def test_bench_noise_tolerance(benchmark):
    """Softmax fidelity at ideal / typical / aggressive non-ideality levels."""
    suite = AblationSuite()

    rows = benchmark(
        suite.noise_ablation, CNEWS_PROFILE, CNEWS_FORMAT, None, 16, 64
    )

    record(
        benchmark,
        fidelity={
            row.label: {
                "read_noise_sigma": row.read_noise_sigma,
                "programming_sigma": row.programming_sigma,
                "stuck_fraction": row.stuck_fraction,
                "mean_kl": round(row.mean_kl, 5),
                "max_abs_error": round(row.max_abs_error, 5),
            }
            for row in rows
        },
    )
    by_label = {row.label: row for row in rows}
    # even the aggressive corner keeps the attention distribution close,
    # supporting the paper's precision-insensitivity argument
    assert by_label["aggressive"].max_abs_error < 0.2
    assert by_label["ideal"].max_abs_error <= by_label["aggressive"].max_abs_error


def test_bench_programming_overhead(benchmark):
    """One-time crossbar programming cost of the softmax engine's arrays."""
    from repro.rram.programming import WriteVerifyProgrammer

    programmer = WriteVerifyProgrammer()

    def program_all_engine_arrays():
        cam_sub = programmer.program_array(512, 18)
        cam = programmer.program_array(256, 18)
        lut = programmer.program_array(256, 18)
        vmm = programmer.program_array(256, 18)
        return cam_sub, cam, lut, vmm

    results = benchmark(program_all_engine_arrays)

    total_latency = sum(result.total_latency_s for result in results)
    total_energy = sum(result.total_energy_j for result in results)
    record(
        benchmark,
        total_programming_latency_us=round(total_latency * 1e6, 2),
        total_programming_energy_nj=round(total_energy * 1e9, 2),
        iterations_per_cell=results[0].iterations_per_cell,
    )
    # the one-time programming overhead is microseconds — negligible next to
    # the millisecond-scale inference it enables
    assert total_latency < 1e-3
