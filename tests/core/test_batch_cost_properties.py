"""Property suite for batch-aware GEMM pricing.

Randomised shapes, tile budgets and batch sizes — the pricing invariants
the serving stack leans on hold for every cost-model configuration:

* batch latency is monotone non-decreasing and sublinear in batch size;
* ``batch_size = 1`` is bit-identical to the pre-refactor seed formula
  (``ceil(tiles_for * m / parallel) * tile_vmm_latency``, no programming);
* energy never decreases when the batch grows;
* amortised programming energy is exactly one ``programming_energy_j``
  per operand, independent of the batch size.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_cost import BatchCostModel
from repro.core.config import MatMulEngineConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine

shapes = st.builds(
    GEMMShape,
    m=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=1, max_value=512),
)

engines = st.builds(
    lambda tiles, dup: MatMulEngine(
        MatMulEngineConfig(num_tiles=tiles, allow_duplication=dup)
    ),
    tiles=st.integers(min_value=1, max_value=96),
    dup=st.booleans(),
)

cost_models = st.builds(
    BatchCostModel,
    weight_policy=st.sampled_from(["resident", "streamed"]),
    double_buffering=st.booleans(),
    inter_request_parallelism=st.booleans(),
)

batches = st.integers(min_value=1, max_value=40)


@settings(max_examples=80, deadline=None)
@given(engine=engines, shape=shapes, model=cost_models, batch=batches)
def test_latency_monotone_non_decreasing_in_batch(engine, shape, model, batch):
    smaller = engine.gemm_latency_s(shape, batch_size=batch, cost_model=model)
    larger = engine.gemm_latency_s(shape, batch_size=batch + 1, cost_model=model)
    assert larger >= smaller


@settings(max_examples=80, deadline=None)
@given(engine=engines, shape=shapes, model=cost_models, batch=batches)
def test_latency_sublinear_in_batch(engine, shape, model, batch):
    single = engine.gemm_latency_s(shape, batch_size=1, cost_model=model)
    batched = engine.gemm_latency_s(shape, batch_size=batch, cost_model=model)
    assert batched <= batch * single * (1 + 1e-12)
    if batch > 1 and model.charges_programming:
        # the one-time programming charge amortises strictly
        assert batched < batch * single


@settings(max_examples=80, deadline=None)
@given(engine=engines, shape=shapes, model=cost_models)
def test_batch_one_is_bit_identical_to_seed_formula(engine, shape, model):
    """At batch 1 the streaming price IS the pre-refactor formula, bit for bit."""
    tiles = engine.config.num_tiles
    if engine.config.allow_duplication:
        parallel = tiles
    else:
        parallel = min(tiles, engine._tiles_for(shape))
    seed_value = (
        math.ceil(engine.gemm_tile_vmms(shape) / parallel) * engine.tile_vmm_latency_s()
    )
    assert engine.gemm_streaming_latency_s(shape, 1, model) == seed_value
    if not model.charges_programming:
        assert engine.gemm_latency_s(shape, batch_size=1, cost_model=model) == seed_value


@settings(max_examples=80, deadline=None)
@given(engine=engines, shape=shapes, model=cost_models, batch=batches)
def test_energy_never_decreases_with_batch(engine, shape, model, batch):
    smaller = engine.gemm_energy_j(shape, batch_size=batch, cost_model=model)
    larger = engine.gemm_energy_j(shape, batch_size=batch + 1, cost_model=model)
    assert larger > smaller  # streaming energy is strictly per-row


@settings(max_examples=80, deadline=None)
@given(engine=engines, shape=shapes, batch=batches)
def test_amortised_programming_energy_is_one_write_per_operand(engine, shape, batch):
    streamed = BatchCostModel.streamed()
    cost = engine.gemm_batch_cost(shape, batch, streamed)
    assert cost.programming_energy_j == engine.programming_energy_j(shape)
    # the charge is independent of the batch that amortises it
    single = engine.gemm_batch_cost(shape, 1, streamed)
    assert cost.programming_energy_j == single.programming_energy_j
    assert cost.energy_j == cost.programming_energy_j + cost.streaming_energy_j


@settings(max_examples=80, deadline=None)
@given(engine=engines, shape=shapes, batch=batches)
def test_double_buffering_only_ever_helps_latency(engine, shape, batch):
    buffered = engine.gemm_latency_s(
        shape, batch_size=batch, cost_model=BatchCostModel(double_buffering=True)
    )
    serialized = engine.gemm_latency_s(
        shape, batch_size=batch, cost_model=BatchCostModel(double_buffering=False)
    )
    assert buffered <= serialized
    # and never changes what a batch of one costs
    if batch == 1:
        assert buffered == serialized
