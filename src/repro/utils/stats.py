"""Small statistics helpers shared by the analysis and benchmark code."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RunningStats",
    "percentile",
    "summarize",
    "percentile_range",
    "geometric_mean",
    "relative_error",
    "kl_divergence",
]


def percentile(
    values: Iterable[float],
    q: float | Sequence[float],
    weights: Iterable[float] | None = None,
) -> float | np.ndarray:
    """Linearly interpolated percentile(s), optionally weighted.

    Without ``weights`` this matches ``np.percentile(values, q)`` (linear
    interpolation) exactly.  With ``weights`` each sorted value sits at the
    normalised position ``before / (before + after)``, where ``before`` and
    ``after`` are the total weight strictly below and above it — the
    weighted generalisation of the ``i / (n - 1)`` plotting positions,
    reducing to them for equal weights — and ``q`` is interpolated between
    those positions.  The serving report uses this for tail latencies over
    completed-request records (and for duration-weighted queue depths).

    A scalar ``q`` returns a float, a sequence returns an array.
    """
    # arrays pass straight through: list(values) on a million-sample
    # latency column would build a million boxed scalars first
    if isinstance(values, np.ndarray):
        arr = values.astype(np.float64, copy=False).ravel()
    else:
        arr = np.asarray(list(values), dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    q_arr = np.atleast_1d(np.asarray(q, dtype=np.float64))
    if np.any(q_arr < 0.0) or np.any(q_arr > 100.0):
        raise ValueError(f"percentiles must lie in [0, 100], got {q}")
    if weights is None:
        result = np.percentile(arr, q_arr)
    else:
        if isinstance(weights, np.ndarray):
            w = weights.astype(np.float64, copy=False).ravel()
        else:
            w = np.asarray(list(weights), dtype=np.float64).ravel()
        if w.shape != arr.shape:
            raise ValueError(f"got {w.size} weights for {arr.size} values")
        if np.any(w < 0.0) or w.sum() == 0.0:
            raise ValueError("weights must be non-negative and not all zero")
        order = np.argsort(arr, kind="stable")
        ordered, w = arr[order], w[order]
        # zero-weight values carry no mass and must not anchor the edges
        mass = w > 0.0
        ordered, w = ordered[mass], w[mass]
        cum = np.cumsum(w)
        before = cum - w
        after = cum[-1] - cum
        span = before + after  # total minus own weight
        if np.any(span == 0.0):
            # one value carries all the mass; every percentile is it
            result = np.full_like(q_arr, ordered[int(np.argmax(span == 0.0))])
        else:
            result = np.interp(q_arr / 100.0, before / span, ordered)
    if np.isscalar(q) or np.ndim(q) == 0:
        return float(result[0])
    return result


@dataclass
class RunningStats:
    """Streaming mean / variance / extrema (Welford's algorithm).

    Useful when analysing attention-score ranges over many batches without
    materialising every score, which is what the bit-width analysis of
    Section II does across whole datasets.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def update(self, values: np.ndarray | float) -> None:
        """Fold one value or an array of values into the running statistics."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        for value in arr:
            self.count += 1
            delta = value - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (value - self.mean)
            if value < self.minimum:
                self.minimum = float(value)
            if value > self.maximum:
                self.maximum = float(value)

    @property
    def variance(self) -> float:
        """Population variance of the values seen so far."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation of the values seen so far."""
        return float(np.sqrt(self.variance))

    @property
    def range(self) -> float:
        """``max - min`` of the values seen so far."""
        if self.count == 0:
            return float("nan")
        return self.maximum - self.minimum


def summarize(
    values: Iterable[float], weights: Iterable[float] | None = None
) -> dict[str, float]:
    """Return a dictionary of common summary statistics for ``values``.

    ``weights`` (optional) makes the mean and the p50/p95/p99 tail
    percentiles weighted — e.g. duration-weighted queue depths in the
    serving report.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sequence")
    w = None if weights is None else list(weights)
    p50, p95, p99 = percentile(arr, (50.0, 95.0, 99.0), weights=w)
    if w is None:
        mean = float(np.mean(arr))
        std = float(np.std(arr))
    else:
        mean = float(np.average(arr, weights=w))
        std = float(np.sqrt(np.average((arr - mean) ** 2, weights=w)))
    return {
        "count": float(arr.size),
        "mean": mean,
        "std": std,
        "min": float(np.min(arr)),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(np.max(arr)),
    }


def percentile_range(values: np.ndarray, coverage: float = 0.999) -> tuple[float, float]:
    """Symmetric percentile range covering ``coverage`` of the distribution.

    The bit-width analysis uses this to discard extreme outliers before
    sizing the integer part of the fixed-point format.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot compute percentile range of an empty array")
    tail = (1.0 - coverage) / 2.0 * 100.0
    low = float(np.percentile(arr, tail))
    high = float(np.percentile(arr, 100.0 - tail))
    return low, high


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; standard way to aggregate speedup ratios."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot compute geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` with a zero-reference guard."""
    if reference == 0:
        return float("inf") if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """KL divergence ``D(p || q)`` between two probability vectors.

    Used to quantify how far the fixed-point RRAM softmax output drifts from
    the exact floating-point softmax distribution.
    """
    p = np.asarray(p, dtype=np.float64).ravel()
    q = np.asarray(q, dtype=np.float64).ravel()
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    p = np.clip(p, epsilon, None)
    q = np.clip(q, epsilon, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))
