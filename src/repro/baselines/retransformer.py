"""ReTransformer: the state-of-the-art ReRAM attention accelerator baseline.

ReTransformer (Yang et al., ICCAD 2020) is the accelerator STAR's MatMul
engine is copied from and the closest prior work in Fig. 3.  Architecturally
it shares STAR's crossbar substrate, but:

* the softmax is computed by a digital CMOS unit next to the crossbars, not
  in RRAM — the unit itself is fast, but it forces a coarser pipeline: the
  softmax stage of a head can only start once the whole score sub-matrix is
  available (operand granularity);
* there is no vector-grained overlap between the score GEMM, the softmax and
  the context GEMM.

The model therefore reuses :class:`repro.core.matmul_engine.MatMulEngine`
and the shared :class:`repro.arch.system.SystemOverheadModel`, attaches the
Table I CMOS softmax unit, and schedules attention with the operand-grained
pipeline.  The result is an accelerator a little less efficient than STAR —
the paper reports STAR/ReTransformer = 1.31x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.report import CostReport
from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD, SystemOverheadModel
from repro.baselines.cmos_softmax import CMOSSoftmaxConfig, CMOSSoftmaxUnit
from repro.core.config import MatMulEngineConfig, PipelineConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine
from repro.core.pipeline import AttentionPipeline, StageTiming, attention_streams
from repro.nn.bert import BertWorkload
from repro.utils.validation import require_positive

__all__ = ["ReTransformerConfig", "ReTransformerModel"]


@dataclass(frozen=True)
class ReTransformerConfig:
    """Sizing of the ReTransformer baseline.

    Attributes
    ----------
    matmul:
        Crossbar engine configuration (identical to STAR's by default, per
        the paper's "the MatMul engine follows the design in ReTransformer").
    num_softmax_units:
        Number of parallel CMOS softmax units.
    softmax_data_bits:
        Datapath width of the CMOS softmax units.
    softmax_parallel_lanes:
        Lanes per CMOS softmax unit; ReTransformer provisions a modest unit
        because softmax was not the focus of its design.
    """

    matmul: MatMulEngineConfig = MatMulEngineConfig()
    num_softmax_units: int = 1
    softmax_data_bits: int = 16
    softmax_parallel_lanes: int = 64

    def __post_init__(self) -> None:
        require_positive(self.num_softmax_units, "num_softmax_units")


class ReTransformerModel:
    """Architectural cost model of the ReTransformer accelerator."""

    name = "ReTransformer"

    def __init__(
        self,
        config: ReTransformerConfig | None = None,
        system_overhead: SystemOverheadModel = DEFAULT_SYSTEM_OVERHEAD,
    ) -> None:
        self.config = config or ReTransformerConfig()
        self.matmul_engine = MatMulEngine(self.config.matmul)
        self.system_overhead = system_overhead
        self.pipeline = AttentionPipeline(PipelineConfig(granularity="operand"))
        self._softmax_units: dict[int, CMOSSoftmaxUnit] = {}

    def _softmax_unit(self, seq_len: int) -> CMOSSoftmaxUnit:
        if seq_len not in self._softmax_units:
            self._softmax_units[seq_len] = CMOSSoftmaxUnit(
                CMOSSoftmaxConfig(
                    vector_length=seq_len,
                    data_bits=self.config.softmax_data_bits,
                    parallel_lanes=min(seq_len, self.config.softmax_parallel_lanes),
                )
            )
        return self._softmax_units[seq_len]

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #
    def _projection_latency_s(self, workload: BertWorkload) -> float:
        cfg = workload.config
        tokens = workload.batch_size * workload.seq_len
        shape = GEMMShape(m=tokens, k=cfg.hidden, n=cfg.hidden)
        return 4 * self.matmul_engine.gemm_latency_s(shape)

    def _ffn_latency_s(self, workload: BertWorkload) -> float:
        cfg = workload.config
        tokens = workload.batch_size * workload.seq_len
        up = GEMMShape(m=tokens, k=cfg.hidden, n=cfg.intermediate)
        down = GEMMShape(m=tokens, k=cfg.intermediate, n=cfg.hidden)
        return self.matmul_engine.gemm_latency_s(up) + self.matmul_engine.gemm_latency_s(down)

    def attention_stage_timing(self, workload: BertWorkload) -> StageTiming:
        """Per-row stage timings of the (operand-grained) attention chain."""
        cfg = workload.config
        seq_len = workload.seq_len
        score_shape = GEMMShape(m=1, k=cfg.head_dim, n=seq_len)
        context_shape = GEMMShape(m=1, k=seq_len, n=cfg.head_dim)
        num_rows = workload.batch_size * cfg.num_heads * seq_len
        streams = attention_streams(
            cfg.num_heads, workload.batch_size, self.config.matmul.num_tiles
        )
        softmax_row = (
            self._softmax_unit(seq_len).row_latency_s() / self.config.num_softmax_units
        )
        return StageTiming(
            score_row_s=self.matmul_engine.row_latency_s(score_shape) / streams,
            softmax_row_s=softmax_row,
            context_row_s=self.matmul_engine.row_latency_s(context_shape) / streams,
            num_rows=num_rows,
        )

    def inference_latency_s(self, workload: BertWorkload) -> float:
        """End-to-end latency of one BERT inference."""
        timing = self.attention_stage_timing(workload)
        attention = self.pipeline.latency(timing).total_latency_s
        per_layer = (
            self._projection_latency_s(workload) + attention + self._ffn_latency_s(workload)
        )
        return workload.config.num_layers * per_layer

    # ------------------------------------------------------------------ #
    # power / area / report
    # ------------------------------------------------------------------ #
    def power_w(self, seq_len: int = 128) -> float:
        """Average chip power."""
        tiles = self.matmul_engine.peak_power_w()
        softmax = self.config.num_softmax_units * self._softmax_unit(seq_len).power_w
        overhead = self.system_overhead.total_power_w(self.config.matmul.num_tiles)
        return tiles + softmax + overhead

    def area_mm2(self, seq_len: int = 128) -> float:
        """Total chip area."""
        tiles = self.matmul_engine.area_mm2()
        softmax = self.config.num_softmax_units * self._softmax_unit(seq_len).area_mm2
        overhead = self.system_overhead.total_area_mm2(self.config.matmul.num_tiles)
        return tiles + softmax + overhead

    def cost_report(self, workload: BertWorkload) -> CostReport:
        """Fig. 3 computing-efficiency report."""
        return CostReport(
            name=self.name,
            area_mm2=self.area_mm2(workload.seq_len),
            power_w=self.power_w(workload.seq_len),
            latency_s=self.inference_latency_s(workload),
            operations=float(workload.total_ops()),
        )
