"""RRAM device, crossbar, CAM and LUT behavioural models (the PIM substrate)."""

from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.rram.converters import ADC, DAC, SampleAndHold, SenseAmplifier
from repro.rram.crossbar import AnalogCrossbar, CrossbarAccessStats, CrossbarConfig
from repro.rram.device import RRAMDevice, RRAMDeviceConfig
from repro.rram.lut import LUTConfig, LUTCrossbar, exponential_lut_entries
from repro.rram.noise import (
    IDEAL_NOISE,
    TYPICAL_NOISE,
    WORST_CASE_NOISE,
    NoiseConfig,
    NoiseModel,
)
from repro.rram.programming import (
    ProgrammingConfig,
    ProgrammingResult,
    WriteVerifyProgrammer,
)

__all__ = [
    "RRAMDevice",
    "RRAMDeviceConfig",
    "NoiseConfig",
    "NoiseModel",
    "IDEAL_NOISE",
    "TYPICAL_NOISE",
    "WORST_CASE_NOISE",
    "ADC",
    "DAC",
    "SenseAmplifier",
    "SampleAndHold",
    "AnalogCrossbar",
    "CrossbarConfig",
    "CrossbarAccessStats",
    "CAMCrossbar",
    "CAMConfig",
    "LUTCrossbar",
    "LUTConfig",
    "exponential_lut_entries",
    "WriteVerifyProgrammer",
    "ProgrammingConfig",
    "ProgrammingResult",
]
