"""STAR's core contribution: the RRAM softmax engine, MatMul engine and pipeline."""

from repro.core.accelerator import (
    ChipResources,
    LayerLatencyBreakdown,
    ModelSchedule,
    RequestTiming,
    STARAccelerator,
)
from repro.core.access_stats import AccessStats
from repro.core.batch_cost import (
    BatchCostModel,
    BatchGEMMCost,
    BatchGEMMExecutor,
    DEFAULT_BATCH_COST,
    ExecutedGEMMSchedule,
)
from repro.core.cam_sub import CamSubBatchResult, CamSubCrossbar, CamSubResult
from repro.core.config import (
    MatMulEngineConfig,
    PipelineConfig,
    SoftmaxEngineConfig,
    STARConfig,
)
from repro.core.counter import CounterBank
from repro.core.divider import DividerUnit
from repro.core.events import EventLoop, ServerPool
from repro.core.exponent import ExponentBatchResult, ExponentialUnit, ExponentResult
from repro.core.matmul_engine import GEMMShape, MatMulEngine, ProgrammedOperand
from repro.core.pipeline import AttentionPipeline, PipelineSchedule, StageTiming
from repro.core.scheduler import (
    AttentionExecution,
    AttentionExecutor,
    ExecutedSchedule,
    PipelineExecutor,
    RowRecord,
    StageJitter,
)
from repro.core.softmax_engine import RRAMSoftmaxEngine, SoftmaxRowTrace

__all__ = [
    "STARConfig",
    "SoftmaxEngineConfig",
    "MatMulEngineConfig",
    "PipelineConfig",
    "AccessStats",
    "CamSubCrossbar",
    "CamSubResult",
    "CamSubBatchResult",
    "ExponentialUnit",
    "ExponentResult",
    "ExponentBatchResult",
    "CounterBank",
    "DividerUnit",
    "RRAMSoftmaxEngine",
    "SoftmaxRowTrace",
    "MatMulEngine",
    "GEMMShape",
    "ProgrammedOperand",
    "BatchCostModel",
    "BatchGEMMCost",
    "BatchGEMMExecutor",
    "DEFAULT_BATCH_COST",
    "ExecutedGEMMSchedule",
    "AttentionPipeline",
    "StageTiming",
    "PipelineSchedule",
    "EventLoop",
    "ServerPool",
    "PipelineExecutor",
    "ExecutedSchedule",
    "RowRecord",
    "StageJitter",
    "AttentionExecutor",
    "AttentionExecution",
    "STARAccelerator",
    "ChipResources",
    "ModelSchedule",
    "RequestTiming",
    "LayerLatencyBreakdown",
]
