"""NumPy layer implementations used to assemble the BERT-base encoder.

The layers are deliberately minimal — forward-only, float64, deterministic
initialisation from a seeded generator — because the reproduction never
trains a network: latency/energy experiments only need correct shapes and
operation counts, and accuracy experiments use the synthetic classification
task from :mod:`repro.workloads.classification` whose weights are also
generated, not learned.

Every GEMM runs on a pluggable :class:`~repro.nn.backend.ComputeBackend`:
the default :class:`~repro.nn.backend.IdealBackend` is exact NumPy, while
:class:`~repro.nn.backend.AnalogBackend` executes the same multiplications
on simulated RRAM crossbar tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.backend import IDEAL_BACKEND, ComputeBackend
from repro.nn.functional import gelu, layer_norm

__all__ = ["Linear", "LayerNorm", "FeedForward", "Embedding"]


class Linear:
    """Affine layer ``y = x @ W + b`` with deterministic random initialisation.

    The matrix product runs on ``backend`` (exact NumPy by default); an
    :class:`~repro.nn.backend.AnalogBackend` programs ``W`` into a
    persistent crossbar tile bank on first use and streams every forward
    pass through it.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
        backend: ComputeBackend | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"feature sizes must be positive, got {in_features} -> {out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.backend: ComputeBackend = backend if backend is not None else IDEAL_BACKEND
        generator = rng if rng is not None else np.random.default_rng(0)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = generator.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features) if bias else None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; input shape ``(..., in_features)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"input feature size {x.shape[-1]} does not match layer "
                f"in_features {self.in_features}"
            )
        out = self.backend.linear(x, self.weight)
        if self.bias is not None:
            out = out + self.bias
        return out

    def flops(self, batch_tokens: int) -> int:
        """Multiply-accumulate FLOPs (2 per MAC) for ``batch_tokens`` tokens."""
        if batch_tokens < 0:
            raise ValueError(f"batch_tokens must be >= 0, got {batch_tokens}")
        return 2 * batch_tokens * self.in_features * self.out_features


class LayerNorm:
    """Layer normalisation with learnable scale/shift (initialised to identity)."""

    def __init__(self, hidden: int, epsilon: float = 1e-12) -> None:
        if hidden < 1:
            raise ValueError(f"hidden size must be positive, got {hidden}")
        self.hidden = hidden
        self.epsilon = epsilon
        self.gamma = np.ones(hidden)
        self.beta = np.zeros(hidden)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; normalises the last dimension."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.hidden:
            raise ValueError(
                f"input hidden size {x.shape[-1]} does not match LayerNorm "
                f"hidden {self.hidden}"
            )
        return layer_norm(x, self.gamma, self.beta, self.epsilon)


class FeedForward:
    """BERT position-wise feed-forward block: Linear -> GELU -> Linear.

    Both projections execute on ``backend`` (exact NumPy by default, analog
    crossbar GEMMs with :class:`~repro.nn.backend.AnalogBackend`).
    """

    def __init__(
        self,
        hidden: int,
        intermediate: int,
        rng: np.random.Generator | None = None,
        backend: ComputeBackend | None = None,
    ) -> None:
        generator = rng if rng is not None else np.random.default_rng(0)
        self.up = Linear(hidden, intermediate, rng=generator, backend=backend)
        self.down = Linear(intermediate, hidden, rng=generator, backend=backend)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Forward pass."""
        return self.down(gelu(self.up(x)))

    def flops(self, batch_tokens: int) -> int:
        """Total FLOPs of both projections for ``batch_tokens`` tokens."""
        return self.up.flops(batch_tokens) + self.down.flops(batch_tokens)


class Embedding:
    """Token + position embedding table with deterministic initialisation."""

    def __init__(
        self,
        vocab_size: int,
        max_positions: int,
        hidden: int,
        rng: np.random.Generator | None = None,
    ) -> None:
        if vocab_size < 1 or max_positions < 1 or hidden < 1:
            raise ValueError("embedding dimensions must be positive")
        generator = rng if rng is not None else np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.max_positions = max_positions
        self.hidden = hidden
        self.token_table = generator.normal(0.0, 0.02, size=(vocab_size, hidden))
        self.position_table = generator.normal(0.0, 0.02, size=(max_positions, hidden))

    def __call__(self, token_ids: np.ndarray) -> np.ndarray:
        """Embed a ``(batch, seq_len)`` array of token ids."""
        ids = np.asarray(token_ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError(f"token_ids must be (batch, seq_len), got shape {ids.shape}")
        if np.any(ids < 0) or np.any(ids >= self.vocab_size):
            raise ValueError(f"token ids must lie in [0, {self.vocab_size - 1}]")
        seq_len = ids.shape[1]
        if seq_len > self.max_positions:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_positions {self.max_positions}"
            )
        positions = np.arange(seq_len)
        return self.token_table[ids] + self.position_table[positions][None, :, :]
