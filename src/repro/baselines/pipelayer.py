"""PipeLayer: a generic ReRAM DNN accelerator executing the attention model.

PipeLayer (Song et al., HPCA 2017) pioneered intra-layer pipelining for
ReRAM CNN/MLP accelerators, but it was designed for *static* weights.
Executing attention on it is inefficient for two architectural reasons the
STAR paper leans on:

* the score product ``Q K^T`` and the context product ``A V`` multiply two
  *dynamic* matrices, so PipeLayer must program ``K^T`` and ``V`` into
  crossbars before every use — paying RRAM write latency and energy on the
  critical path (ReTransformer's matrix-decomposition trick and STAR both
  avoid this);
* softmax runs in a simple digital unit at operand granularity, with no
  overlap with the crossbar computation.

With the shared crossbar substrate and system overheads, these two effects
put PipeLayer's computing efficiency several times below ReTransformer and
STAR, matching the ~4.3x gap of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.report import CostReport
from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD, SystemOverheadModel
from repro.baselines.cmos_softmax import CMOSSoftmaxConfig, CMOSSoftmaxUnit
from repro.core.config import MatMulEngineConfig, PipelineConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine
from repro.core.pipeline import AttentionPipeline, StageTiming, attention_streams
from repro.nn.bert import BertWorkload
from repro.utils.validation import require_positive

__all__ = ["PipeLayerConfig", "PipeLayerModel"]


@dataclass(frozen=True)
class PipeLayerConfig:
    """Sizing of the PipeLayer baseline.

    Attributes
    ----------
    matmul:
        Crossbar engine configuration (same substrate as the other designs).
    num_softmax_units:
        Parallel digital softmax units.
    softmax_data_bits:
        Width of the digital softmax datapath.
    softmax_parallel_lanes:
        Lanes per digital softmax unit.
    write_verify_pulses:
        Program/verify pulses needed per cell when writing the dynamic
        ``K^T`` / ``V`` operands before each attention computation
        (multi-level cells need several verify iterations).
    """

    matmul: MatMulEngineConfig = MatMulEngineConfig()
    num_softmax_units: int = 1
    softmax_data_bits: int = 16
    softmax_parallel_lanes: int = 64
    write_verify_pulses: int = 8

    def __post_init__(self) -> None:
        require_positive(self.num_softmax_units, "num_softmax_units")
        require_positive(self.write_verify_pulses, "write_verify_pulses")


class PipeLayerModel:
    """Architectural cost model of PipeLayer running BERT attention."""

    name = "PipeLayer"

    def __init__(
        self,
        config: PipeLayerConfig | None = None,
        system_overhead: SystemOverheadModel = DEFAULT_SYSTEM_OVERHEAD,
    ) -> None:
        self.config = config or PipeLayerConfig()
        self.matmul_engine = MatMulEngine(self.config.matmul)
        self.system_overhead = system_overhead
        self.pipeline = AttentionPipeline(PipelineConfig(granularity="operand"))
        self._softmax_units: dict[int, CMOSSoftmaxUnit] = {}

    def _softmax_unit(self, seq_len: int) -> CMOSSoftmaxUnit:
        if seq_len not in self._softmax_units:
            self._softmax_units[seq_len] = CMOSSoftmaxUnit(
                CMOSSoftmaxConfig(
                    vector_length=seq_len,
                    data_bits=self.config.softmax_data_bits,
                    parallel_lanes=min(seq_len, self.config.softmax_parallel_lanes),
                )
            )
        return self._softmax_units[seq_len]

    # ------------------------------------------------------------------ #
    # operand-rewrite penalty
    # ------------------------------------------------------------------ #
    def operand_write_latency_s(self, workload: BertWorkload) -> float:
        """Latency of programming ``K^T`` and ``V`` for every head of one layer.

        Writes are row-parallel; heads are written one after another because
        the write drivers are shared, which is what puts the rewrite on the
        critical path.
        """
        cfg = workload.config
        device = self.matmul_engine._reference_tile.device.config
        pulses = self.config.write_verify_pulses
        # K^T is head_dim x seq_len (head_dim rows), V is seq_len x head_dim
        rows_per_head = cfg.head_dim + workload.seq_len
        total_rows = workload.batch_size * cfg.num_heads * rows_per_head
        return total_rows * pulses * device.write_pulse_s

    def operand_write_energy_j(self, workload: BertWorkload) -> float:
        """Energy of programming the dynamic operands for one layer."""
        cfg = workload.config
        device = self.matmul_engine._reference_tile.device.config
        pulses = self.config.write_verify_pulses
        cells_per_head = 2 * (cfg.head_dim * workload.seq_len) * 2  # K^T and V, differential
        total_cells = workload.batch_size * cfg.num_heads * cells_per_head
        return total_cells * pulses * device.write_energy_j

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #
    def _projection_latency_s(self, workload: BertWorkload) -> float:
        cfg = workload.config
        tokens = workload.batch_size * workload.seq_len
        shape = GEMMShape(m=tokens, k=cfg.hidden, n=cfg.hidden)
        return 4 * self.matmul_engine.gemm_latency_s(shape)

    def _ffn_latency_s(self, workload: BertWorkload) -> float:
        cfg = workload.config
        tokens = workload.batch_size * workload.seq_len
        up = GEMMShape(m=tokens, k=cfg.hidden, n=cfg.intermediate)
        down = GEMMShape(m=tokens, k=cfg.intermediate, n=cfg.hidden)
        return self.matmul_engine.gemm_latency_s(up) + self.matmul_engine.gemm_latency_s(down)

    def attention_stage_timing(self, workload: BertWorkload) -> StageTiming:
        """Per-row timings of the operand-grained attention chain."""
        cfg = workload.config
        seq_len = workload.seq_len
        score_shape = GEMMShape(m=1, k=cfg.head_dim, n=seq_len)
        context_shape = GEMMShape(m=1, k=seq_len, n=cfg.head_dim)
        num_rows = workload.batch_size * cfg.num_heads * seq_len
        streams = attention_streams(
            cfg.num_heads, workload.batch_size, self.config.matmul.num_tiles
        )
        softmax_row = (
            self._softmax_unit(seq_len).row_latency_s() / self.config.num_softmax_units
        )
        return StageTiming(
            score_row_s=self.matmul_engine.row_latency_s(score_shape) / streams,
            softmax_row_s=softmax_row,
            context_row_s=self.matmul_engine.row_latency_s(context_shape) / streams,
            num_rows=num_rows,
        )

    def inference_latency_s(self, workload: BertWorkload) -> float:
        """End-to-end latency of one BERT inference, including operand rewrites."""
        timing = self.attention_stage_timing(workload)
        attention = self.pipeline.latency(timing).total_latency_s
        per_layer = (
            self._projection_latency_s(workload)
            + self.operand_write_latency_s(workload)
            + attention
            + self._ffn_latency_s(workload)
        )
        return workload.config.num_layers * per_layer

    # ------------------------------------------------------------------ #
    # power / area / report
    # ------------------------------------------------------------------ #
    def power_w(self, seq_len: int = 128) -> float:
        """Average chip power."""
        tiles = self.matmul_engine.peak_power_w()
        softmax = self.config.num_softmax_units * self._softmax_unit(seq_len).power_w
        overhead = self.system_overhead.total_power_w(self.config.matmul.num_tiles)
        return tiles + softmax + overhead

    def area_mm2(self, seq_len: int = 128) -> float:
        """Total chip area."""
        tiles = self.matmul_engine.area_mm2()
        softmax = self.config.num_softmax_units * self._softmax_unit(seq_len).area_mm2
        overhead = self.system_overhead.total_area_mm2(self.config.matmul.num_tiles)
        return tiles + softmax + overhead

    def cost_report(self, workload: BertWorkload) -> CostReport:
        """Fig. 3 computing-efficiency report."""
        return CostReport(
            name=self.name,
            area_mm2=self.area_mm2(workload.seq_len),
            power_w=self.power_w(workload.seq_len),
            latency_s=self.inference_latency_s(workload),
            operations=float(workload.total_ops()),
        )
