"""Cost reports and cross-design comparison tables.

A :class:`CostReport` is the common currency every engine and baseline model
produces: area, power, latency, energy and the operation count of the
workload it executed.  From it the computing efficiency in GOPs/s/W — the
metric of the paper's Fig. 3 — falls out directly, and
:class:`ComparisonTable` renders the side-by-side ratios that Table I and
Fig. 3 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.utils.units import GIGA, format_si
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["CostReport", "ComparisonTable"]


@dataclass(frozen=True)
class CostReport:
    """Area / power / timing summary of one design executing one workload.

    Attributes
    ----------
    name:
        Design label ("STAR", "ReTransformer", "GPU", ...).
    area_mm2:
        Silicon area of the computing unit.
    power_w:
        Average power while executing the workload.
    latency_s:
        End-to-end execution latency of the workload.
    operations:
        Number of primitive operations (MAC counted as 2 ops, following the
        GOPs convention of the paper) in the workload.
    energy_j:
        Total energy; defaults to ``power_w * latency_s`` when omitted.
    """

    name: str
    area_mm2: float
    power_w: float
    latency_s: float
    operations: float
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.area_mm2, "area_mm2")
        require_positive(self.power_w, "power_w")
        require_positive(self.latency_s, "latency_s")
        require_positive(self.operations, "operations")
        require_non_negative(self.energy_j, "energy_j")
        if self.energy_j == 0.0:
            object.__setattr__(self, "energy_j", self.power_w * self.latency_s)

    @property
    def throughput_ops(self) -> float:
        """Operations per second."""
        return self.operations / self.latency_s

    @property
    def throughput_gops(self) -> float:
        """Throughput in GOPs/s."""
        return self.throughput_ops / GIGA

    @property
    def computing_efficiency_gops_per_watt(self) -> float:
        """GOPs/s/W — the metric of the paper's Fig. 3."""
        return self.throughput_gops / self.power_w

    @property
    def energy_per_op_j(self) -> float:
        """Energy per primitive operation."""
        return self.energy_j / self.operations

    @property
    def area_efficiency_gops_per_mm2(self) -> float:
        """GOPs/s per mm^2 of silicon."""
        return self.throughput_gops / self.area_mm2

    def summary(self) -> dict[str, float]:
        """Dictionary form used by the benchmark harness."""
        return {
            "area_mm2": self.area_mm2,
            "power_w": self.power_w,
            "latency_s": self.latency_s,
            "energy_j": self.energy_j,
            "operations": self.operations,
            "throughput_gops": self.throughput_gops,
            "efficiency_gops_per_watt": self.computing_efficiency_gops_per_watt,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: area={self.area_mm2:.4f} mm^2, power={format_si(self.power_w, 'W')}, "
            f"latency={format_si(self.latency_s, 's')}, "
            f"efficiency={self.computing_efficiency_gops_per_watt:.2f} GOPs/s/W"
        )


class ComparisonTable:
    """Ratio table between one reference design and several alternatives."""

    def __init__(self, reports: Iterable[CostReport]) -> None:
        self._reports = list(reports)
        if not self._reports:
            raise ValueError("a comparison needs at least one report")
        names = [report.name for report in self._reports]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate design names in comparison: {names}")

    @property
    def reports(self) -> list[CostReport]:
        """All reports in insertion order."""
        return list(self._reports)

    def get(self, name: str) -> CostReport:
        """Report for the design called ``name``."""
        for report in self._reports:
            if report.name == name:
                return report
        raise KeyError(f"no design named {name!r}; have {[r.name for r in self._reports]}")

    def ratio(self, metric: str, design: str, reference: str) -> float:
        """``metric(design) / metric(reference)`` for any CostReport attribute."""
        design_value = getattr(self.get(design), metric)
        reference_value = getattr(self.get(reference), metric)
        if reference_value == 0:
            raise ZeroDivisionError(f"reference metric {metric} is zero for {reference}")
        return design_value / reference_value

    def area_ratio(self, design: str, reference: str) -> float:
        """Area of ``design`` relative to ``reference`` (Table I convention)."""
        return self.ratio("area_mm2", design, reference)

    def power_ratio(self, design: str, reference: str) -> float:
        """Power of ``design`` relative to ``reference`` (Table I convention)."""
        return self.ratio("power_w", design, reference)

    def efficiency_gain(self, design: str, reference: str) -> float:
        """Computing-efficiency improvement of ``design`` over ``reference`` (Fig. 3)."""
        return self.ratio("computing_efficiency_gops_per_watt", design, reference)

    def format_table(self, reference: str | None = None) -> str:
        """Printable table; ratios are relative to ``reference`` when given."""
        header = (
            f"{'design':<18} {'area (mm^2)':>12} {'power (W)':>12} "
            f"{'latency (s)':>12} {'GOPs/s/W':>12}"
        )
        lines = [header]
        for report in self._reports:
            lines.append(
                f"{report.name:<18} {report.area_mm2:>12.4f} {report.power_w:>12.4f} "
                f"{report.latency_s:>12.3e} "
                f"{report.computing_efficiency_gops_per_watt:>12.2f}"
            )
        if reference is not None:
            lines.append("")
            lines.append(f"ratios vs {reference}:")
            for report in self._reports:
                if report.name == reference:
                    continue
                lines.append(
                    f"  {report.name:<16} area x{self.area_ratio(report.name, reference):.3f}  "
                    f"power x{self.power_ratio(report.name, reference):.3f}  "
                    f"efficiency x{self.efficiency_gain(report.name, reference):.2f}"
                )
        return "\n".join(lines)
