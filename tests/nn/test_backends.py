"""Tests for the pluggable compute backends (repro.nn.backend).

Covers the IdealBackend's exactness against the seed model's plain-NumPy
path, the AnalogBackend's weight-stationary caching, and the acceptance
scenario of the backend refactor: a BERT encoder running end-to-end with
*every* GEMM on simulated RRAM crossbar tiles and softmax on the RRAM
softmax engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MatMulEngineConfig, SoftmaxEngineConfig
from repro.core.matmul_engine import MatMulEngine
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.attention import MultiHeadAttention
from repro.nn.backend import AnalogBackend, ComputeBackend, IdealBackend
from repro.nn.bert import BertConfig, BertEncoderModel
from repro.nn.layers import FeedForward, Linear
from repro.utils.fixed_point import CNEWS_FORMAT


def analog_backend(tile=16):
    """An AnalogBackend sized for functional fidelity on small models.

    (`num_tiles` is left at its default: it parameterizes the analytical
    cost path only — the functional tile bank allocates what the operand
    needs.)
    """
    return AnalogBackend(
        MatMulEngine(
            MatMulEngineConfig(
                crossbar_rows=tile,
                crossbar_cols=tile,
                adc_bits=10,
                bits_per_cell=5,
            )
        )
    )


class TestIdealBackend:
    def test_linear_matches_plain_numpy_exactly(self, rng):
        x = rng.normal(size=(3, 5, 8))
        w = rng.normal(size=(8, 4))
        np.testing.assert_array_equal(IdealBackend().linear(x, w), x @ w)

    def test_matmul_matches_plain_numpy_exactly(self, rng):
        a = rng.normal(size=(2, 3, 4, 8))
        b = rng.normal(size=(2, 3, 8, 4))
        np.testing.assert_array_equal(IdealBackend().matmul(a, b), a @ b)

    def test_default_linear_layer_unchanged_by_refactor(self, rng):
        layer = Linear(8, 4, rng=np.random.default_rng(0))
        x = rng.normal(size=(2, 8))
        np.testing.assert_array_equal(layer(x), x @ layer.weight + layer.bias)

    def test_satisfies_protocol(self):
        assert isinstance(IdealBackend(), ComputeBackend)
        assert isinstance(AnalogBackend(MatMulEngine()), ComputeBackend)


class TestAnalogBackend:
    def test_linear_tracks_exact(self, rng):
        backend = analog_backend()
        layer = Linear(16, 16, rng=np.random.default_rng(0), backend=backend)
        x = rng.normal(size=(1, 6, 16))
        out = layer(x)
        exact = x @ layer.weight + layer.bias
        assert out.shape == exact.shape
        correlation = np.corrcoef(out.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.95

    def test_weight_stationary_caching(self, rng):
        backend = analog_backend()
        layer = Linear(16, 16, rng=np.random.default_rng(0), backend=backend)
        x = rng.normal(size=(4, 16))
        layer(x)
        pulses = backend.access_stats.programming_pulses
        assert pulses == 2 * 16 * 16  # one differential tile, programmed once
        layer(x)
        layer(rng.normal(size=(4, 16)))
        assert backend.access_stats.programming_pulses == pulses

    def test_in_place_weight_update_reprograms_bank(self, rng):
        backend = analog_backend()
        layer = Linear(16, 16, rng=np.random.default_rng(0), backend=backend)
        x = rng.normal(size=(4, 16))
        layer(x)
        pulses = backend.access_stats.programming_pulses
        layer.weight[:] = rng.normal(size=(16, 16))  # load new weights in place
        out = layer(x)
        assert backend.access_stats.programming_pulses == 2 * pulses
        exact = x @ layer.weight + layer.bias
        correlation = np.corrcoef(out.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.95  # computed with the new weights, not stale ones

    def test_cache_evicts_collected_weights(self, rng):
        import gc

        backend = analog_backend()
        for _ in range(3):
            layer = Linear(16, 16, rng=np.random.default_rng(0), backend=backend)
            layer(rng.normal(size=(2, 16)))
            del layer
            gc.collect()
        assert len(backend._operands) == 0  # dead weights do not pin tile banks

    def test_distinct_weights_get_distinct_banks(self, rng):
        backend = analog_backend()
        first = Linear(16, 16, rng=np.random.default_rng(0), backend=backend)
        second = Linear(16, 16, rng=np.random.default_rng(1), backend=backend)
        x = rng.normal(size=(2, 16))
        first(x)
        second(x)
        assert backend.access_stats.programming_pulses == 2 * 2 * 16 * 16

    def test_dynamic_matmul_reprograms_each_call(self, rng):
        backend = analog_backend()
        a = rng.normal(size=(4, 16))
        b = rng.normal(size=(16, 16))
        backend.matmul(a, b)
        backend.matmul(a, b)
        assert backend.access_stats.programming_pulses == 2 * 2 * 16 * 16

    def test_stacked_matmul(self, rng):
        backend = analog_backend()
        a = rng.normal(size=(2, 3, 8, 16))
        b = rng.normal(size=(2, 3, 16, 8))
        out = backend.matmul(a, b)
        exact = a @ b
        assert out.shape == exact.shape
        correlation = np.corrcoef(out.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.9

    def test_stacked_matmul_rejects_mismatched_leading_dims(self, rng):
        backend = analog_backend()
        with pytest.raises(ValueError):
            backend.matmul(rng.normal(size=(2, 4, 16)), rng.normal(size=(3, 16, 4)))

    def test_feed_forward_on_analog_backend(self, rng):
        backend = analog_backend()
        ffn = FeedForward(16, 32, rng=np.random.default_rng(0), backend=backend)
        x = rng.normal(size=(1, 4, 16)) * 0.5
        out = ffn(x)
        assert out.shape == (1, 4, 16)
        assert np.all(np.isfinite(out))


class TestAnalogAttentionAndBert:
    def test_attention_all_gemms_analog(self, rng):
        backend = analog_backend()
        exact_attention = MultiHeadAttention(16, 4, rng=np.random.default_rng(0))
        analog_attention = MultiHeadAttention(
            16, 4, rng=np.random.default_rng(0), backend=backend
        )
        x = rng.normal(size=(1, 6, 16))
        out_exact = exact_attention(x)
        out_analog = analog_attention(x)
        correlation = np.corrcoef(out_exact.ravel(), out_analog.ravel())[0, 1]
        assert correlation > 0.9
        # 4 stationary projections + dynamic score/context operands per head
        assert backend.access_stats.programming_pulses > 4 * 2 * 16 * 16

    def test_full_analog_bert_encoder(self, rng):
        """Acceptance: BERT forward with AnalogBackend GEMMs + RRAM softmax."""
        config = BertConfig(
            num_layers=2,
            hidden=32,
            num_heads=4,
            intermediate=64,
            vocab_size=64,
            max_positions=32,
        )
        backend = analog_backend(tile=32)
        softmax_engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        reference = BertEncoderModel(config, seed=1)
        analog = BertEncoderModel(
            config, seed=1, softmax_fn=softmax_engine, backend=backend
        )
        ids = rng.integers(0, 64, size=(1, 32))
        out_ref = reference(ids)
        out_analog = analog(ids)
        assert out_analog.shape == out_ref.shape
        assert np.all(np.isfinite(out_analog))
        correlation = np.corrcoef(out_ref.ravel(), out_analog.ravel())[0, 1]
        assert correlation > 0.9
        # both engines saw real work
        assert softmax_engine.access_stats.rows > 0
        assert backend.access_stats.vmm_ops > 0
        assert backend.access_stats.programming_pulses > 0

    def test_backend_swap_is_one_constructor_argument(self, rng):
        config = BertConfig(
            num_layers=1,
            hidden=16,
            num_heads=2,
            intermediate=32,
            vocab_size=32,
            max_positions=8,
        )
        ids = rng.integers(0, 32, size=(1, 8))
        ideal_out = BertEncoderModel(config, seed=0, backend=IdealBackend())(ids)
        default_out = BertEncoderModel(config, seed=0)(ids)
        np.testing.assert_array_equal(ideal_out, default_out)


class TestExecutorThreading:
    """The executor hook: executed attention schedules inside the NN stack."""

    def executor(self, num_engines=2):
        from repro.core.scheduler import AttentionExecutor

        return AttentionExecutor(
            MatMulEngine(
                MatMulEngineConfig(
                    crossbar_rows=16,
                    crossbar_cols=16,
                    adc_bits=10,
                    bits_per_cell=5,
                    num_tiles=8,
                )
            ),
            softmax_engines=[
                RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
                for _ in range(num_engines)
            ],
        )

    def test_attention_with_executor_matches_reference_closely(self, rng):
        reference = MultiHeadAttention(32, 4, rng=np.random.default_rng(3))
        executed = MultiHeadAttention(
            32, 4, rng=np.random.default_rng(3), executor=self.executor()
        )
        x = rng.normal(size=(1, 8, 32))
        out_ref = reference(x)
        out_exec = executed(x)
        assert out_exec.shape == out_ref.shape
        correlation = np.corrcoef(out_ref.ravel(), out_exec.ravel())[0, 1]
        assert correlation > 0.95
        schedule = executed.last_schedule
        assert schedule is not None
        assert schedule.num_rows == 4 * 8
        assert schedule.total_latency_s > 0
        assert reference.last_schedule is None

    def test_attention_executor_respects_mask(self, rng):
        attention = MultiHeadAttention(
            32, 4, rng=np.random.default_rng(3), executor=self.executor()
        )
        x = rng.normal(size=(1, 6, 32))
        mask = np.zeros((1, 1, 6, 6))
        mask[..., 4:] = -1e9
        attention(x, mask=mask)
        assert np.all(attention.last_weights[..., 4:] < 1e-6)

    def test_bert_reports_per_layer_executed_schedules(self, rng):
        config = BertConfig(
            num_layers=2,
            hidden=32,
            num_heads=4,
            intermediate=64,
            vocab_size=64,
            max_positions=8,
        )
        model = BertEncoderModel(config, seed=1, executor=self.executor())
        ids = rng.integers(0, 64, size=(1, 8))
        out = model(ids)
        assert np.all(np.isfinite(out))
        schedules = model.attention_schedules()
        assert len(schedules) == 2
        for schedule in schedules:
            assert schedule.num_rows == 4 * 8
            assert schedule.granularity == "vector"
        # a model without an executor reports none
        assert BertEncoderModel(config, seed=1).attention_schedules() == []
