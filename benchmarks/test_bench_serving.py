"""Serving-simulator throughput benchmark and load-sweep smoke gates.

The request-level simulator must stay cheap enough to sweep offered loads
inside experiments: tens of thousands of requests have to simulate in well
under a second, and the single-chip no-batching limit has to keep landing
on the M/D/1 Pollaczek–Khinchine line.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    MD1Queue,
    NO_BATCHING,
    PoissonArrivals,
    ServingSimulator,
)

from conftest import record


@pytest.mark.smoke
def test_bench_serving_simulator_throughput(benchmark):
    """30k requests through a single-chip M/D/1 stay sub-second and on theory."""
    service = 1e-3
    rate = 0.7 / service
    requests = PoissonArrivals(rate, seq_len=128, seed=7).generate(30000)
    fleet = ChipFleet(FixedServiceModel(service), num_chips=1)
    simulator = ServingSimulator(fleet, NO_BATCHING)

    report = benchmark(simulator.run, requests)

    theory = MD1Queue(arrival_rate_rps=rate, service_s=service)
    deviation = abs(report.mean_wait_s - theory.mean_wait_s) / theory.mean_wait_s
    record(
        benchmark,
        requests_per_wall_second=round(len(requests) / benchmark.stats["mean"]),
        simulated_throughput_rps=round(report.throughput_rps, 1),
        md1_wait_deviation_pct=round(deviation * 100, 2),
    )
    assert report.num_requests == len(requests)
    assert deviation < 0.05
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.smoke
def test_bench_serving_fleet_scenarios(benchmark):
    """Batching and multi-chip scenarios the closed forms cannot express."""
    service = 1e-3
    requests = PoissonArrivals(2400.0, seq_len=128, seed=3).generate(6000)

    def scenarios():
        batched = ServingSimulator(
            ChipFleet(FixedServiceModel(service), num_chips=4),
            DynamicBatcher(max_batch_size=8, max_wait_s=2e-3),
        ).run(requests)
        hetero = ServingSimulator(
            ChipFleet(FixedServiceModel(service), num_chips=4, speedups=(1.0, 1.0, 0.5, 2.0)),
            NO_BATCHING,
        ).run(requests)
        return batched, hetero

    batched, hetero = benchmark(scenarios)

    record(
        benchmark,
        batched_mean_batch=round(batched.mean_batch_size, 2),
        batched_p99_ms=round(batched.p99_latency_s * 1e3, 3),
        hetero_utilization=[round(hetero.chip_utilization(c), 3) for c in range(4)],
    )
    # every request is conserved in both scenarios
    assert batched.num_requests == hetero.num_requests == len(requests)
    # batching actually batches under a 4x-capacity load
    assert batched.mean_batch_size > 1.5
    # the fast chip (2.0x) serves more than the slow one (0.5x)
    fast = sum(1 for r in hetero.requests if r.chip == 3)
    slow = sum(1 for r in hetero.requests if r.chip == 2)
    assert fast > slow
