"""Shared fixtures for the STAR reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "regenerate the committed golden experiment reports under "
            "tests/golden/goldens/ instead of comparing against them"
        ),
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """Whether this run should rewrite the golden files."""
    return request.config.getoption("--update-goldens")

from repro.core import RRAMSoftmaxEngine, SoftmaxEngineConfig
from repro.utils.fixed_point import CNEWS_FORMAT, COLA_FORMAT, MRPC_FORMAT
from repro.workloads import CNEWS_PROFILE, COLA_PROFILE, MRPC_PROFILE, AttentionScoreGenerator


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def cnews_engine() -> RRAMSoftmaxEngine:
    """A softmax engine configured with the CNEWS 8-bit format."""
    return RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))


@pytest.fixture
def score_rows(rng) -> np.ndarray:
    """A small batch of synthetic CNEWS-like attention-score rows."""
    generator = AttentionScoreGenerator(CNEWS_PROFILE, seed=7)
    return generator.rows(8, 32)


@pytest.fixture(params=["CNEWS", "MRPC", "CoLA"])
def dataset_profile(request):
    """Parametrised fixture over the three dataset profiles."""
    return {"CNEWS": CNEWS_PROFILE, "MRPC": MRPC_PROFILE, "CoLA": COLA_PROFILE}[request.param]


@pytest.fixture(params=["CNEWS", "MRPC", "CoLA"])
def dataset_format(request):
    """Parametrised fixture over the three paper formats."""
    return {"CNEWS": CNEWS_FORMAT, "MRPC": MRPC_FORMAT, "CoLA": COLA_FORMAT}[request.param]
