"""STAR's MatMul engine: ReTransformer-style RRAM crossbar GEMM tiles.

The MatMul engine "follows the design in ReTransformer" (Section II of the
paper): weights (or, for the attention score product, the dynamically
written K / V operands) are mapped to 128 x 128 crossbar tiles, inputs are
streamed bit-serially through 1-bit wordline DACs, and 5-bit ADCs read the
bitline sums.

The class provides both

* a *functional* path — :meth:`matvec_tile` / :meth:`matmul` — built on
  :class:`repro.rram.crossbar.AnalogCrossbar`, used by the examples and the
  crossbar-fidelity tests, and
* an *analytical cost* path — :meth:`gemm_latency_s`, :meth:`gemm_energy_j`,
  :meth:`row_latency_s` — used by the pipeline model and the Fig. 3
  efficiency comparison, where simulating every analog access would be
  pointlessly slow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.area import CrossbarAreaModel
from repro.core.config import MatMulEngineConfig
from repro.rram.converters import ADC, DAC
from repro.rram.crossbar import AnalogCrossbar, CrossbarConfig
from repro.rram.device import RRAMDeviceConfig
from repro.utils.validation import require_positive

__all__ = ["GEMMShape", "MatMulEngine"]


@dataclass(frozen=True)
class GEMMShape:
    """Dimensions of one GEMM: ``(M x K) @ (K x N)``."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.k < 1 or self.n < 1:
            raise ValueError(f"GEMM dimensions must be positive, got {self}")

    @property
    def operations(self) -> int:
        """Primitive operations (MAC = 2 ops)."""
        return 2 * self.m * self.k * self.n


class MatMulEngine:
    """A bank of RRAM crossbar tiles executing GEMMs."""

    name = "STAR MatMul engine"

    def __init__(self, config: MatMulEngineConfig | None = None) -> None:
        self.config = config or MatMulEngineConfig()
        cfg = self.config
        self._tile_config = CrossbarConfig(
            rows=cfg.crossbar_rows,
            cols=cfg.crossbar_cols,
            device=RRAMDeviceConfig(bits_per_cell=cfg.bits_per_cell),
            adc_bits=cfg.adc_bits,
            dac_bits=cfg.dac_bits,
            input_bits=cfg.input_bits,
            noise=cfg.noise,
            differential=True,
        )
        self._reference_tile = AnalogCrossbar(self._tile_config)
        self._area_model = CrossbarAreaModel()
        self._adc = ADC(bits=cfg.adc_bits)
        self._dac = DAC(bits=cfg.dac_bits)

    # ------------------------------------------------------------------ #
    # functional path (small-scale demos and tests)
    # ------------------------------------------------------------------ #
    def new_tile(self) -> AnalogCrossbar:
        """A freshly constructed crossbar tile with this engine's configuration."""
        return AnalogCrossbar(self._tile_config)

    def matvec_tile(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Analog ``vector @ matrix`` on one tile (shapes must fit the tile)."""
        tile = self.new_tile()
        tile.program(matrix)
        return tile.matvec(vector)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Analog ``a @ b`` by tiling ``b`` across crossbars.

        Intended for example-scale matrices; each ``crossbar_rows x
        crossbar_cols`` block of ``b`` is programmed into a tile and every
        row of ``a`` is streamed through it.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("matmul expects two 2-D matrices")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions differ: {a.shape} @ {b.shape}")
        rows, cols = self.config.crossbar_rows, self.config.crossbar_cols
        m, k = a.shape
        _, n = b.shape
        out = np.zeros((m, n), dtype=np.float64)
        for k0 in range(0, k, rows):
            k1 = min(k0 + rows, k)
            for n0 in range(0, n, cols):
                n1 = min(n0 + cols, n)
                block = np.zeros((rows, cols))
                block[: k1 - k0, : n1 - n0] = b[k0:k1, n0:n1]
                tile = self.new_tile()
                tile.program(block)
                for i in range(m):
                    vector = np.zeros(rows)
                    segment = a[i, k0:k1]
                    offset = float(np.min(segment))
                    vector[: k1 - k0] = segment - offset  # wordlines need >= 0 inputs
                    result = tile.matvec(vector)
                    correction = offset * np.sum(block, axis=0)
                    out[i, n0:n1] += result[: n1 - n0] + correction[: n1 - n0]
        return out

    # ------------------------------------------------------------------ #
    # per-tile costs
    # ------------------------------------------------------------------ #
    def tile_vmm_latency_s(self) -> float:
        """Latency of one tile VMM (all bit-serial input cycles)."""
        return self._reference_tile.vmm_latency_s()

    def tile_vmm_energy_j(self) -> float:
        """Energy of one tile VMM."""
        return self._reference_tile.vmm_energy_j()

    def tile_ops(self) -> int:
        """Primitive operations completed by one tile VMM (MAC = 2 ops)."""
        return 2 * self.config.crossbar_rows * self.config.crossbar_cols

    def tile_area_um2(self) -> float:
        """Area of one tile including DACs, S&H and shared ADCs."""
        cfg = self.config
        return self._area_model.vmm_crossbar_area_um2(
            cfg.crossbar_rows,
            cfg.crossbar_cols * 2,  # differential column pairs
            adc=self._adc,
            dac=self._dac,
        )

    def tile_power_w(self) -> float:
        """Average power of one tile running VMMs back to back."""
        return self.tile_vmm_energy_j() / self.tile_vmm_latency_s()

    # ------------------------------------------------------------------ #
    # engine-level costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Total area of all tiles."""
        return self.config.num_tiles * self.tile_area_um2()

    def area_mm2(self) -> float:
        """Total area of all tiles in mm^2."""
        return self.area_um2() * 1e-6

    def peak_power_w(self) -> float:
        """Power with every tile active."""
        return self.config.num_tiles * self.tile_power_w()

    def peak_throughput_ops(self) -> float:
        """Operations per second with every tile active."""
        return self.config.num_tiles * self.tile_ops() / self.tile_vmm_latency_s()

    def _tiles_for(self, shape: GEMMShape) -> int:
        cfg = self.config
        return math.ceil(shape.k / cfg.crossbar_rows) * math.ceil(shape.n / cfg.crossbar_cols)

    def gemm_tile_vmms(self, shape: GEMMShape) -> int:
        """Number of tile VMM activations needed for one GEMM."""
        return self._tiles_for(shape) * shape.m

    def gemm_latency_s(self, shape: GEMMShape, tiles_available: int | None = None) -> float:
        """Latency of one GEMM with ``tiles_available`` tiles working in parallel.

        With ``allow_duplication`` the stationary operand is replicated
        across otherwise-idle tiles so different input rows proceed in
        parallel; otherwise parallelism is capped by the number of distinct
        tiles the operand occupies.
        """
        tiles = tiles_available if tiles_available is not None else self.config.num_tiles
        require_positive(tiles, "tiles_available")
        total_vmms = self.gemm_tile_vmms(shape)
        if self.config.allow_duplication:
            parallel = tiles
        else:
            parallel = min(tiles, self._tiles_for(shape))
        waves = math.ceil(total_vmms / parallel)
        return waves * self.tile_vmm_latency_s()

    def gemm_energy_j(self, shape: GEMMShape) -> float:
        """Energy of one GEMM."""
        return self.gemm_tile_vmms(shape) * self.tile_vmm_energy_j()

    def row_latency_s(self, shape: GEMMShape) -> float:
        """Latency of producing one output row of a GEMM (pipeline granule).

        All tiles holding the stationary operand work in parallel on the same
        input row, so a row takes one tile-VMM latency regardless of ``n``
        (as long as enough tiles are provisioned).
        """
        tiles_needed = self._tiles_for(shape)
        waves = math.ceil(tiles_needed / self.config.num_tiles)
        return waves * self.tile_vmm_latency_s()

    def programming_energy_j(self, shape: GEMMShape) -> float:
        """Energy of writing the stationary ``K x N`` operand into the tiles.

        Only accelerators that rewrite dynamic operands (e.g. PipeLayer
        executing attention) pay this per inference; ReTransformer and STAR
        avoid it through matrix decomposition, but the figure is exposed for
        the ablation benchmarks.
        """
        cells = shape.k * shape.n * 2  # differential pairs
        return cells * self._reference_tile.device.config.write_energy_j

    def programming_latency_s(self, shape: GEMMShape) -> float:
        """Latency of writing the stationary operand (row-parallel writes)."""
        rows_to_write = math.ceil(shape.k / self.config.crossbar_rows) * self.config.crossbar_rows
        return rows_to_write * self._reference_tile.device.config.write_pulse_s
