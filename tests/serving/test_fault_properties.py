"""Fault-injection invariants: the property suite of the failure machinery.

Random traffic, fleets, failure processes and shedding policies drive the
fault-aware simulator path, and the suite asserts the structural
invariants any correct fault-tolerant serving system obeys: request
conservation across the completed/shed/abandoned partition, no work on a
failed chip, causal retries whose backoff respects the policy envelope,
deadline-respecting dispatch, bounded queues, and Little's law on the
traffic that survives.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    AdmissionController,
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    FixedServiceModel,
    PoissonArrivals,
    RetryPolicy,
    ServingSimulator,
)

# a random fault-injected serving scenario: traffic, fleet, failure
# process, retry policy and admission control all drawn together
fault_scenarios = st.fixed_dictionaries(
    {
        "num_requests": st.integers(min_value=5, max_value=120),
        "rate_rps": st.floats(min_value=100.0, max_value=5000.0),
        "service_s": st.floats(min_value=1e-4, max_value=3e-3),
        "num_chips": st.integers(min_value=1, max_value=4),
        "max_batch": st.integers(min_value=1, max_value=8),
        "max_wait_s": st.sampled_from([0.0, 1e-4, 2e-3]),
        "mtbf_s": st.floats(min_value=2e-3, max_value=5e-2),
        "detection_s": st.floats(min_value=0.0, max_value=2e-3),
        "reprogram_s": st.floats(min_value=0.0, max_value=3e-3),
        "max_attempts": st.integers(min_value=1, max_value=4),
        "jitter": st.floats(min_value=0.0, max_value=0.5, exclude_max=False),
        "deadline_s": st.none() | st.floats(min_value=5e-3, max_value=5e-2),
        "max_queue_depth": st.none() | st.integers(min_value=1, max_value=64),
        "degraded_max_batch": st.none() | st.integers(min_value=1, max_value=4),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def simulate(params):
    requests = PoissonArrivals(
        params["rate_rps"], seq_len=128, seed=params["seed"]
    ).generate(params["num_requests"])
    fleet = ChipFleet(
        FixedServiceModel(
            params["service_s"],
            request_energy_j=1e-6,
            reprogram_latency_s=params["reprogram_s"],
        ),
        num_chips=params["num_chips"],
    )
    batcher = DynamicBatcher(
        max_batch_size=params["max_batch"], max_wait_s=params["max_wait_s"]
    )
    retry = RetryPolicy(
        max_attempts=params["max_attempts"],
        backoff_base_s=1e-4,
        jitter=params["jitter"],
        deadline_s=params["deadline_s"],
    )
    admission = AdmissionController(
        max_queue_depth=params["max_queue_depth"],
        shed_expired=params["deadline_s"] is not None,
        degraded_max_batch=params["degraded_max_batch"],
    )
    faults = FaultInjector(
        mtbf_s=params["mtbf_s"],
        detection_s=params["detection_s"],
        seed=params["seed"] + 1,
    )
    simulator = ServingSimulator(
        fleet, batcher, faults=faults, retry=retry, admission=admission
    )
    return requests, retry, simulator.run(requests)


class TestFaultProperties:
    @given(fault_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_request_conservation(self, params):
        """completed + shed + abandoned partitions the offered requests."""
        requests, _, report = simulate(params)
        assert report.num_offered == len(requests)
        resolved = sorted(
            [r.index for r in report.requests]
            + [d.index for d in report.shed]
            + [d.index for d in report.abandoned]
        )
        assert resolved == sorted(r.index for r in requests)

    @given(fault_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_no_work_on_failed_chips(self, params):
        """No surviving batch overlaps a failure window of its chip: work
        dispatched into a window is killed, and dispatch never targets a
        chip that is down."""
        _, _, report = simulate(params)
        windows: dict[int, list] = {}
        for failure in report.failures:
            windows.setdefault(failure.chip, []).append(failure)
        for batch in report.batches:
            for failure in windows.get(batch.chip, []):
                assert (
                    batch.completion_s <= failure.fail_s + 1e-12
                    or batch.dispatch_s >= failure.repaired_s - 1e-12
                )

    @given(fault_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_retry_causality_and_backoff_envelope(self, params):
        """Retries re-enter after the failure, within the jitter envelope
        of the policy's nominal backoff, and never past max_attempts."""
        _, retry, report = simulate(params)
        for record in report.retries:
            assert 1 <= record.attempt < retry.max_attempts
            nominal = retry.nominal_backoff_s(record.attempt)
            low = nominal * (1.0 - retry.jitter)
            high = nominal * (1.0 + retry.jitter)
            assert record.reenqueue_s >= record.failure_s
            assert low - 1e-15 <= record.backoff_s <= high + 1e-15

    @given(fault_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_deadline_and_queue_bounds(self, params):
        """Deadline shedding never dispatches expired work; a bounded
        queue never exceeds its depth; abandonment respects the policy."""
        _, retry, report = simulate(params)
        if retry.deadline_s is not None:
            for record in report.requests:
                assert record.dispatch_s <= record.arrival_s + retry.deadline_s + 1e-12
        if params["max_queue_depth"] is not None:
            assert report.queue_peak <= params["max_queue_depth"]
        for drop in report.abandoned:
            assert drop.reason in ("retries_exhausted", "deadline")
            assert drop.attempts >= 1
            if drop.reason == "retries_exhausted":
                assert drop.attempts == retry.max_attempts

    @given(fault_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_failure_ledger_consistency(self, params):
        """Failure windows are positive, per-chip windows never overlap,
        and lost-batch accounting matches the retry/abandon records."""
        _, _, report = simulate(params)
        by_chip: dict[int, list] = {}
        for failure in report.failures:
            assert failure.repaired_s >= failure.fail_s
            assert failure.lost_requests >= 0
            assert failure.wasted_energy_j >= 0.0
            by_chip.setdefault(failure.chip, []).append(failure)
        for failures in by_chip.values():
            failures.sort(key=lambda f: f.fail_s)
            for earlier, later in zip(failures, failures[1:]):
                assert later.fail_s >= earlier.repaired_s - 1e-12
        # every lost request either retried or was abandoned at that instant
        lost_total = sum(f.lost_requests for f in report.failures)
        assert lost_total == len(report.retries) + len(report.abandoned)

    def test_littles_law_on_surviving_traffic(self):
        """Sample-path Little's law holds for the completed population."""
        service = 1e-3
        rate = 0.6 / service
        requests = PoissonArrivals(rate, seed=11).generate(20000)
        fleet = ChipFleet(
            FixedServiceModel(service, reprogram_latency_s=2e-3), num_chips=2
        )
        faults = FaultInjector(mtbf_s=0.5, detection_s=5e-3, seed=3)
        retry = RetryPolicy(max_attempts=4, backoff_base_s=1e-3)
        report = ServingSimulator(
            fleet, DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            faults=faults, retry=retry,
        ).run(requests)
        assert report.num_failures > 0  # the run actually exercised faults
        events = []
        for r in report.requests:
            events.append((r.arrival_s, +1))
            events.append((r.completion_s, -1))
        events.sort()
        t0 = events[0][0]
        occupancy_integral, level, prev = 0.0, 0, t0
        for time, delta in events:
            occupancy_integral += level * (time - prev)
            level += delta
            prev = time
        window = prev - t0
        completed_rate = len(report.requests) / window
        mean_in_system = occupancy_integral / window
        assert mean_in_system == pytest.approx(
            completed_rate * report.mean_latency_s, rel=0.05
        )
