"""Tests for repro.arch: area model, cost reports, comparisons, system overheads."""

from __future__ import annotations

import pytest

from repro.arch.area import CrossbarAreaModel, rram_cell_area_um2
from repro.arch.report import ComparisonTable, CostReport
from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD, SystemOverheadModel
from repro.rram.converters import ADC, DAC


class TestAreaModel:
    def test_cell_area_follows_4f2(self):
        assert rram_cell_area_um2(32.0, 4.0) == pytest.approx(4 * 0.032**2)
        assert rram_cell_area_um2(16.0) == pytest.approx(rram_cell_area_um2(32.0) / 4)

    def test_array_area_scales_with_cells(self):
        model = CrossbarAreaModel()
        assert model.array_area_um2(256, 256) == pytest.approx(4 * model.array_area_um2(128, 128))

    def test_vmm_crossbar_area_includes_peripherals(self):
        model = CrossbarAreaModel()
        adc, dac = ADC(bits=5), DAC(bits=1)
        total = model.vmm_crossbar_area_um2(128, 128, adc, dac)
        assert total > model.array_area_um2(128, 128)

    def test_cam_area_counts_complementary_cells(self):
        model = CrossbarAreaModel()
        cam = model.cam_crossbar_area_um2(512, 9)
        assert cam > model.array_area_um2(512, 18)

    def test_lut_area(self):
        model = CrossbarAreaModel()
        assert model.lut_crossbar_area_um2(256, 18) > 0

    def test_invalid_dimensions(self):
        model = CrossbarAreaModel()
        with pytest.raises(ValueError):
            model.array_area_um2(0, 10)
        with pytest.raises(ValueError):
            model.cam_crossbar_area_um2(10, 0)
        with pytest.raises(ValueError):
            model.vmm_crossbar_area_um2(8, 8, ADC(), DAC(), adc_share=0)


class TestCostReport:
    def make(self, name="x", power=10.0, latency=1e-3, ops=1e10):
        return CostReport(name=name, area_mm2=25.0, power_w=power, latency_s=latency, operations=ops)

    def test_efficiency_matches_definition(self):
        report = self.make(power=10.0, latency=1e-3, ops=1e10)
        # 1e10 ops / 1e-3 s = 1e13 ops/s = 1e4 GOPs/s, / 10 W = 1e3 GOPs/s/W
        assert report.computing_efficiency_gops_per_watt == pytest.approx(1000.0)

    def test_energy_defaults_to_power_times_latency(self):
        report = self.make(power=5.0, latency=2.0)
        assert report.energy_j == pytest.approx(10.0)

    def test_throughput_and_energy_per_op(self):
        report = self.make(latency=1e-3, ops=2e9)
        assert report.throughput_gops == pytest.approx(2000.0)
        assert report.energy_per_op_j == pytest.approx(report.energy_j / 2e9)

    def test_summary_keys(self):
        summary = self.make().summary()
        assert "efficiency_gops_per_watt" in summary
        assert "latency_s" in summary

    def test_invalid_report(self):
        with pytest.raises(ValueError):
            CostReport(name="bad", area_mm2=0, power_w=1, latency_s=1, operations=1)


class TestComparisonTable:
    def reports(self):
        return [
            CostReport(name="A", area_mm2=1.0, power_w=10.0, latency_s=1e-3, operations=1e9),
            CostReport(name="B", area_mm2=2.0, power_w=5.0, latency_s=5e-4, operations=1e9),
        ]

    def test_ratios(self):
        table = ComparisonTable(self.reports())
        assert table.area_ratio("B", "A") == pytest.approx(2.0)
        assert table.power_ratio("B", "A") == pytest.approx(0.5)
        # B: 2e12 ops/s / 5 W = 400 GOPs/W; A: 1e12 / 10 = 100 -> 4x
        assert table.efficiency_gain("B", "A") == pytest.approx(4.0)

    def test_get_unknown_design(self):
        table = ComparisonTable(self.reports())
        with pytest.raises(KeyError):
            table.get("missing")

    def test_duplicate_names_rejected(self):
        report = self.reports()[0]
        with pytest.raises(ValueError):
            ComparisonTable([report, report])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ComparisonTable([])

    def test_format_table(self):
        table = ComparisonTable(self.reports())
        text = table.format_table(reference="A")
        assert "ratios vs A" in text
        assert "B" in text


class TestSystemOverhead:
    def test_total_power_scales_with_tiles(self):
        model = SystemOverheadModel()
        assert model.total_power_w(96) > model.total_power_w(48)
        expected = 96 * model.power_w_per_tile + model.io_power_w
        assert model.total_power_w(96) == pytest.approx(expected)

    def test_total_area(self):
        model = DEFAULT_SYSTEM_OVERHEAD
        assert model.total_area_mm2(96) == pytest.approx(96 * model.overhead_area_mm2_per_tile)

    def test_zero_tiles_costs_io_only(self):
        # regression: a softmax-engine-only or idle-chip config used to be
        # rejected; it should cost the once-per-chip IO power and no area
        model = DEFAULT_SYSTEM_OVERHEAD
        assert model.total_power_w(0) == pytest.approx(model.io_power_w)
        assert model.total_area_mm2(0) == 0.0

    def test_negative_tiles_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_SYSTEM_OVERHEAD.total_power_w(-1)
        with pytest.raises(ValueError):
            DEFAULT_SYSTEM_OVERHEAD.total_area_mm2(-1)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SystemOverheadModel(buffer_power_w_per_tile=-1)
