"""RRAM content-addressable memory (CAM) crossbar.

A CAM crossbar stores one binary codeword per row using complementary cell
pairs (two RRAM cells per bit, as in a resistive TCAM).  A search applies the
query bits and their complements to the search lines; only the row whose
stored word matches the query keeps its matchline current below the sense
threshold, so the matchline sense amplifiers output a one-hot match vector.

STAR uses CAM crossbars in two places:

* the **CAM/SUB crossbar** (512 x 18) that locates ``x_max`` among the input
  scores before subtraction (Fig. 1 of the paper);
* the **CAM crossbar of the exponential unit** (256 x 18) that maps each
  ``x_i - x_max`` magnitude to a row index whose LUT entry is the
  pre-computed exponential (Fig. 2).

Both store *every representable fixed-point level* rather than arbitrary
data, which is why exact-match search is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.converters import SenseAmplifier
from repro.rram.device import RRAMDeviceConfig
from repro.utils.validation import require_in_range, require_positive

__all__ = ["CAMConfig", "CAMCrossbar"]


@dataclass(frozen=True)
class CAMConfig:
    """Geometry and behaviour of a CAM crossbar.

    Attributes
    ----------
    rows:
        Number of stored codewords (one per wordline / matchline).
    bits:
        Width of each codeword; each bit occupies two complementary cells,
        so the physical column count is ``2 * bits``.
    device:
        RRAM cell parameters (used for energy accounting).
    search_error_rate:
        Probability that a search of one row flips its match decision,
        modelling sense-margin failures under device noise.  0 disables it.
    matchline_capacitance_f:
        Capacitance of one matchline (wire plus the drains of its cells);
        every search precharges all matchlines, which dominates CAM search
        energy.
    seed:
        Seed for the error-injection random stream.
    """

    rows: int = 256
    bits: int = 9
    device: RRAMDeviceConfig = field(default_factory=RRAMDeviceConfig)
    search_error_rate: float = 0.0
    matchline_capacitance_f: float = 50.0e-15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError(f"rows must be >= 1, got {self.rows}")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")
        require_in_range(self.search_error_rate, 0.0, 1.0, "search_error_rate")
        require_positive(self.matchline_capacitance_f, "matchline_capacitance_f")

    @property
    def physical_cols(self) -> int:
        """Physical bitlines: two complementary cells per stored bit."""
        return 2 * self.bits

    @property
    def num_cells(self) -> int:
        """Total RRAM cells in the CAM array."""
        return self.rows * self.physical_cols

    @property
    def capacity(self) -> int:
        """Number of distinct codewords the width can represent."""
        return 1 << self.bits


class CAMCrossbar:
    """Exact-match CAM built from complementary RRAM cell pairs."""

    def __init__(self, config: CAMConfig | None = None) -> None:
        self.config = config or CAMConfig()
        self.sense_amp = SenseAmplifier()
        self._rng = np.random.default_rng(self.config.seed)
        self._stored_codes: np.ndarray | None = None
        self._stored_bits: np.ndarray | None = None
        self._stored_mask: np.ndarray | None = None
        self._contiguous_count: int | None = None
        self.search_count = 0

    # ------------------------------------------------------------------ #
    # programming
    # ------------------------------------------------------------------ #
    @property
    def is_programmed(self) -> bool:
        """Whether codewords have been written."""
        return self._stored_codes is not None

    @property
    def stored_codes(self) -> np.ndarray:
        """The integer codewords stored per row (top to bottom)."""
        if self._stored_codes is None:
            raise RuntimeError("CAM has not been programmed yet")
        return self._stored_codes.copy()

    def program_codes(self, codes: np.ndarray) -> None:
        """Store one integer codeword per row.

        Parameters
        ----------
        codes:
            Array of length ``<= rows`` holding non-negative integers below
            ``2 ** bits``.  Rows beyond ``len(codes)`` are left unused and
            never match.
        """
        arr = np.asarray(codes, dtype=np.int64).ravel()
        cfg = self.config
        if arr.size > cfg.rows:
            raise ValueError(f"{arr.size} codewords exceed the {cfg.rows} CAM rows")
        if arr.size == 0:
            raise ValueError("cannot program an empty codeword list")
        if np.any(arr < 0) or np.any(arr >= cfg.capacity):
            raise ValueError(f"codewords must lie in [0, {cfg.capacity - 1}]")
        self._stored_codes = arr.copy()
        # expand to a bits matrix once so searches are cheap
        bit_positions = np.arange(cfg.bits, dtype=np.int64)
        self._stored_bits = ((arr[:, None] >> bit_positions[None, :]) & 1).astype(np.int8)
        # membership table for the batched (analytic) search path
        self._stored_mask = np.zeros(cfg.capacity, dtype=bool)
        self._stored_mask[arr] = True
        # both STAR CAMs store the contiguous code set {0..k-1}, which lets
        # the batched search skip the membership gather entirely
        count = int(arr.size)
        self._contiguous_count = count if bool(self._stored_mask[:count].all()) else None

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def search(self, query: int) -> np.ndarray:
        """Search one query codeword; returns the 0/1 match vector per row."""
        if not self.is_programmed:
            raise RuntimeError("CAM must be programmed before searching")
        cfg = self.config
        if not 0 <= query < cfg.capacity:
            raise ValueError(f"query {query} outside [0, {cfg.capacity - 1}]")
        matches = (self._stored_codes == query).astype(np.int64)
        matches = self._inject_errors(matches)
        self.search_count += 1
        return matches

    def search_many(self, queries: np.ndarray) -> np.ndarray:
        """Search a batch of queries; returns a ``len(queries) x rows`` matrix.

        All wordlines are searched in parallel for each query, as in Fig. 1
        of the paper; queries themselves are applied sequentially.
        """
        if not self.is_programmed:
            raise RuntimeError("CAM must be programmed before searching")
        arr = np.asarray(queries, dtype=np.int64).ravel()
        cfg = self.config
        if np.any(arr < 0) or np.any(arr >= cfg.capacity):
            raise ValueError(f"queries must lie in [0, {cfg.capacity - 1}]")
        matches = (arr[:, None] == self._stored_codes[None, :]).astype(np.int64)
        matches = self._inject_errors(matches)
        self.search_count += arr.size
        return matches

    # ------------------------------------------------------------------ #
    # batched (analytic) search
    # ------------------------------------------------------------------ #
    def _require_error_free(self, name: str) -> None:
        """The analytic batched search cannot model matchline flips."""
        if self.config.search_error_rate > 0.0:
            raise RuntimeError(
                f"{name} requires search_error_rate == 0; searches with error "
                "injection must simulate matchline vectors via search/search_many"
            )

    def _batched_queries(self, queries: np.ndarray, name: str) -> np.ndarray:
        if not self.is_programmed:
            raise RuntimeError("CAM must be programmed before searching")
        self._require_error_free(name)
        block = np.asarray(queries, dtype=np.int64)
        if block.ndim != 2:
            raise ValueError(f"{name} expects a 2D (num_rows, n) query block")
        if block.size and np.any(block < 0):
            raise ValueError("queries must be non-negative codes")
        return block

    def search_max_codes(self, queries: np.ndarray, *, assume_hits: bool = False) -> np.ndarray:
        """Largest stored code matched per row of a ``(num_rows, n)`` block.

        Equivalent to searching every query of a row, OR-merging the match
        vectors and picking the best hit — but computed with one ``np.max``
        instead of materializing ``n x rows`` match matrices.  Queries at or
        beyond ``capacity`` never match (their codeword does not fit the
        search lines); rows where nothing matched return ``-1``.

        With ``assume_hits`` the caller guarantees every query matches a
        stored codeword (true for the CAM/SUB crossbar, which stores every
        representable level), so validation and miss masking are skipped and
        the search collapses to one ``np.max`` over the block.
        """
        if assume_hits:
            self._require_error_free("search_max_codes")
            block = np.asarray(queries)
            self.search_count += block.size
            return block.max(axis=-1)
        block = self._batched_queries(queries, "search_max_codes")
        if block.size == 0:
            return np.full(block.shape[0], -1, dtype=np.int64)
        self.search_count += block.size
        contiguous = self._contiguous_count
        if contiguous is not None:
            # stored set is {0..contiguous-1}: a query matches iff below it
            return np.where(block < contiguous, block, np.int64(-1)).max(axis=-1)
        safe = np.minimum(block, self.config.capacity - 1)
        hit = self._stored_mask[safe] & (block < self.config.capacity)
        return np.where(hit, block, -1).max(axis=-1)

    def search_histograms(
        self, queries: np.ndarray, num_codes: int, *, count: bool = True
    ) -> np.ndarray:
        """Per-row histogram of matched codes below ``num_codes``.

        For each row of a ``(num_rows, n)`` query block, counts how many
        queries matched each stored code in ``[0, num_codes)`` — exactly the
        counter-bank state after the row's searches — using one offset
        ``np.bincount`` over the whole block.  Pass ``count=False`` when the
        histogram is a derived view of searches already accounted elsewhere.
        """
        if num_codes < 1:
            raise ValueError(f"num_codes must be >= 1, got {num_codes}")
        block = self._batched_queries(queries, "search_histograms")
        num_rows = block.shape[0]
        if block.size == 0:
            return np.zeros((num_rows, num_codes), dtype=np.int64)
        if count:
            self.search_count += block.size
        contiguous = self._contiguous_count
        if contiguous is not None:
            # stored set is {0..contiguous-1}: fold everything not counted
            # (misses and codes beyond num_codes) into one sentinel bucket and
            # histogram the whole block with a single offset bincount
            cutoff = min(num_codes, contiguous)
            idx = np.minimum(block, cutoff)
            idx += np.arange(num_rows, dtype=np.int64)[:, None] * (cutoff + 1)
            counts = np.bincount(idx.ravel(), minlength=num_rows * (cutoff + 1))
            counts = counts.reshape(num_rows, cutoff + 1)[:, :cutoff]
            if cutoff == num_codes:
                return counts
            padded = np.zeros((num_rows, num_codes), dtype=counts.dtype)
            padded[:, :cutoff] = counts
            return padded
        safe = np.minimum(block, self.config.capacity - 1)
        # queries at or beyond capacity can never match, even when num_codes
        # exceeds the code space
        counted = self._stored_mask[safe] & (block < min(num_codes, self.config.capacity))
        row_index = np.broadcast_to(
            np.arange(num_rows, dtype=np.int64)[:, None], block.shape
        )
        flat = row_index[counted] * num_codes + block[counted]
        return np.bincount(flat, minlength=num_rows * num_codes).reshape(
            num_rows, num_codes
        )

    def match_index(self, query: int) -> int:
        """Row index storing ``query``; -1 when no row matches."""
        matches = self.search(query)
        hits = np.flatnonzero(matches)
        return int(hits[0]) if hits.size else -1

    def _inject_errors(self, matches: np.ndarray) -> np.ndarray:
        rate = self.config.search_error_rate
        if rate <= 0.0:
            return matches
        flips = self._rng.random(size=matches.shape) < rate
        return np.where(flips, 1 - matches, matches)

    # ------------------------------------------------------------------ #
    # per-access costs
    # ------------------------------------------------------------------ #
    def search_latency_s(self) -> float:
        """Latency of one parallel search: precharge + discharge + sense."""
        precharge = 0.5e-9
        discharge = self.config.device.read_pulse_s
        return precharge + discharge + self.sense_amp.latency_s

    def search_energy_j(self) -> float:
        """Energy of one parallel search over all rows.

        Three contributions: precharging every matchline, the discharge
        current through (on average half) the cells while the search lines
        are driven, and the matchline sense amplifiers.
        """
        cfg = self.config
        v = cfg.device.read_voltage_v
        precharge_energy = cfg.rows * cfg.matchline_capacitance_f * v * v
        # on average half the cells conduct during a search
        g_mid = 0.5 * (1.0 / cfg.device.r_on_ohm + 1.0 / cfg.device.r_off_ohm)
        cell_energy = 0.5 * cfg.num_cells * v * v * g_mid * cfg.device.read_pulse_s
        sense_energy = cfg.rows * self.sense_amp.energy_per_sense_j
        return precharge_energy + cell_energy + sense_energy

    def area_um2(self, cell_area_um2: float = 0.2) -> float:
        """Array area: cells plus one sense amplifier per matchline."""
        require_positive(cell_area_um2, "cell_area_um2")
        return self.config.num_cells * cell_area_um2 + self.config.rows * self.sense_amp.area_um2
