"""Per-level counter bank of the exponential unit (Fig. 2, "Counter").

While each ``x_i - x_max`` magnitude is looked up in the CAM/LUT pair, its
match vector also increments a counter attached to the matching row.  After
the whole row has been processed the counter values form a histogram —
"how many inputs landed on each representable level" — and the VMM crossbar
turns that histogram into the softmax denominator in a single analog pass.

The bank is a plain digital structure; its cost comes from
:class:`~repro.circuits.components.Counter`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.components import Counter
from repro.circuits.technology import DEFAULT_TECHNOLOGY, TechnologyNode

__all__ = ["CounterBank"]


class CounterBank:
    """A bank of ``num_counters`` up-counters of ``bits`` bits each."""

    def __init__(
        self,
        num_counters: int,
        bits: int,
        tech: TechnologyNode = DEFAULT_TECHNOLOGY,
    ) -> None:
        if num_counters < 1:
            raise ValueError(f"num_counters must be >= 1, got {num_counters}")
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        self.num_counters = num_counters
        self.bits = bits
        self._cost = Counter.cost(bits, tech)
        self._values = np.zeros(num_counters, dtype=np.int64)
        self.increment_count = 0

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """Current counter values."""
        return self._values.copy()

    @property
    def max_count(self) -> int:
        """Saturation value of one counter."""
        return (1 << self.bits) - 1

    def reset(self) -> None:
        """Clear every counter (start of a new softmax row)."""
        self._values.fill(0)

    def increment(self, index: int) -> None:
        """Increment the counter at ``index`` (saturating)."""
        if not 0 <= index < self.num_counters:
            raise ValueError(f"counter index {index} outside [0, {self.num_counters - 1}]")
        if self._values[index] < self.max_count:
            self._values[index] += 1
        self.increment_count += 1

    def accumulate_histogram(self, indices: np.ndarray) -> np.ndarray:
        """Increment one counter per entry of ``indices`` and return the values.

        Entries equal to ``-1`` are CAM misses (out-of-range differences whose
        exponential is zero) and are skipped, exactly as a missing matchline
        pulse would leave every counter untouched.
        """
        idx = np.asarray(indices, dtype=np.int64).ravel()
        valid = idx[idx >= 0]
        if np.any(valid >= self.num_counters):
            raise ValueError(
                f"counter indices must lie in [0, {self.num_counters - 1}] or be -1"
            )
        counts = np.bincount(valid, minlength=self.num_counters)
        self._values = np.minimum(self._values + counts, self.max_count)
        self.increment_count += int(valid.size)
        return self.values

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Total area of the counter bank."""
        return self.num_counters * self._cost.area_um2

    def increment_energy_j(self) -> float:
        """Energy of one counter increment."""
        return self._cost.energy_per_op_j

    def increment_latency_s(self) -> float:
        """Latency of one counter increment (overlapped with the CAM search)."""
        return self._cost.latency_s

    def power_w(self) -> float:
        """Peak power with one counter toggling per cycle plus leakage share.

        Only one counter increments per CAM search, so dynamic power is a
        single counter's; the rest contribute a small static share (modelled
        as 2 % of their dynamic figure).
        """
        dynamic = self._cost.power_w
        static = 0.02 * self._cost.power_w * (self.num_counters - 1)
        return dynamic + static
