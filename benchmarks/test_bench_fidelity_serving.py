"""Fidelity-tiering benchmark: executed-schedule pricing at fleet throughput.

Two gates guard the tentpole claim that high-fidelity pricing costs
~nothing on the hot path:

* **Resample speed** — pricing one jittered dispatch off a cached
  :class:`~repro.core.schedule_cache.ScheduleTemplate` must be >= 20x
  faster than the cold ``executed_model_schedule`` run it replaces (in
  practice it is thousands of times faster: one vectorized
  ``standard_normal`` call against a heap-based event simulation).
* **Serving overhead** — 100k requests through a prewarmed sharded fleet
  with 5% executed sampling must finish within 2x the wall time of the
  identical analytic-only run.  Both arms ship tabulated pricing tables,
  so the gap isolates the per-dispatch Bernoulli draw + template
  resample, which is the tentpole's hot-path cost.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.schedule_cache import build_schedule_template
from repro.nn.bert import BERT_BASE, BertWorkload
from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    PoissonArrivals,
    ShardedServingSimulator,
    StarServiceModel,
    TieredServiceModel,
)

from conftest import record

SEQ_LEN = 128
NUM_REQUESTS = 100_000
NUM_SHARDS = 4
BATCH_GRID = tuple(range(1, 9))


def _sharded(model) -> ShardedServingSimulator:
    fleet = ChipFleet(model, num_chips=NUM_SHARDS)
    simulator = ShardedServingSimulator(
        fleet,
        DynamicBatcher(max_batch_size=8, max_wait_s=2e-3),
        num_shards=NUM_SHARDS,
    )
    return simulator.prewarm(BATCH_GRID, [SEQ_LEN])


def _arrivals(seed: int = 7) -> PoissonArrivals:
    base = StarServiceModel(seq_len=SEQ_LEN)
    capacity = NUM_SHARDS * 8 / base.batch_latency_s(8, SEQ_LEN)
    return PoissonArrivals(0.6 * capacity, seq_len=SEQ_LEN, seed=seed)


@pytest.mark.smoke
def test_bench_template_resample_beats_cold_executed_run(benchmark):
    """One template resample >= 20x faster than one cold executed run."""
    import numpy as np

    from repro.core.accelerator import STARAccelerator

    accelerator = STARAccelerator(schedule="executed")
    workload = BertWorkload(config=BERT_BASE, seq_len=SEQ_LEN).with_batch(8)

    start = time.perf_counter()
    template = build_schedule_template(accelerator, workload)
    cold_wall = time.perf_counter() - start

    rng = np.random.default_rng(0)
    rounds = 200
    draws = benchmark.pedantic(
        lambda: [template.resample(rng, 0.3) for _ in range(rounds)],
        rounds=1,
        iterations=1,
    )
    resample_wall = benchmark.stats["mean"] / rounds

    speedup = cold_wall / resample_wall
    record(
        benchmark,
        cold_executed_wall_ms=round(cold_wall * 1e3, 2),
        resample_wall_us=round(resample_wall * 1e6, 2),
        speedup=round(speedup),
    )
    assert len(draws) == rounds
    assert all(draw >= template.base_latency_s for draw in draws)
    assert speedup >= 20.0


@pytest.mark.smoke
def test_bench_sampled_fidelity_within_2x_of_analytic(benchmark):
    """100k requests at 5% executed sampling <= 2x analytic-only wall."""
    stream = _arrivals()

    start = time.perf_counter()
    analytic_report = _sharded(StarServiceModel(seq_len=SEQ_LEN)).run_poisson(
        stream, NUM_REQUESTS
    )
    analytic_wall = time.perf_counter() - start

    tiered = TieredServiceModel(
        StarServiceModel(seq_len=SEQ_LEN),
        sample_fraction=0.05,
        jitter_sigma=0.3,
        seed=7,
    )
    simulator = _sharded(tiered)
    report = benchmark.pedantic(
        simulator.run_poisson, args=(stream, NUM_REQUESTS), rounds=1, iterations=1
    )
    tiered_wall = benchmark.stats["mean"]

    overhead = tiered_wall / analytic_wall
    record(
        benchmark,
        analytic_wall_s=round(analytic_wall, 3),
        tiered_wall_s=round(tiered_wall, 3),
        overhead_x=round(overhead, 3),
        executed_batch_pct=round(report.executed_batch_fraction * 100, 2),
        requests_per_wall_second=round(NUM_REQUESTS / tiered_wall),
        cpu_count=os.cpu_count(),
    )
    assert report.num_requests == NUM_REQUESTS
    assert analytic_report.num_requests == NUM_REQUESTS
    assert report.tiering_enabled
    # the Bernoulli fraction lands near its target at 100k requests
    assert 0.02 < report.executed_batch_fraction < 0.10
    assert overhead <= 2.0
