"""Request-level discrete-event simulation of a serving fleet.

The simulator is a thin client of :mod:`repro.core.events` — the same
event-loop/server-pool substrate the attention-pipeline executor runs on,
one level up the stack: the *servers* are whole accelerator chips, the
*items* are inference requests, and service times are whole-model batched
inference latencies from the fleet's service model.

Dynamics
--------

Requests arrive open-loop (their timestamps do not react to system state),
join one fleet-wide FIFO queue, and leave in dispatched batches governed by
the :class:`~repro.serving.batcher.DynamicBatcher`: an idle chip takes a
batch as soon as the queue holds ``max_batch_size`` requests **or** the
oldest queued request has waited ``max_wait_s``.  A dispatched batch pads
to its longest member's sequence length, occupies its chip for the service
model's batch latency, and completes all member requests at once (requests
within a batch keep FIFO order in the records).  In the single-chip,
no-batching limit with deterministic service this is exactly an M/D/1
queue, which :mod:`repro.serving.theory` cross-validates.

Results accumulate *columnar*: the hot loop appends plain scalars to
per-column lists (three appends per request, six per batch) and the
per-request dispatch/completion/chip columns — constant within a batch —
are derived at the end by one vectorized gather from the batch columns.
No per-request record object is built during simulation; the report's
tables materialize records lazily for consumers that want them.

Faults
------

With a :class:`~repro.serving.faults.FaultInjector` (and optionally a
:class:`~repro.serving.faults.RetryPolicy` and
:class:`~repro.serving.faults.AdmissionController`) the same event loop
also runs per-chip failure/repair processes:

* a failing chip goes offline — dispatch is health-aware and never offers
  work to a failed chip — and its in-flight batch is lost: the member
  requests re-enter the queue through the retry policy (bounded attempts,
  deadline-aware exponential backoff with jitter) or are abandoned;
* repair takes detection/drain time plus the chip's full-model operand
  reprogramming cost (``ChipFleet.reprogram_latency_s``) — the
  physically-priced maintenance event — after which the chip rejoins the
  pool and a fresh time-to-failure is drawn;
* the admission controller sheds arrivals beyond a bounded queue depth,
  drops queued requests whose deadline has already passed, and may cap
  batch size while any chip is down (degraded mode).

A failure simultaneous with a batch completion loses the batch (failures
order before completions at equal timestamps) — the conservative reading.
Fault-aware runs record requests and batches at *completion* (a lost batch
produces no records, only a :class:`~repro.serving.report.FailureRecord`),
so their record order is completion order.  Without any fault component
the simulator takes the original healthy path, bit-identical to the
pre-fault simulator.
"""

from __future__ import annotations

import time as _time
from typing import Sequence

import numpy as np

from repro.core.events import ARRIVE, FREE, TIMEOUT, EventLoop, ServerPool
from repro.serving.arrivals import Request
from repro.serving.batcher import NO_BATCHING, DynamicBatcher
from repro.serving.faults import AdmissionController, FaultInjector, NO_ADMISSION, RetryPolicy
from repro.serving.fleet import ChipFleet
from repro.serving.profiling import PROFILER, RunProfile
from repro.serving.report import (
    BatchTable,
    DropRecord,
    FailureRecord,
    RequestTable,
    RetryRecord,
    ServingReport,
)

__all__ = ["ServingSimulator"]

#: Deferred dispatch check: sorts after FREE/ARRIVE/TIMEOUT at the same
#: instant, so simultaneous arrivals (real in replayed traces) are all
#: enqueued before any batch-formation decision at that timestamp.
_DISPATCH = TIMEOUT + 1

#: Fault-process events sort *before* the workload events at the same
#: instant: a failure tied with a batch completion kills the batch (the
#: conservative reading), and a repair tied with an arrival is visible to
#: it.  Negative kinds keep the canonical FREE/ARRIVE/TIMEOUT order intact.
_FAIL = FREE - 2
_REPAIR = FREE - 1


def _assemble_tables(
    req_index: list[int],
    req_arrival: list[float],
    req_batch: list[int],
    req_attempts: list[int] | None,
    b_chip: list[int],
    b_dispatch: list[float],
    b_completion: list[float],
    b_size: list[int],
    b_seq_len: list[int],
    b_energy: list[float],
    req_slo: list[int] | None = None,
    req_deadline: list[float] | None = None,
    b_tier: list[int] | None = None,
) -> tuple[RequestTable, BatchTable]:
    """Build the report tables from the hot loop's column lists.

    Per-request dispatch/completion/chip/size/seq_len are batch-constant,
    so only the batch row index is recorded per request and the rest is
    one fancy-indexed gather here.
    """
    chip = np.asarray(b_chip, dtype=np.int64)
    dispatch = np.asarray(b_dispatch, dtype=np.float64)
    completion = np.asarray(b_completion, dtype=np.float64)
    size = np.asarray(b_size, dtype=np.int64)
    seq_len = np.asarray(b_seq_len, dtype=np.int64)
    batch_of_request = np.asarray(req_batch, dtype=np.int64)
    requests = RequestTable(
        np.asarray(req_index, dtype=np.int64),
        np.asarray(req_arrival, dtype=np.float64),
        dispatch[batch_of_request],
        completion[batch_of_request],
        chip[batch_of_request],
        batch_of_request,
        size[batch_of_request],
        seq_len[batch_of_request],
        np.zeros(len(req_index), dtype=np.int64)
        if req_attempts is None
        else np.asarray(req_attempts, dtype=np.int64),
        None if req_slo is None else np.asarray(req_slo, dtype=np.int64),
        None if req_deadline is None else np.asarray(req_deadline, dtype=np.float64),
    )
    batches = BatchTable(
        np.arange(len(b_chip), dtype=np.int64),
        chip,
        dispatch,
        completion,
        size,
        seq_len,
        np.asarray(b_energy, dtype=np.float64),
        None if b_tier is None else np.asarray(b_tier, dtype=np.int64),
    )
    return requests, batches


def _fleet_cache_counters(fleet: ChipFleet) -> tuple[int, int, int, int, int, int]:
    """Current pricing/template cache counters summed over the fleet.

    Distinct cache objects and tiered models are counted once even when
    chips share them; ``run()`` snapshots before/after and records the
    delta, so per-run numbers stay correct with module-global caches.
    """
    pricing: dict[int, object] = {}
    tiered: dict[int, object] = {}
    for model in fleet.models:
        for m in (model, getattr(model, "base", None)):
            cache = getattr(m, "cache", None)
            if cache is not None and hasattr(cache, "hits"):
                pricing.setdefault(id(cache), cache)
        if hasattr(model, "template_hits"):
            tiered.setdefault(id(model), model)
    return (
        sum(c.hits for c in pricing.values()),
        sum(c.misses for c in pricing.values()),
        sum(m.template_hits for m in tiered.values()),
        sum(m.template_misses for m in tiered.values()),
        sum(m.analytic_dispatches for m in tiered.values()),
        sum(m.executed_dispatches for m in tiered.values()),
    )


def _per_chip_busy(batches: BatchTable, num_chips: int) -> tuple[float, ...]:
    return tuple(
        np.bincount(batches.chip, weights=batches.service_s, minlength=num_chips)
        if len(batches)
        else np.zeros(num_chips)
    )


class ServingSimulator:
    """Event-driven executor of a request stream over a chip fleet.

    ``faults``, ``retry`` and ``admission`` are all optional; passing any
    of them switches the run to the fault-aware path (``retry`` defaults
    to a stock :class:`~repro.serving.faults.RetryPolicy` and ``admission``
    to :data:`~repro.serving.faults.NO_ADMISSION` there).  With none of
    them the healthy path is taken, bit-identical to the pre-fault
    simulator.

    After every run :attr:`last_profile` holds the run's hot-path counters
    (events scheduled/popped, dispatch sweeps, wall time); when the global
    :data:`~repro.serving.profiling.PROFILER` is enabled the counters are
    also collected there.
    """

    def __init__(
        self,
        fleet: ChipFleet,
        batcher: DynamicBatcher = NO_BATCHING,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        admission: AdmissionController | None = None,
        autoscaler=None,
        router=None,
    ) -> None:
        self.fleet = fleet
        self.batcher = batcher
        self.faults = faults
        self.retry = retry
        self.admission = admission
        self.autoscaler = autoscaler
        self.router = router
        self.last_profile: RunProfile | None = None
        if self.router is not None and self.autoscaler is not None:
            raise ValueError(
                "the multi-queue router and the autoscaler cannot be combined "
                "in one run yet: the autoscaler's control plane drains one "
                "fleet-wide queue. Router + autoscaler interaction is tracked "
                "as an open item in ROADMAP.md"
            )
        # the routed loop drains EDF per-queue heaps and runs the fault
        # machinery in one loop, so the exclusion below only binds the
        # global-queue paths
        if self.router is None and self.fault_aware and self.slo_aware:
            raise ValueError(
                "fault injection and the SLO/autoscale control plane cannot "
                "be combined in one run yet: pass either faults/retry/"
                "admission or an EDF batcher/autoscaler, not both. "
                "To study both effects, run two simulators over the same "
                "arrivals — one with faults=..., one with the EDF batcher/"
                "autoscaler — and compare their reports; unifying the two "
                "event loops is tracked as an open item in ROADMAP.md"
            )

    @property
    def fault_aware(self) -> bool:
        """Whether this simulator runs the fault/shedding machinery."""
        return (
            self.faults is not None
            or self.retry is not None
            or self.admission is not None
        )

    @property
    def slo_aware(self) -> bool:
        """Whether runs need the control-plane path (EDF order or autoscaling)."""
        return self.autoscaler is not None or self.batcher.deadline_ordered

    def run(self, requests: Sequence[Request], label: str = "serving") -> ServingReport:
        """Serve every request and report the completed run.

        ``requests`` need not be sorted; they are served in arrival order
        (ties broken by the given order, which arrival generators emit by
        index).  ``label`` names the run in profiler output.
        """
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        ordered = sorted(requests, key=lambda r: r.arrival_s)
        counters = _fleet_cache_counters(self.fleet)
        start = _time.perf_counter()
        if self.router is not None:
            # the routed loop handles healthy, fault-aware, and EDF drains
            # itself: per-chip queues replace both the global FIFO and the
            # control plane's fleet-wide deadline heap
            from repro.serving.routing import run_routed

            report, loop, dispatch_calls = run_routed(
                self.fleet,
                self.batcher,
                self.router,
                ordered,
                faults=self.faults,
                retry=self.retry,
                admission=self.admission,
            )
        elif self.fault_aware:
            report, loop, dispatch_calls = self._run_fault_aware(ordered)
        elif self.slo_aware:
            from repro.serving.slo import run_control_plane

            report, loop, dispatch_calls = run_control_plane(
                self.fleet, self.batcher, self.autoscaler, requests=ordered
            )
        else:
            report, loop, dispatch_calls = self._run_healthy(ordered)
        wall_s = _time.perf_counter() - start
        deltas = tuple(
            after - before
            for after, before in zip(_fleet_cache_counters(self.fleet), counters)
        )
        self.last_profile = RunProfile(
            label=label,
            events_scheduled=loop.events_scheduled,
            events_popped=loop.events_popped,
            dispatch_calls=dispatch_calls,
            num_requests=report.num_requests,
            num_batches=report.num_batches,
            wall_s=wall_s,
            pricing_hits=deltas[0],
            pricing_misses=deltas[1],
            template_hits=deltas[2],
            template_misses=deltas[3],
            analytic_batches=deltas[4],
            executed_batches=deltas[5],
            routed_requests=report.routing.num_routed if report.routing else 0,
            stolen_batches=report.routing.stolen_batches if report.routing else 0,
            peak_queue_depth=report.routing.peak_queue_depth if report.routing else 0,
        )
        PROFILER.record(self.last_profile)
        return report

    def run_closed_loop(
        self, clients, num_requests: int, label: str = "closed-loop"
    ) -> ServingReport:
        """Serve ``num_requests`` issued by closed-loop clients.

        Arrivals react to completions (think -> request -> completion ->
        think), so this always takes the control-plane path — with a FIFO
        batcher and no autoscaler it is the plain machine-repair closed
        queue the theory module cross-validates.  Fault injection is not
        supported on this path.
        """
        if self.fault_aware:
            raise ValueError("closed-loop runs do not support fault injection")
        if self.router is not None:
            raise ValueError(
                "closed-loop runs do not support the multi-queue router: "
                "closed-loop clients react to completions through the "
                "control plane's fleet-wide queue"
            )
        from repro.serving.slo import run_control_plane

        counters = _fleet_cache_counters(self.fleet)
        start = _time.perf_counter()
        report, loop, dispatch_calls = run_control_plane(
            self.fleet,
            self.batcher,
            self.autoscaler,
            clients=clients,
            num_requests=num_requests,
        )
        wall_s = _time.perf_counter() - start
        deltas = tuple(
            after - before
            for after, before in zip(_fleet_cache_counters(self.fleet), counters)
        )
        self.last_profile = RunProfile(
            label=label,
            events_scheduled=loop.events_scheduled,
            events_popped=loop.events_popped,
            dispatch_calls=dispatch_calls,
            num_requests=report.num_requests,
            num_batches=report.num_batches,
            wall_s=wall_s,
            pricing_hits=deltas[0],
            pricing_misses=deltas[1],
            template_hits=deltas[2],
            template_misses=deltas[3],
            analytic_batches=deltas[4],
            executed_batches=deltas[5],
        )
        PROFILER.record(self.last_profile)
        return report

    # ------------------------------------------------------------------ #
    # healthy path (no faults, no admission control)
    # ------------------------------------------------------------------ #
    def _run_healthy(
        self, ordered: list[Request]
    ) -> tuple[ServingReport, EventLoop, int]:
        loop = EventLoop()
        chips = ServerPool("chips", self.fleet.num_chips, speedups=self.fleet.speedups)
        for request in ordered:
            loop.schedule(request.arrival_s, ARRIVE, request)

        req_index: list[int] = []
        req_arrival: list[float] = []
        req_batch: list[int] = []
        req_slo: list[int] = []
        req_deadline: list[float] = []
        b_chip: list[int] = []
        b_dispatch: list[float] = []
        b_completion: list[float] = []
        b_size: list[int] = []
        b_seq_len: list[int] = []
        b_energy: list[float] = []
        b_tier: list[int] = []
        timed_wait = self.batcher.max_wait_s > 0.0
        queued: set[int] = set()  # indexes awaiting dispatch (timeout liveness)
        dispatch_calls = 0

        # hot-loop local bindings: attribute loads cost in a loop that runs
        # once per event over millions of events
        schedule = loop.schedule
        batcher_ready = self.batcher.ready
        batcher_batch_of = self.batcher.batch_of
        batch_latency_s = self.fleet.batch_latency_s
        batch_energy_j = self.fleet.batch_energy_j
        batch_tier = self.fleet.batch_tier
        max_wait_s = self.batcher.max_wait_s

        def dispatch(time: float, force: bool = False) -> None:
            """Release ready batches to idle chips until either runs out.

            ``force`` releases the first batch even if the policy says the
            head is not quite mature: it is set by a TIMEOUT event whose
            request is still queued, where ``(arrival + max_wait) - arrival``
            may round below ``max_wait`` and strand the queue forever.
            """
            while True:
                depth = chips.queue_depth()
                oldest = chips.peek(0)
                if oldest is None:
                    return
                if not force and not batcher_ready(depth, time - oldest.arrival_s):
                    return
                chip = chips.idle_server()
                if chip is None:
                    return
                force = False  # one forced batch per timeout
                batch = [chips.pop(0) for _ in range(batcher_batch_of(depth))]
                queued.difference_update(r.index for r in batch)
                seq_len = max(r.seq_len for r in batch)
                service = batch_latency_s(chip, len(batch), seq_len)
                # tier must be read before the chip's model prices another
                # batch — chips may share one model object
                tier = batch_tier(chip)
                completion = time + service
                chips.acquire(chip)
                chips.occupy(service)
                schedule(completion, FREE, chip)
                batch_row = len(b_chip)
                b_chip.append(chip)
                b_dispatch.append(time)
                b_completion.append(completion)
                b_size.append(len(batch))
                b_seq_len.append(seq_len)
                b_energy.append(batch_energy_j(chip, len(batch), seq_len))
                b_tier.append(tier)
                for r in batch:
                    req_index.append(r.index)
                    req_arrival.append(r.arrival_s)
                    req_batch.append(batch_row)
                    req_slo.append(r.slo_class)
                    req_deadline.append(r.deadline_s)

        while loop:
            time, kind, data = loop.pop()
            if kind == ARRIVE:
                request = data[0]
                chips.enqueue(0, request)
                queued.add(request.index)
                if timed_wait:
                    # lazy maturity timer: when it fires the request either
                    # already left in a batch (no-op) or unblocks a partial one
                    schedule(time + max_wait_s, TIMEOUT, request.index)
                schedule(time, _DISPATCH)
            elif kind == FREE:
                chips.release(data[0])
                schedule(time, _DISPATCH)
            elif kind == TIMEOUT:
                if data[0] in queued:
                    schedule(time, _DISPATCH, data[0])
            else:  # _DISPATCH
                # force only if the matured request is *still* waiting now
                dispatch_calls += 1
                dispatch(time, force=bool(data) and data[0] in queued)

        requests, batches = _assemble_tables(
            req_index, req_arrival, req_batch, None,
            b_chip, b_dispatch, b_completion, b_size, b_seq_len, b_energy,
            req_slo, req_deadline, b_tier,
        )
        report = ServingReport(
            num_chips=self.fleet.num_chips,
            requests=requests,
            batches=batches,
            chip_busy_s=_per_chip_busy(batches, self.fleet.num_chips),
            queue_peak=chips.queue_peak,
            chip_idle_power_w=tuple(
                self.fleet.idle_power_w(chip) for chip in range(self.fleet.num_chips)
            ),
        )
        return report, loop, dispatch_calls

    # ------------------------------------------------------------------ #
    # fault-aware path (failures, retries, admission control)
    # ------------------------------------------------------------------ #
    def _run_fault_aware(
        self, ordered: list[Request]
    ) -> tuple[ServingReport, EventLoop, int]:
        num_chips = self.fleet.num_chips
        retry = self.retry if self.retry is not None else RetryPolicy()
        admission = self.admission if self.admission is not None else NO_ADMISSION
        deadline_on = retry.deadline_s is not None
        session = self.faults.session(num_chips) if self.faults is not None else None

        loop = EventLoop()
        chips = ServerPool("chips", num_chips, speedups=self.fleet.speedups)
        for request in ordered:
            loop.schedule(request.arrival_s, ARRIVE, request)
        if session is not None:
            for chip in range(num_chips):
                loop.schedule(session.time_to_failure_s(chip), _FAIL, chip)

        req_index: list[int] = []
        req_arrival: list[float] = []
        req_batch: list[int] = []
        req_attempts: list[int] = []
        req_slo: list[int] = []
        req_deadline: list[float] = []
        b_chip: list[int] = []
        b_dispatch: list[float] = []
        b_completion: list[float] = []
        b_size: list[int] = []
        b_seq_len: list[int] = []
        b_energy: list[float] = []
        b_tier: list[int] = []
        shed: list[DropRecord] = []
        abandoned: list[DropRecord] = []
        retries: list[RetryRecord] = []
        failures: list[FailureRecord] = []
        attempts: dict[int, int] = {}  # index -> failed service attempts
        timed_wait = self.batcher.max_wait_s > 0.0
        queued: set[int] = set()
        dispatch_calls = 0
        # chip -> the batch it is serving: dict(epoch, members, dispatch_s,
        # completion_s, seq_len, energy_j); records are written only when a
        # batch *completes*, so a killed batch leaves no request records
        inflight: list[dict | None] = [None] * num_chips
        epoch = [0] * num_chips
        failed = [False] * num_chips
        # offered requests not yet completed / shed / abandoned: when this
        # reaches 0 the traffic is resolved and fault events stop renewing,
        # letting the event heap drain
        outstanding = len(ordered)

        def expired(request: Request, now: float) -> bool:
            return deadline_on and now > retry.deadline_of(request.arrival_s)

        def shed_from_queue(request: Request, time: float) -> None:
            nonlocal outstanding
            queued.discard(request.index)
            shed.append(
                DropRecord(
                    index=request.index,
                    time_s=time,
                    reason="deadline",
                    attempts=attempts.get(request.index, 0),
                )
            )
            outstanding -= 1

        def dispatch(time: float, force: bool = False) -> None:
            """Health- and deadline-aware batch release (see healthy path)."""
            while True:
                oldest = chips.peek(0)
                if oldest is None:
                    return
                # head-of-line deadline shedding: an expired head must not
                # mature a batch or burn chip time nobody is waiting for
                if admission.shed_expired and expired(oldest, time):
                    chips.pop(0)
                    shed_from_queue(oldest, time)
                    continue
                depth = chips.queue_depth()
                if not force and not self.batcher.ready(depth, time - oldest.arrival_s):
                    return
                chip = chips.idle_server()  # never offers a failed chip
                if chip is None:
                    return
                force = False
                take = self.batcher.batch_of(depth)
                if admission.degraded_max_batch is not None and any(failed):
                    take = min(take, admission.degraded_max_batch)
                members: list[Request] = []
                while len(members) < take:
                    request = chips.pop(0)
                    if request is None:
                        break
                    if admission.shed_expired and expired(request, time):
                        shed_from_queue(request, time)
                        continue
                    members.append(request)
                if not members:
                    continue  # everything popped was expired; re-evaluate
                queued.difference_update(r.index for r in members)
                seq_len = max(r.seq_len for r in members)
                service = self.fleet.batch_latency_s(chip, len(members), seq_len)
                completion = time + service
                chips.acquire(chip)
                chips.occupy(service)
                epoch[chip] += 1
                inflight[chip] = {
                    "epoch": epoch[chip],
                    "members": members,
                    "dispatch_s": time,
                    "completion_s": completion,
                    "seq_len": seq_len,
                    "energy_j": self.fleet.batch_energy_j(chip, len(members), seq_len),
                    "tier": self.fleet.batch_tier(chip),
                }
                loop.schedule(completion, FREE, chip, epoch[chip])

        while loop:
            time, kind, data = loop.pop()
            if kind == ARRIVE:
                request = data[0]
                if not admission.admits(chips.queue_depth()):
                    shed.append(
                        DropRecord(
                            index=request.index,
                            time_s=time,
                            reason="queue_full",
                            attempts=attempts.get(request.index, 0),
                        )
                    )
                    outstanding -= 1
                    continue
                chips.enqueue(0, request)
                queued.add(request.index)
                if timed_wait:
                    loop.schedule(
                        time + self.batcher.max_wait_s, TIMEOUT, request.index
                    )
                loop.schedule(time, _DISPATCH)
            elif kind == FREE:
                chip, free_epoch = data
                info = inflight[chip]
                if info is None or info["epoch"] != free_epoch:
                    continue  # completion of a batch a failure already killed
                inflight[chip] = None
                chips.release(chip)
                batch_row = len(b_chip)
                b_chip.append(chip)
                b_dispatch.append(info["dispatch_s"])
                b_completion.append(time)
                b_size.append(len(info["members"]))
                b_seq_len.append(info["seq_len"])
                b_energy.append(info["energy_j"])
                b_tier.append(info["tier"])
                for r in info["members"]:
                    req_index.append(r.index)
                    req_arrival.append(r.arrival_s)
                    req_batch.append(batch_row)
                    req_attempts.append(attempts.get(r.index, 0))
                    req_slo.append(r.slo_class)
                    req_deadline.append(r.deadline_s)
                outstanding -= len(info["members"])
                loop.schedule(time, _DISPATCH)
            elif kind == TIMEOUT:
                if data[0] in queued:
                    loop.schedule(time, _DISPATCH, data[0])
            elif kind == _FAIL:
                chip = data[0]
                if outstanding == 0:
                    continue  # traffic resolved: let the failure process die out
                failed[chip] = True
                chips.set_online(chip, False)
                repaired_s = time + session.downtime_s(
                    chip, self.fleet.reprogram_latency_s(chip)
                )
                lost = 0
                wasted = 0.0
                info = inflight[chip]
                if info is not None:
                    # the in-flight batch dies with the chip
                    inflight[chip] = None
                    chips.release(chip)
                    lost = len(info["members"])
                    service = info["completion_s"] - info["dispatch_s"]
                    progress = (time - info["dispatch_s"]) / service if service > 0 else 1.0
                    wasted = info["energy_j"] * progress
                    for request in info["members"]:
                        attempts[request.index] = attempts.get(request.index, 0) + 1
                        attempt = attempts[request.index]
                        if attempt >= retry.max_attempts:
                            abandoned.append(
                                DropRecord(
                                    index=request.index,
                                    time_s=time,
                                    reason="retries_exhausted",
                                    attempts=attempt,
                                )
                            )
                            outstanding -= 1
                            continue
                        reenqueue_s = time + retry.backoff_s(
                            attempt, session.jitter_rng if session else None
                        )
                        if deadline_on and reenqueue_s > retry.deadline_of(
                            request.arrival_s
                        ):
                            # deadline-aware backoff: a retry that cannot
                            # complete in time is abandoned, not queued
                            abandoned.append(
                                DropRecord(
                                    index=request.index,
                                    time_s=time,
                                    reason="deadline",
                                    attempts=attempt,
                                )
                            )
                            outstanding -= 1
                            continue
                        retries.append(
                            RetryRecord(
                                index=request.index,
                                attempt=attempt,
                                failure_s=time,
                                reenqueue_s=reenqueue_s,
                            )
                        )
                        loop.schedule(reenqueue_s, ARRIVE, request)
                failures.append(
                    FailureRecord(
                        chip=chip,
                        fail_s=time,
                        repaired_s=repaired_s,
                        lost_requests=lost,
                        wasted_energy_j=wasted,
                    )
                )
                loop.schedule(repaired_s, _REPAIR, chip)
            elif kind == _REPAIR:
                chip = data[0]
                failed[chip] = False
                chips.set_online(chip, True)
                if outstanding > 0:
                    loop.schedule(time + session.time_to_failure_s(chip), _FAIL, chip)
                    loop.schedule(time, _DISPATCH)
            else:  # _DISPATCH
                dispatch_calls += 1
                dispatch(time, force=bool(data) and data[0] in queued)

        requests, batches = _assemble_tables(
            req_index, req_arrival, req_batch, req_attempts,
            b_chip, b_dispatch, b_completion, b_size, b_seq_len, b_energy,
            req_slo, req_deadline, b_tier,
        )
        report = ServingReport(
            num_chips=num_chips,
            requests=requests,
            batches=batches,
            chip_busy_s=_per_chip_busy(batches, num_chips),
            queue_peak=chips.queue_peak,
            chip_idle_power_w=tuple(
                self.fleet.idle_power_w(chip) for chip in range(num_chips)
            ),
            shed=tuple(shed),
            abandoned=tuple(abandoned),
            retries=tuple(retries),
            failures=tuple(failures),
            deadline_s=retry.deadline_s,
            faults_enabled=True,
        )
        return report, loop, dispatch_calls
