"""E5 — Table I: softmax engine area and power vs the CMOS baselines.

The paper's Table I (BERT-base, CNEWS, sequence length 128, 8-bit engine):

============== ======= =======
Design          Area    Power
============== ======= =======
Softermax       0.33x   0.12x
Ours (8-bit)    0.06x   0.05x
============== ======= =======

(ratios relative to the baseline CMOS softmax).  The benchmark rebuilds all
three units from the shared component models and reports the reproduced
ratios; the assertions check the orderings and the order of magnitude rather
than the exact figures (see EXPERIMENTS.md for the side-by-side numbers).
"""

from __future__ import annotations

from repro.baselines.cmos_softmax import CMOSSoftmaxUnit
from repro.baselines.softermax import SoftermaxUnit
from repro.core.config import SoftmaxEngineConfig
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.utils.fixed_point import CNEWS_FORMAT

import pytest

from conftest import record

SEQ_LEN = 128


def _build_units():
    baseline = CMOSSoftmaxUnit()
    softermax = SoftermaxUnit()
    star = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    return baseline, softermax, star


@pytest.mark.smoke
def test_bench_table1_area_power(benchmark, paper_values):
    """Area / power of the three softmax designs and their Table-I ratios."""
    baseline, softermax, star = benchmark(_build_units)

    star_area_ratio = star.area_um2() / baseline.area_um2
    star_power_ratio = star.power_w(SEQ_LEN) / baseline.power_w
    softermax_area_ratio = softermax.area_um2 / baseline.area_um2
    softermax_power_ratio = softermax.power_w / baseline.power_w

    record(
        benchmark,
        baseline_area_um2=round(baseline.area_um2, 1),
        baseline_power_mw=round(baseline.power_w * 1e3, 3),
        softermax_area_um2=round(softermax.area_um2, 1),
        softermax_power_mw=round(softermax.power_w * 1e3, 3),
        star_area_um2=round(star.area_um2(), 1),
        star_power_mw=round(star.power_w(SEQ_LEN) * 1e3, 3),
        star_area_ratio=round(star_area_ratio, 4),
        star_power_ratio=round(star_power_ratio, 4),
        softermax_area_ratio=round(softermax_area_ratio, 4),
        softermax_power_ratio=round(softermax_power_ratio, 4),
        paper_star_ratios=(paper_values["table1_star_area_ratio"], paper_values["table1_star_power_ratio"]),
        paper_softermax_ratios=(
            paper_values["table1_softermax_area_ratio"],
            paper_values["table1_softermax_power_ratio"],
        ),
    )

    # Table I orderings: STAR < Softermax < baseline in both area and power
    assert star.area_um2() < softermax.area_um2 < baseline.area_um2
    assert star.power_w(SEQ_LEN) < softermax.power_w < baseline.power_w
    # magnitudes: STAR's engine is a small fraction of the baseline
    assert star_area_ratio < 0.15
    assert star_power_ratio < 0.10
    assert softermax_area_ratio < 0.5


def test_bench_star_softmax_row_energy(benchmark):
    """Per-row energy/latency ledger of the 8-bit engine at sequence length 128."""
    star = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))

    ledger = benchmark(star.row_ledger, SEQ_LEN)

    record(
        benchmark,
        row_energy_pj=round(star.row_energy_j(SEQ_LEN) * 1e12, 2),
        row_latency_us=round(star.row_latency_s(SEQ_LEN) * 1e6, 3),
        per_component={name: round(energy * 1e12, 2) for name, energy, _, _ in ledger.breakdown()},
    )
    assert ledger.total_energy_j > 0
