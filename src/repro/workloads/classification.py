"""Synthetic text-classification task for accuracy-vs-precision experiments.

The paper's bit-width table is justified by "high model accuracy" on three
text-classification datasets.  With no trained BERT or original data
available offline, the accuracy experiments use a deterministic synthetic
task with the same *structure*: sequences of token embeddings are encoded by
a small transformer, mean-pooled and classified by a linear head, and the
label of each example is defined as the prediction of the *float-softmax*
model (a teacher-consistency task).  Accuracy of a quantised-softmax model
is then its agreement with those reference labels — exactly the degradation
metric the bit-width analysis needs, with 100 % accuracy attainable by
construction when no quantisation error is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.encoder import TransformerEncoder
from repro.nn.layers import Linear
from repro.nn.softmax_models import ReferenceSoftmax
from repro.workloads.scores import ScoreProfile

__all__ = ["ClassificationTask", "ClassificationResult"]


@dataclass(frozen=True)
class ClassificationResult:
    """Outcome of evaluating one softmax implementation on the task."""

    accuracy: float
    agreement: float
    num_examples: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {self.accuracy}")
        if not 0.0 <= self.agreement <= 1.0:
            raise ValueError(f"agreement must be in [0, 1], got {self.agreement}")


class ClassificationTask:
    """Teacher-consistency classification benchmark with swappable softmax.

    Parameters
    ----------
    profile:
        Dataset score profile; its range scales the encoder inputs so the
        attention scores exercise the same dynamic range as the synthetic
        score generator.
    num_examples:
        Number of sequences in the evaluation set.
    seq_len:
        Sequence length (defaults to the profile's typical length).
    num_classes:
        Number of output classes.
    hidden / num_heads / num_layers / intermediate:
        Encoder topology; defaults are a slice of BERT-base small enough to
        evaluate quickly yet structurally identical.
    seed:
        Controls both the model weights and the evaluation data.
    """

    def __init__(
        self,
        profile: ScoreProfile,
        num_examples: int = 64,
        seq_len: int | None = None,
        num_classes: int = 4,
        hidden: int = 64,
        num_heads: int = 4,
        num_layers: int = 2,
        intermediate: int = 128,
        seed: int = 0,
    ) -> None:
        if num_examples < 1:
            raise ValueError(f"num_examples must be >= 1, got {num_examples}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        self.profile = profile
        self.num_examples = num_examples
        self.seq_len = seq_len if seq_len is not None else profile.typical_seq_len
        self.num_classes = num_classes
        self.hidden = hidden
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.intermediate = intermediate
        self.seed = seed

        rng = np.random.default_rng(seed)
        # input scale chosen so attention scores span roughly the profile range
        head_dim = hidden // num_heads
        self._input_scale = np.sqrt(np.sqrt(head_dim) * profile.score_range / head_dim)
        self._inputs = rng.normal(
            0.0, self._input_scale, size=(num_examples, self.seq_len, hidden)
        )
        self._head_rng_seed = int(rng.integers(0, 2**31 - 1))
        self._reference_labels: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # model construction
    # ------------------------------------------------------------------ #
    def _build_model(
        self, softmax_fn: Callable[[np.ndarray], np.ndarray]
    ) -> tuple[TransformerEncoder, Linear]:
        rng = np.random.default_rng(self.seed + 1)
        encoder = TransformerEncoder(
            self.num_layers,
            self.hidden,
            self.num_heads,
            self.intermediate,
            rng=rng,
            softmax_fn=softmax_fn,
        )
        head = Linear(self.hidden, self.num_classes, rng=np.random.default_rng(self._head_rng_seed))
        return encoder, head

    def _predict(self, softmax_fn: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        encoder, head = self._build_model(softmax_fn)
        encoded = encoder(self._inputs)
        pooled = encoded.mean(axis=1)
        logits = head(pooled)
        return np.argmax(logits, axis=-1)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def reference_labels(self) -> np.ndarray:
        """Labels defined by the float-softmax teacher (computed once, cached)."""
        if self._reference_labels is None:
            self._reference_labels = self._predict(ReferenceSoftmax())
        return self._reference_labels.copy()

    def evaluate(self, softmax_fn: Callable[[np.ndarray], np.ndarray]) -> ClassificationResult:
        """Accuracy of a model whose attention softmax is ``softmax_fn``."""
        labels = self.reference_labels()
        predictions = self._predict(softmax_fn)
        agreement = float(np.mean(predictions == labels))
        return ClassificationResult(
            accuracy=agreement, agreement=agreement, num_examples=self.num_examples
        )

    def accuracy_drop(self, softmax_fn: Callable[[np.ndarray], np.ndarray]) -> float:
        """Accuracy degradation (in fraction) relative to the float teacher."""
        return 1.0 - self.evaluate(softmax_fn).accuracy
