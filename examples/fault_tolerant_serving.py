"""Fault-tolerant serving: chip failures, retries, and load shedding.

Run with:  python examples/fault_tolerant_serving.py

Real fleets lose chips.  This script injects per-chip MTBF/MTTR
failure-repair processes into the serving simulator — repair time is not a
magic constant but the chip's full-model operand reprogramming cost from
the batch-aware cost model, since a failed RRAM chip's conductance state
is lost — and shows the two ways a fleet can respond:

1. an unprotected queue that retries everything and lets the backlog grow,
2. deadline shedding + a bounded queue + a degraded-mode batch cap, which
   trades a few shed requests for bounded tail latency.

Both arms replay identical traffic and identical failure seeds, so every
difference in the reports is policy, not noise.
"""

from __future__ import annotations

from repro.serving import (
    AdmissionController,
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    PoissonArrivals,
    RetryPolicy,
    ServingSimulator,
    StarServiceModel,
)


def main() -> None:
    model = StarServiceModel()
    fleet = ChipFleet(model, num_chips=4)
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)

    reprogram_ms = fleet.reprogram_latency_s(0) * 1e3
    print(
        "Repairing a failed chip re-programs every weight operand of the "
        f"model: {reprogram_ms:.3f} ms of tile-bank writes (BERT-base)."
    )

    # Offered load: 90% of the fleet's amortised batch-8 capacity.
    capacity = 4 * 8 / model.batch_latency_s(8, 128)
    rate = 0.9 * capacity
    requests = PoissonArrivals(rate_rps=rate, seq_len=128, seed=0).generate(8000)

    # Failure process sized for ~10% steady-state capacity loss per chip.
    repair_s = fleet.reprogram_latency_s(0)
    faults = FaultInjector.for_capacity_loss(
        0.10, repair_s=repair_s, detection_s=0.05, seed=7
    )
    print(
        f"\nInjecting failures: MTBF {faults.mtbf_s * 1e3:.0f} ms, "
        f"mean downtime {faults.mean_downtime_s(repair_s) * 1e3:.1f} ms, "
        f"steady-state availability {faults.steady_state_availability(repair_s):.1%}"
    )

    # 0. the fault-free reference
    report = ServingSimulator(fleet, batcher).run(requests)
    print(f"\n--- fault-free baseline ({rate:.0f} req/s offered) ---")
    print(report.format_table())

    # 1. failures + retries on an unprotected queue
    retry = RetryPolicy(max_attempts=5, backoff_base_s=2e-3, jitter=0.25)
    report = ServingSimulator(fleet, batcher, faults=faults, retry=retry).run(requests)
    print("\n--- faults, unprotected queue (retry only) ---")
    print(report.format_table())

    # 2. failures + deadline shedding + bounded queue + degraded batch cap
    deadline = 0.25
    retry = RetryPolicy(
        max_attempts=3, backoff_base_s=2e-3, jitter=0.25, deadline_s=deadline
    )
    admission = AdmissionController(
        max_queue_depth=int(deadline * rate),
        shed_expired=True,
        degraded_max_batch=4,
    )
    report = ServingSimulator(
        fleet, batcher, faults=faults, retry=retry, admission=admission
    ).run(requests)
    print("\n--- faults, deadline shedding + bounded queue (250 ms SLO) ---")
    print(report.format_table())


if __name__ == "__main__":
    main()
