"""Write-and-verify programming model for RRAM arrays.

Crossbar contents in STAR are written once (weights, CAM codewords, LUT
entries are all static for a given model and precision), so programming cost
is a one-time overhead rather than part of the steady-state pipeline.  The
model here estimates how many program/verify iterations are needed to reach
a target conductance tolerance given the device's programming variation, and
from that the total programming time and energy of an array — numbers the
ablation benchmarks report to show the overhead is negligible compared with
inference time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.rram.device import RRAMDevice, RRAMDeviceConfig
from repro.utils.validation import require_in_range, require_positive

__all__ = ["ProgrammingConfig", "ProgrammingResult", "WriteVerifyProgrammer"]


@dataclass(frozen=True)
class ProgrammingConfig:
    """Parameters of the write-verify loop.

    Attributes
    ----------
    tolerance:
        Acceptable relative conductance error after programming.
    per_pulse_sigma:
        Relative conductance error introduced by a single blind pulse.
        Each verify iteration roughly halves the residual error.
    max_iterations:
        Upper bound on program/verify iterations per cell.
    verify_read_s:
        Duration of the verify read after each pulse.
    """

    tolerance: float = 0.02
    per_pulse_sigma: float = 0.15
    max_iterations: int = 16
    verify_read_s: float = 10.0e-9

    def __post_init__(self) -> None:
        require_in_range(self.tolerance, 1e-6, 1.0, "tolerance")
        require_in_range(self.per_pulse_sigma, 1e-6, 1.0, "per_pulse_sigma")
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        require_positive(self.verify_read_s, "verify_read_s")


@dataclass(frozen=True)
class ProgrammingResult:
    """Summary of programming one array."""

    num_cells: int
    iterations_per_cell: int
    total_latency_s: float
    total_energy_j: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProgrammingResult(cells={self.num_cells}, "
            f"iters/cell={self.iterations_per_cell}, "
            f"latency={self.total_latency_s:.3e}s, energy={self.total_energy_j:.3e}J)"
        )


class WriteVerifyProgrammer:
    """Estimates the cost of programming an RRAM array with write-verify."""

    def __init__(
        self,
        device: RRAMDeviceConfig | None = None,
        config: ProgrammingConfig | None = None,
    ) -> None:
        self.device = RRAMDevice(device or RRAMDeviceConfig())
        self.config = config or ProgrammingConfig()

    def iterations_required(self) -> int:
        """Program/verify iterations needed to reach the target tolerance.

        Each iteration reduces the residual relative error by roughly 2x
        (half-interval targeting), so the count is
        ``ceil(log2(per_pulse_sigma / tolerance))`` clamped to at least one
        pulse and at most ``max_iterations``.
        """
        cfg = self.config
        if cfg.per_pulse_sigma <= cfg.tolerance:
            return 1
        needed = math.ceil(math.log2(cfg.per_pulse_sigma / cfg.tolerance)) + 1
        return int(min(max(needed, 1), cfg.max_iterations))

    def program_array(self, rows: int, cols: int, row_parallel: bool = True) -> ProgrammingResult:
        """Cost of programming a ``rows x cols`` array.

        Parameters
        ----------
        rows / cols:
            Array dimensions (physical cells).
        row_parallel:
            Whether all cells of a row are programmed simultaneously (the
            usual assumption); otherwise programming is fully serial.
        """
        if rows < 1 or cols < 1:
            raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
        iters = self.iterations_required()
        num_cells = rows * cols
        pulse_time = self.device.config.write_pulse_s + self.config.verify_read_s
        if row_parallel:
            total_latency = rows * iters * pulse_time
        else:
            total_latency = num_cells * iters * pulse_time
        verify_energy = (
            self.device.config.read_voltage_v**2
            / self.device.config.r_on_ohm
            * self.config.verify_read_s
        )
        per_cell_energy = iters * (self.device.config.write_energy_j + verify_energy)
        total_energy = num_cells * per_cell_energy
        return ProgrammingResult(
            num_cells=num_cells,
            iterations_per_cell=iters,
            total_latency_s=total_latency,
            total_energy_j=total_energy,
        )

    def achieved_conductance(
        self, target: np.ndarray, seed: int = 0
    ) -> np.ndarray:
        """Sample the conductances achieved after write-verify.

        The residual error is Gaussian with relative sigma equal to the
        configured tolerance (the loop stops once inside the tolerance band).
        """
        rng = np.random.default_rng(seed)
        arr = np.asarray(target, dtype=np.float64)
        residual = rng.normal(0.0, self.config.tolerance, size=arr.shape)
        g_min = self.device.config.g_min_s
        g_max = self.device.config.g_max_s
        return np.clip(arr * (1.0 + residual), g_min, g_max)
