"""Design-space exploration around the STAR accelerator.

Run with:  python examples/design_space_exploration.py

Reproduces the Fig. 3 comparison against the GPU, PipeLayer and
ReTransformer baselines, then explores two of STAR's own design knobs:

* the number of parallel RRAM softmax engines (throughput vs power/area);
* the pipeline granularity (vector vs operand), isolating the contribution
  of the fine-grained pipeline to the overall gain.
"""

from __future__ import annotations

from repro.analysis import EfficiencyComparison
from repro.core import PipelineConfig, STARAccelerator, STARConfig
from repro.nn import BertWorkload
from repro.utils import format_si


def figure3_comparison(workload: BertWorkload) -> None:
    print("=== Fig. 3: computing-efficiency comparison (BERT-base, seq 128) ===")
    results = EfficiencyComparison(workload=workload).run()
    print(results.table.format_table(reference="Titan RTX"))
    print()
    print(f"STAR efficiency          : {results.star_efficiency:8.2f} GOPs/s/W (paper 612.66)")
    print(f"gain over GPU            : {results.gain_over_gpu:8.2f}x        (paper 30.63x)")
    print(f"gain over PipeLayer      : {results.gain_over_pipelayer:8.2f}x        (paper 4.32x)")
    print(f"gain over ReTransformer  : {results.gain_over_retransformer:8.2f}x        (paper 1.31x)")
    print()


def softmax_engine_count_sweep(workload: BertWorkload) -> None:
    print("=== Design knob 1: number of parallel softmax engines ===")
    print(f"{'engines':>8} {'latency':>12} {'power (W)':>10} {'GOPs/s/W':>10}")
    for count in (8, 16, 32, 64, 128):
        star = STARAccelerator(num_softmax_engines=count)
        report = star.cost_report(workload)
        print(
            f"{count:>8d} {format_si(report.latency_s, 's'):>12} "
            f"{report.power_w:>10.2f} {report.computing_efficiency_gops_per_watt:>10.1f}"
        )
    print()


def pipeline_granularity_sweep(workload: BertWorkload) -> None:
    print("=== Design knob 2: pipeline granularity ===")
    for granularity in ("operand", "vector"):
        config = STARConfig(pipeline=PipelineConfig(granularity=granularity))
        star = STARAccelerator(config)
        report = star.cost_report(workload)
        print(
            f"{granularity:>8}-grained : latency {format_si(report.latency_s, 's'):>10}, "
            f"efficiency {report.computing_efficiency_gops_per_watt:7.1f} GOPs/s/W"
        )
    print("(the vector-grained schedule is STAR's; operand-grained mimics prior work)")


def main() -> None:
    workload = BertWorkload(seq_len=128)
    figure3_comparison(workload)
    softmax_engine_count_sweep(workload)
    pipeline_granularity_sweep(workload)


if __name__ == "__main__":
    main()
