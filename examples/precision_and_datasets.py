"""Reproduce the Section II precision analysis across the three datasets.

Run with:  python examples/precision_and_datasets.py

Walks through the workflow the paper uses to size the softmax engine:

1. analyse the attention-score dynamic range of each dataset profile
   (CNEWS / MRPC / CoLA) to fix the integer bits;
2. sweep the fractional bits until the softmax distortion budget is met;
3. confirm the chosen formats keep classification accuracy at the float
   level on the synthetic teacher-consistency task;
4. show what the formats mean for the engine's area and power.
"""

from __future__ import annotations

from repro.analysis import AccuracyAnalyzer, BitwidthAnalyzer
from repro.core import RRAMSoftmaxEngine, SoftmaxEngineConfig
from repro.nn import FixedPointSoftmax, ReferenceSoftmax
from repro.workloads import DATASET_PROFILES, ClassificationTask


def main() -> None:
    print("=== 1-2. Data-range and fractional-bit analysis (paper Section II) ===")
    analyzer = BitwidthAnalyzer()
    requirements = analyzer.analyze_all(DATASET_PROFILES)
    paper = {"CNEWS": "8 (6i+2f)", "MRPC": "9 (6i+3f)", "CoLA": "7 (5i+2f)"}
    print(f"{'dataset':<8} {'observed range':>15} {'derived format':>16} {'paper':>12}")
    for requirement in requirements:
        derived = f"{requirement.total_bits} ({requirement.integer_bits}i+{requirement.frac_bits}f)"
        print(
            f"{requirement.dataset:<8} {requirement.observed_range:>15.2f} "
            f"{derived:>16} {paper[requirement.dataset]:>12}"
        )

    print("\n=== 3. Accuracy at the chosen formats (teacher-consistency task) ===")
    accuracy = AccuracyAnalyzer(num_rows=64)
    for requirement in requirements:
        profile = DATASET_PROFILES[requirement.dataset]
        task = ClassificationTask(profile, num_examples=48, seq_len=32, seed=3)
        float_acc = task.evaluate(ReferenceSoftmax()).accuracy
        fixed_acc = task.evaluate(FixedPointSoftmax(requirement.fmt)).accuracy
        fidelity = accuracy.fidelity(FixedPointSoftmax(requirement.fmt), profile, seq_len=64)
        print(
            f"{requirement.dataset:<8} float acc {float_acc * 100:6.2f}%   "
            f"{requirement.total_bits}-bit acc {fixed_acc * 100:6.2f}%   "
            f"mean KL {fidelity.mean_kl:.2e}   max |err| {fidelity.max_abs_error:.4f}"
        )

    print("\n=== 4. What the format means for the engine (Table I inputs) ===")
    print(f"{'dataset':<8} {'format':>10} {'area (um^2)':>14} {'power (mW)':>12} {'row latency (us)':>18}")
    for requirement in requirements:
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=requirement.fmt))
        seq_len = DATASET_PROFILES[requirement.dataset].typical_seq_len
        print(
            f"{requirement.dataset:<8} {str(requirement.fmt):>10} {engine.area_um2():>14.0f} "
            f"{engine.power_w(seq_len) * 1e3:>12.3f} {engine.row_latency_s(seq_len) * 1e6:>18.3f}"
        )


if __name__ == "__main__":
    main()
