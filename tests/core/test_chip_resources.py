"""Tests for ChipResources, whole-model executed schedules and request timing."""

from __future__ import annotations

import pytest

from repro.core.accelerator import ChipResources, STARAccelerator
from repro.core.config import MatMulEngineConfig, STARConfig
from repro.core.scheduler import StageJitter
from repro.nn.bert import BertConfig, BertWorkload


class TestChipResources:
    def test_accelerator_delegates_to_resources(self):
        star = STARAccelerator()
        assert star.power_w(128) == pytest.approx(star.resources.power_w(128))
        assert star.area_mm2() == pytest.approx(star.resources.area_mm2())
        assert star.matmul_engine is star.resources.matmul_engine
        assert star.softmax_engine is star.resources.softmax_engine

    def test_shared_resources_between_accelerators(self):
        resources = ChipResources(num_softmax_engines=16)
        a = STARAccelerator(resources=resources)
        b = STARAccelerator(resources=resources, schedule="executed")
        assert a.matmul_engine is b.matmul_engine
        assert a.num_softmax_engines == b.num_softmax_engines == 16

    def test_conflicting_config_and_resources_rejected(self):
        resources = ChipResources()
        with pytest.raises(ValueError):
            STARAccelerator(config=STARConfig(), resources=resources)

    def test_conflicting_engines_or_overhead_with_resources_rejected(self):
        from repro.arch.system import SystemOverheadModel

        resources = ChipResources(num_softmax_engines=16)
        with pytest.raises(ValueError):
            STARAccelerator(num_softmax_engines=32, resources=resources)
        with pytest.raises(ValueError):
            STARAccelerator(system_overhead=SystemOverheadModel(), resources=resources)
        # restating the resources' own values is not a conflict
        star = STARAccelerator(num_softmax_engines=16, resources=resources)
        assert star.num_softmax_engines == 16

    def test_executor_matches_workload_allocation(self):
        resources = ChipResources(STARConfig(matmul=MatMulEngineConfig(num_tiles=24)))
        workload = BertWorkload(seq_len=128)
        executor = resources.executor(workload)
        assert executor.streams == resources.attention_streams(12, 1) == 12
        assert executor.softmax_engines == resources.num_softmax_engines

    def test_invalid_engine_count(self):
        with pytest.raises(ValueError):
            ChipResources(num_softmax_engines=0)


class TestModelSchedule:
    def test_matches_scaled_single_layer_without_jitter(self):
        star = STARAccelerator(schedule="executed")
        workload = BertWorkload(seq_len=128)
        model = star.executed_model_schedule(workload)
        layer = star.layer_latency_breakdown(workload)
        assert model.num_layers == workload.config.num_layers
        assert model.total_latency_s == pytest.approx(
            workload.config.num_layers * layer.total_s, rel=1e-12
        )
        assert star.inference_latency_s(workload) == pytest.approx(
            model.total_latency_s
        )

    def test_disabled_jitter_reuses_one_execution(self):
        star = STARAccelerator(schedule="executed", jitter=StageJitter(sigma=0.0))
        model = star.executed_model_schedule(BertWorkload(seq_len=32))
        first = model.attention_schedules[0]
        assert all(schedule is first for schedule in model.attention_schedules)

    def test_jitter_gives_each_layer_its_own_stream(self):
        config = BertConfig(num_layers=3)
        star = STARAccelerator(schedule="executed", jitter=StageJitter(sigma=0.2, seed=9))
        workload = BertWorkload(config=config, seq_len=32)
        model = star.executed_model_schedule(workload)
        latencies = [layer.attention_pipeline_s for layer in model.layers]
        assert len(set(latencies)) == 3  # independent draws differ
        assert model.total_latency_s == pytest.approx(
            sum(layer.total_s for layer in model.layers)
        )

    def test_softmax_utilization_is_a_fraction(self):
        star = STARAccelerator(schedule="executed")
        model = star.executed_model_schedule(BertWorkload(seq_len=64))
        assert 0.0 < model.softmax_utilization() <= 1.0
        assert model.attention_latency_s < model.total_latency_s


class TestRequestTiming:
    def test_consistent_with_inference_latency_and_power(self):
        star = STARAccelerator()
        workload = BertWorkload(seq_len=128, batch_size=4)
        timing = star.request_timing(workload)
        assert timing.latency_s == pytest.approx(star.inference_latency_s(workload))
        # energy is charged at the serialized-equivalent rate: the wall
        # clock double-buffering saves removes no conversions
        from repro.core.batch_cost import BatchCostModel

        serialized = STARAccelerator(batch_cost=BatchCostModel(double_buffering=False))
        assert timing.energy_j == pytest.approx(
            star.power_w(128) * serialized.inference_latency_s(workload)
        )
        assert timing.energy_j > star.power_w(128) * timing.latency_s
        assert timing.latency_per_request_s == pytest.approx(timing.latency_s / 4)
        assert timing.energy_per_request_j == pytest.approx(timing.energy_j / 4)

    def test_batch_one_energy_is_power_times_latency(self):
        star = STARAccelerator()
        workload = BertWorkload(seq_len=128)
        timing = star.request_timing(workload)
        assert timing.energy_j == star.power_w(128) * timing.latency_s

    def test_batch_energy_never_amortises_streaming(self):
        from repro.core.batch_cost import BatchCostModel

        streamed = STARAccelerator(batch_cost=BatchCostModel.streamed())
        resident = STARAccelerator()
        single = streamed.request_timing(BertWorkload(seq_len=128)).energy_j
        programming = single - resident.request_timing(BertWorkload(seq_len=128)).energy_j
        assert programming > 0
        for batch in (4, 8):
            workload = BertWorkload(seq_len=128, batch_size=batch)
            batched = streamed.request_timing(workload).energy_j
            # the one-time programming charge rides once per batch on top of
            # the resident streaming energy, whatever the batch size
            assert batched == pytest.approx(
                resident.request_timing(workload).energy_j + programming
            )
            # energy grows with the batch and amortises only per request
            assert single < batched <= batch * single
            assert batched / batch < single

    def test_workload_request_helpers(self):
        workload = BertWorkload(seq_len=128)
        batched = workload.with_batch(8).with_seq_len(256)
        assert batched.batch_size == 8 and batched.seq_len == 256
        assert batched.config is workload.config
        assert batched.ops_per_request() == pytest.approx(batched.total_ops() / 8)
        # per-request op count is batch-invariant
        assert batched.ops_per_request() == pytest.approx(
            workload.with_seq_len(256).total_ops()
        )
