"""Chip fleets: the serving simulator's server pool and its service model.

A fleet is ``num_chips`` accelerator chips sharing one dispatch queue.
What a batch costs is delegated to a *service model*:

* :class:`StarServiceModel` — the real thing: a
  :class:`~repro.core.accelerator.STARAccelerator` (one
  :class:`~repro.core.accelerator.ChipResources` worth of tile banks,
  softmax engines and overheads) prices a batch as a whole-model BERT
  inference at the batch's padded sequence length, with energy charged at
  the chip's active power.  Timings are cached per ``(batch, seq_len)``
  shape — the model is deterministic, so each shape is priced once.
* :class:`FixedServiceModel` — a synthetic deterministic service used by
  the queueing-theory cross-validation (M/D/1 needs a known constant
  service time, not a full accelerator model).

Heterogeneous fleets (e.g. one older slower chip) are expressed through
per-chip ``speedups``, exactly like the executor's unbalanced
softmax-engine pools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["ServiceModel", "FixedServiceModel", "StarServiceModel", "ChipFleet"]


class ServiceModel(Protocol):
    """Prices one dispatched batch on one (speed-1.0) chip."""

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        """Service time of a ``batch_size`` batch padded to ``seq_len``."""
        ...

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        """Active energy of serving that batch."""
        ...


@dataclass(frozen=True)
class FixedServiceModel:
    """Deterministic per-request service, serialized within a batch.

    A batch of ``b`` requests costs ``b * request_latency_s`` — no batching
    benefit, which keeps the no-batching single-chip limit an exact M/D/1
    queue with service time ``request_latency_s``.
    """

    request_latency_s: float
    request_energy_j: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.request_latency_s, "request_latency_s")
        require_non_negative(self.request_energy_j, "request_energy_j")

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.request_latency_s

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.request_energy_j


class StarServiceModel:
    """Batch pricing by a STAR accelerator's whole-model timing.

    ``accelerator`` defaults to the stock analytical-schedule
    :class:`~repro.core.accelerator.STARAccelerator`; pass a
    ``schedule="executed"`` instance to price batches with the event-driven
    executor instead (slower, but captures jitter and discrete pools).
    ``bert_config`` sizes the served model.  Results are cached per
    ``(batch_size, seq_len)``.
    """

    def __init__(self, accelerator=None, bert_config=None) -> None:
        from repro.core.accelerator import STARAccelerator
        from repro.nn.bert import BERT_BASE, BertWorkload

        self.accelerator = accelerator or STARAccelerator()
        self.bert_config = bert_config or BERT_BASE
        self._base_workload = BertWorkload(config=self.bert_config)
        self._cache: dict[tuple[int, int], tuple[float, float]] = {}

    def _timing(self, batch_size: int, seq_len: int) -> tuple[float, float]:
        key = (batch_size, seq_len)
        if key not in self._cache:
            workload = self._base_workload.with_seq_len(seq_len).with_batch(batch_size)
            timing = self.accelerator.request_timing(workload)
            self._cache[key] = (timing.latency_s, timing.energy_j)
        return self._cache[key]

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return self._timing(batch_size, seq_len)[0]

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return self._timing(batch_size, seq_len)[1]


class ChipFleet:
    """``num_chips`` chips sharing one dispatch queue.

    ``speedups`` divides each chip's batch service time (and scales its
    energy down accordingly — a faster chip finishes the same work
    sooner at the same power).
    """

    def __init__(
        self,
        service_model: ServiceModel,
        num_chips: int = 1,
        speedups: Sequence[float] | None = None,
    ) -> None:
        require_positive(num_chips, "num_chips")
        self.service_model = service_model
        self.num_chips = num_chips
        if speedups is None:
            speedups = (1.0,) * num_chips
        self.speedups = tuple(float(s) for s in speedups)
        if len(self.speedups) != num_chips:
            raise ValueError(
                f"got {len(self.speedups)} speedups for {num_chips} chips"
            )
        for speed in self.speedups:
            require_positive(speed, "chip speedup")

    def batch_latency_s(self, chip: int, batch_size: int, seq_len: int) -> float:
        """Service time of the batch on one specific chip."""
        return self.service_model.batch_latency_s(batch_size, seq_len) / self.speedups[chip]

    def batch_energy_j(self, chip: int, batch_size: int, seq_len: int) -> float:
        """Energy of the batch on one specific chip."""
        return self.service_model.batch_energy_j(batch_size, seq_len) / self.speedups[chip]
