"""The STAR accelerator: MatMul engine + RRAM softmax engines + pipeline.

The top-level model assembles the pieces the paper describes and produces
the quantities the evaluation section reports:

* end-to-end BERT-base inference latency, split into the attention pipeline
  (score GEMM -> softmax -> context GEMM, scheduled at vector granularity)
  and the remaining GEMMs (Q/K/V/output projections and the FFN);
* chip power: crossbar tiles, softmax engines and the shared system
  overheads (buffers, network, control) from
  :class:`repro.arch.system.SystemOverheadModel`;
* the Fig. 3 computing-efficiency report (GOPs/s/W).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.report import CostReport
from repro.arch.system import DEFAULT_SYSTEM_OVERHEAD, SystemOverheadModel
from repro.core.config import STARConfig
from repro.core.matmul_engine import GEMMShape, MatMulEngine
from repro.core.pipeline import AttentionPipeline, PipelineSchedule, StageTiming, attention_streams
from repro.core.scheduler import ExecutedSchedule, PipelineExecutor, StageJitter
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.bert import BertWorkload
from repro.utils.validation import require_positive

__all__ = ["LayerLatencyBreakdown", "STARAccelerator"]

#: Valid values of the ``schedule`` constructor argument.
SCHEDULES = ("analytical", "executed")


@dataclass(frozen=True)
class LayerLatencyBreakdown:
    """Latency components of one encoder layer on the accelerator."""

    projection_s: float
    attention_pipeline_s: float
    ffn_s: float
    softmax_only_s: float

    @property
    def total_s(self) -> float:
        """Total latency of the layer."""
        return self.projection_s + self.attention_pipeline_s + self.ffn_s

    @property
    def softmax_share(self) -> float:
        """Share of the layer spent waiting on softmax (0 when fully hidden)."""
        return self.softmax_only_s / self.total_s if self.total_s > 0 else 0.0


class STARAccelerator:
    """Architectural model of the full STAR accelerator.

    ``schedule`` selects how the attention-pipeline latency is obtained:
    ``"analytical"`` evaluates the closed-form
    :class:`~repro.core.pipeline.AttentionPipeline` formulas (the fast
    default), ``"executed"`` runs the workload's rows through the
    event-driven :class:`~repro.core.scheduler.PipelineExecutor` with the
    accelerator's actual resources — ``attention_streams`` parallel tile
    groups for the GEMM stages and ``num_softmax_engines`` discrete softmax
    engines — and reports the simulated makespan.  ``jitter`` optionally
    perturbs the executed per-row stage times (ignored by the analytical
    schedule, which cannot express it).
    """

    name = "STAR"

    def __init__(
        self,
        config: STARConfig | None = None,
        num_softmax_engines: int = 64,
        system_overhead: SystemOverheadModel = DEFAULT_SYSTEM_OVERHEAD,
        schedule: str = "analytical",
        jitter: StageJitter | None = None,
    ) -> None:
        require_positive(num_softmax_engines, "num_softmax_engines")
        if schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}, got {schedule!r}")
        self.config = config or STARConfig()
        self.matmul_engine = MatMulEngine(self.config.matmul)
        self.softmax_engine = RRAMSoftmaxEngine(self.config.softmax)
        self.num_softmax_engines = num_softmax_engines
        self.pipeline = AttentionPipeline(self.config.pipeline)
        self.schedule = schedule
        self.jitter = jitter
        self.system_overhead = system_overhead

    # ------------------------------------------------------------------ #
    # latency
    # ------------------------------------------------------------------ #
    def _projection_latency_s(self, workload: BertWorkload) -> float:
        cfg = workload.config
        tokens = workload.batch_size * workload.seq_len
        qkv_and_output = GEMMShape(m=tokens, k=cfg.hidden, n=cfg.hidden)
        return 4 * self.matmul_engine.gemm_latency_s(qkv_and_output)

    def _ffn_latency_s(self, workload: BertWorkload) -> float:
        cfg = workload.config
        tokens = workload.batch_size * workload.seq_len
        up = GEMMShape(m=tokens, k=cfg.hidden, n=cfg.intermediate)
        down = GEMMShape(m=tokens, k=cfg.intermediate, n=cfg.hidden)
        return self.matmul_engine.gemm_latency_s(up) + self.matmul_engine.gemm_latency_s(down)

    def attention_stage_timing(self, workload: BertWorkload) -> StageTiming:
        """Per-row stage timings of the attention pipeline for one layer.

        The per-row GEMM latencies are divided by the number of concurrent
        head-streams the tile budget supports, and the softmax row latency
        by the number of parallel softmax engines: the timings describe the
        *aggregate* row intervals the pipeline model consumes.
        """
        native = self.native_attention_stage_timing(workload)
        streams = attention_streams(
            workload.config.num_heads, workload.batch_size, self.config.matmul.num_tiles
        )
        return StageTiming(
            score_row_s=native.score_row_s / streams,
            softmax_row_s=native.softmax_row_s / self.num_softmax_engines,
            context_row_s=native.context_row_s / streams,
            num_rows=native.num_rows,
        )

    def native_attention_stage_timing(self, workload: BertWorkload) -> StageTiming:
        """Per-row stage timings as one server of each stage sees them.

        Unlike :meth:`attention_stage_timing` nothing is divided by the
        stream or engine counts — these are the service times of one tile
        group / one softmax engine, which is what the event-driven executor
        consumes (it models the parallelism with discrete servers instead
        of rate scaling).
        """
        cfg = workload.config
        seq_len = workload.seq_len
        score_shape = GEMMShape(m=1, k=cfg.head_dim, n=seq_len)
        context_shape = GEMMShape(m=1, k=seq_len, n=cfg.head_dim)
        return StageTiming(
            score_row_s=self.matmul_engine.row_latency_s(score_shape),
            softmax_row_s=self.softmax_engine.row_latency_s(seq_len),
            context_row_s=self.matmul_engine.row_latency_s(context_shape),
            num_rows=workload.batch_size * cfg.num_heads * seq_len,
        )

    def attention_executor(self, workload: BertWorkload) -> PipelineExecutor:
        """The event-driven executor provisioned for this workload."""
        streams = attention_streams(
            workload.config.num_heads, workload.batch_size, self.config.matmul.num_tiles
        )
        return PipelineExecutor(
            self.config.pipeline,
            streams=streams,
            softmax_engines=self.num_softmax_engines,
            jitter=self.jitter,
        )

    def executed_attention_schedule(
        self, workload: BertWorkload, granularity: str | None = None
    ) -> ExecutedSchedule:
        """Run the workload's attention rows through the event-driven executor.

        ``granularity`` overrides the configured pipeline granularity for
        this one execution (``None`` keeps the configured one).
        """
        executor = self.attention_executor(workload)
        timing = self.native_attention_stage_timing(workload)
        if granularity == "vector":
            return executor.execute_vector(timing)
        if granularity == "operand":
            return executor.execute_operand(timing)
        if granularity is not None:
            raise ValueError(
                f"granularity must be 'vector', 'operand' or None, got {granularity!r}"
            )
        return executor.execute(timing)

    def attention_pipeline_schedule(self, workload: BertWorkload) -> PipelineSchedule:
        """Attention-pipeline latency under the configured schedule source."""
        if self.schedule == "executed":
            return self.executed_attention_schedule(workload).as_pipeline_schedule()
        return self.pipeline.latency(self.attention_stage_timing(workload))

    def layer_latency_breakdown(self, workload: BertWorkload) -> LayerLatencyBreakdown:
        """Latency components of one encoder layer."""
        timing = self.attention_stage_timing(workload)
        schedule = self.attention_pipeline_schedule(workload)
        softmax_only = timing.softmax_row_s * timing.num_rows
        return LayerLatencyBreakdown(
            projection_s=self._projection_latency_s(workload),
            attention_pipeline_s=schedule.total_latency_s,
            ffn_s=self._ffn_latency_s(workload),
            softmax_only_s=softmax_only,
        )

    def inference_latency_s(self, workload: BertWorkload) -> float:
        """End-to-end latency of one BERT inference."""
        layer = self.layer_latency_breakdown(workload)
        return workload.config.num_layers * layer.total_s

    # ------------------------------------------------------------------ #
    # power and area
    # ------------------------------------------------------------------ #
    def power_w(self, seq_len: int = 128) -> float:
        """Average chip power while executing BERT-base inference."""
        tiles = self.matmul_engine.peak_power_w()
        softmax = self.num_softmax_engines * self.softmax_engine.power_w(seq_len)
        overhead = self.system_overhead.total_power_w(self.config.matmul.num_tiles)
        return tiles + softmax + overhead

    def area_mm2(self) -> float:
        """Total chip area."""
        tiles = self.matmul_engine.area_mm2()
        softmax = self.num_softmax_engines * self.softmax_engine.area_mm2()
        overhead = self.system_overhead.total_area_mm2(self.config.matmul.num_tiles)
        return tiles + softmax + overhead

    # ------------------------------------------------------------------ #
    # reports
    # ------------------------------------------------------------------ #
    def cost_report(self, workload: BertWorkload) -> CostReport:
        """Fig. 3 computing-efficiency report for one BERT workload."""
        latency = self.inference_latency_s(workload)
        return CostReport(
            name=self.name,
            area_mm2=self.area_mm2(),
            power_w=self.power_w(workload.seq_len),
            latency_s=latency,
            operations=float(workload.total_ops()),
        )

    def computing_efficiency_gops_per_watt(self, workload: BertWorkload) -> float:
        """The headline metric of Fig. 3."""
        return self.cost_report(workload).computing_efficiency_gops_per_watt
