"""First-party hot-path counters for the serving simulator.

Perf work on the simulator (this PR's sharding, and whatever comes next)
needs numbers that do not require strapping an external profiler to a
discrete-event loop: how many events a run scheduled and popped, how many
dispatch sweeps it made, how many batches and requests came out, and how
long the wall clock said it took.  The :class:`EventLoop` already counts
its own traffic (one integer increment per event); this module collects
those counters per run.

The global :data:`PROFILER` is off by default and costs one attribute
check per *run* (not per event) while disabled.  The experiments CLI
turns it on with ``--profile`` and prints the table after the run; tests
and library users can use a private :class:`Profiler` instance instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunProfile", "Profiler", "PROFILER"]


@dataclass(frozen=True, slots=True)
class RunProfile:
    """Hot-path counters of one simulator run.

    The pricing/template cache deltas and per-tier dispatch counts are
    zero for runs without tiered-fidelity models — the fields exist so
    ``--profile`` can show how often a run priced dispatches from the
    analytic pricing cache vs. resampled a cached executed-schedule
    template, and how many cold template builds it paid.  Likewise the
    routing counters (front-end route decisions, batches stolen by idle
    peers, deepest single chip queue) stay zero for global-queue runs.
    """

    label: str
    events_scheduled: int
    events_popped: int
    dispatch_calls: int
    num_requests: int
    num_batches: int
    wall_s: float
    pricing_hits: int = 0
    pricing_misses: int = 0
    template_hits: int = 0
    template_misses: int = 0
    analytic_batches: int = 0
    executed_batches: int = 0
    routed_requests: int = 0
    stolen_batches: int = 0
    peak_queue_depth: int = 0

    @property
    def events_per_s(self) -> float:
        """Popped events per wall-clock second (the loop's raw speed)."""
        return self.events_popped / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def requests_per_s(self) -> float:
        """Completed requests per wall-clock second of simulation."""
        return self.num_requests / self.wall_s if self.wall_s > 0 else float("inf")


class Profiler:
    """Collects :class:`RunProfile` rows; disabled unless :attr:`enabled`."""

    def __init__(self) -> None:
        self.enabled = False
        self.runs: list[RunProfile] = []

    def record(self, profile: RunProfile) -> None:
        """Keep a run's counters (no-op while disabled)."""
        if self.enabled:
            self.runs.append(profile)

    def clear(self) -> None:
        """Drop all collected rows."""
        self.runs.clear()

    def format_table(self) -> str:
        """Printable counter table, one row per recorded run."""
        if not self.runs:
            return "profiler: no runs recorded"
        header = (
            f"{'run':<28} {'events':>10} {'popped':>10} {'dispatch':>9} "
            f"{'requests':>9} {'batches':>8} {'wall_s':>8} {'req/s':>10} "
            f"{'price h/m':>11} {'tmpl h/m':>9} {'tiers a/x':>11} "
            f"{'routed':>8} {'stolen':>7} {'peak q':>7}"
        )
        lines = [header, "-" * len(header)]
        for run in self.runs:
            lines.append(
                f"{run.label:<28} {run.events_scheduled:>10} {run.events_popped:>10} "
                f"{run.dispatch_calls:>9} {run.num_requests:>9} {run.num_batches:>8} "
                f"{run.wall_s:>8.3f} {run.requests_per_s:>10.0f} "
                f"{f'{run.pricing_hits}/{run.pricing_misses}':>11} "
                f"{f'{run.template_hits}/{run.template_misses}':>9} "
                f"{f'{run.analytic_batches}/{run.executed_batches}':>11} "
                f"{run.routed_requests:>8} {run.stolen_batches:>7} "
                f"{run.peak_queue_depth:>7}"
            )
        return "\n".join(lines)


#: Process-global profiler the experiments CLI flips on with ``--profile``.
PROFILER = Profiler()
