"""CMOS technology-node scaling for the digital cost models.

All digital component costs in :mod:`repro.circuits.components` are
calibrated at a 32 nm reference node (the node used by the ISAAC / PipeLayer
cost tables that STAR's comparisons build on).  This module provides simple
first-order scaling of area and power to other nodes so that experiments can
be run at e.g. 45 nm or 22 nm if desired.

Scaling assumptions (classic constant-field scaling, adequate for the
comparative studies this package targets):

* area scales with the square of the feature-size ratio;
* dynamic power scales roughly linearly with the feature-size ratio at a
  fixed frequency (capacitance down, voltage nearly flat at these nodes);
* latency of a synthesised block scales linearly with the feature size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["TechnologyNode", "REFERENCE_NODE_NM", "DEFAULT_TECHNOLOGY"]

REFERENCE_NODE_NM = 32.0


@dataclass(frozen=True)
class TechnologyNode:
    """A CMOS process node with scaling helpers relative to 32 nm.

    Attributes
    ----------
    feature_nm:
        Drawn feature size in nanometres.
    supply_v:
        Nominal supply voltage.
    clock_hz:
        Clock frequency assumed for the synthesised digital blocks; the
        PIM-accelerator literature (and hence our calibration) uses 1 GHz.
    """

    feature_nm: float = 32.0
    supply_v: float = 0.9
    clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        require_positive(self.feature_nm, "feature_nm")
        require_positive(self.supply_v, "supply_v")
        require_positive(self.clock_hz, "clock_hz")

    @property
    def linear_ratio(self) -> float:
        """Feature size relative to the 32 nm reference."""
        return self.feature_nm / REFERENCE_NODE_NM

    @property
    def area_scale(self) -> float:
        """Multiplier applied to 32 nm area figures."""
        return self.linear_ratio**2

    @property
    def power_scale(self) -> float:
        """Multiplier applied to 32 nm power figures (fixed frequency)."""
        return self.linear_ratio

    @property
    def latency_scale(self) -> float:
        """Multiplier applied to 32 nm combinational latency figures."""
        return self.linear_ratio

    @property
    def cycle_time_s(self) -> float:
        """One clock period."""
        return 1.0 / self.clock_hz

    def scale_area_um2(self, area_um2_at_32nm: float) -> float:
        """Scale a 32 nm area figure to this node."""
        return area_um2_at_32nm * self.area_scale

    def scale_power_w(self, power_w_at_32nm: float) -> float:
        """Scale a 32 nm power figure to this node."""
        return power_w_at_32nm * self.power_scale

    def scale_latency_s(self, latency_s_at_32nm: float) -> float:
        """Scale a 32 nm latency figure to this node."""
        return latency_s_at_32nm * self.latency_scale


DEFAULT_TECHNOLOGY = TechnologyNode()
