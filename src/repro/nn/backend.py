"""Pluggable compute backends: which hardware executes the model's GEMMs.

PR 1 made the *softmax* interchangeable (exact / fixed-point / RRAM engine);
this module does the same for every **matrix multiplication** in the model.
A :class:`ComputeBackend` executes the two GEMM flavours a transformer
encoder has:

* :meth:`ComputeBackend.linear` — a *stationary-weight* GEMM
  (``x @ W`` of a :class:`~repro.nn.layers.Linear` layer).  The analog
  backend programs the weight into a persistent crossbar tile bank once
  (:meth:`repro.core.matmul_engine.MatMulEngine.program_operand`) and
  reuses it on every call — the weight-stationary dataflow RRAM PIM
  accelerators exist for.
* :meth:`ComputeBackend.matmul` — a *dynamic-operand* GEMM (attention's
  ``QK^T`` score product and ``A V`` context product), where the right-hand
  operand changes every call and therefore has to be (re)written into the
  tiles, as PipeLayer-style accelerators do.

Two implementations ship:

* :class:`IdealBackend` — exact NumPy, bit-identical to the seed model's
  plain ``@`` operators (and exactly what the layers use by default);
* :class:`AnalogBackend` — simulated RRAM crossbar GEMMs through a
  :class:`~repro.core.matmul_engine.MatMulEngine`, including weight
  quantisation onto conductance levels, bit-serial input streaming, ADC
  readout and any configured noise/IR-drop non-idealities.  Access
  statistics accumulate on ``backend.engine.access_stats``.

One constructor argument (``backend=``) threads a backend through
:class:`~repro.nn.layers.Linear`, :class:`~repro.nn.attention.MultiHeadAttention`,
:class:`~repro.nn.encoder.TransformerEncoder` and
:class:`~repro.nn.bert.BertEncoderModel`; combined with the pluggable
softmax (``softmax_fn=RRAMSoftmaxEngine(...)``) this runs full BERT
inference with *both* attention stages on simulated analog hardware.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.matmul_engine import MatMulEngine, ProgrammedOperand
    from repro.rram.crossbar import CrossbarAccessStats

__all__ = ["ComputeBackend", "IdealBackend", "AnalogBackend", "IDEAL_BACKEND"]


@runtime_checkable
class ComputeBackend(Protocol):
    """What a compute backend must provide to the NN layers."""

    name: str

    def linear(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Stationary-weight GEMM ``x @ weight``; ``x`` is ``(..., k)``."""

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dynamic-operand GEMM ``a @ b`` over matching leading dimensions."""


class IdealBackend:
    """Exact NumPy execution — the mathematical reference."""

    name = "ideal"

    def linear(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Exact ``x @ weight``."""
        return x @ weight

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Exact ``a @ b`` (stacked GEMM over leading dimensions)."""
        return a @ b


#: Shared default backend; stateless, so one instance serves every layer.
IDEAL_BACKEND = IdealBackend()


class AnalogBackend:
    """Simulated RRAM crossbar execution of every GEMM.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.matmul_engine.MatMulEngine` to run on.  A
        default-configured engine (128x128 tiles, 5-bit ADCs, ideal
        devices) is built when omitted.  Functional fidelity on small
        models benefits from more conductance levels, e.g.
        ``MatMulEngineConfig(bits_per_cell=5, adc_bits=10)``.

    Notes
    -----
    Stationary weights are programmed into persistent tile banks on first
    use and cached per weight matrix, so repeated forward passes pay
    programming once.  Dynamic operands (attention scores / context) are
    re-programmed per call, which the access stats make visible as
    additional ``programming_pulses`` — exactly the PipeLayer-vs-STAR
    trade-off the paper's ablation discusses.
    """

    name = "analog"

    def __init__(self, engine: "MatMulEngine | None" = None) -> None:
        if engine is None:
            from repro.core.matmul_engine import MatMulEngine

            engine = MatMulEngine()
        self.engine = engine
        # id(weight) -> (weak weight ref, contents snapshot, programmed tile
        # bank); entries evict themselves when the weight array is collected,
        # so rebuilding models on one backend cannot grow the cache unboundedly
        self._operands: dict[
            int, tuple["weakref.ref[np.ndarray]", np.ndarray, "ProgrammedOperand"]
        ] = {}

    @property
    def access_stats(self) -> "CrossbarAccessStats":
        """Engine-level crossbar access counters (all tiles, whole lifetime)."""
        return self.engine.access_stats

    def operand_for(self, weight: np.ndarray) -> "ProgrammedOperand":
        """The persistent tile bank holding ``weight``, programming it once.

        The bank is re-programmed (and the write charged to the access
        stats, as real hardware would pay it) whenever the weight array's
        *contents* change — in-place updates like ``layer.weight[:] = w``
        are detected against a snapshot, not just the array's identity.
        """
        key = id(weight)
        entry = self._operands.get(key)
        if entry is None or entry[0]() is not weight or not np.array_equal(entry[1], weight):
            evict = weakref.ref(weight, lambda _ref, key=key: self._operands.pop(key, None))
            entry = (evict, weight.copy(), self.engine.program_operand(weight))
            self._operands[key] = entry
        return entry[2]

    def linear(self, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Analog ``x @ weight`` through the weight's persistent tile bank."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1])
        out = self.engine.matmul(flat, self.operand_for(weight))
        return out.reshape(*x.shape[:-1], weight.shape[1])

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Analog ``a @ b``, programming the dynamic operand per call.

        Stacked inputs (``(..., m, k) @ (..., k, n)`` with matching leading
        dimensions) run one tiled analog GEMM per leading index.
        """
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.ndim == 2 and b.ndim == 2:
            return self.engine.matmul(a, b)
        if a.ndim != b.ndim or a.shape[:-2] != b.shape[:-2]:
            raise ValueError(
                f"stacked matmul needs matching leading dimensions, got "
                f"{a.shape} @ {b.shape}"
            )
        lead = a.shape[:-2]
        out = np.empty(lead + (a.shape[-2], b.shape[-1]), dtype=np.float64)
        for index in np.ndindex(*lead):
            out[index] = self.engine.matmul(a[index], b[index])
        return out
