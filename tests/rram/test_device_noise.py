"""Tests for repro.rram.device and repro.rram.noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram.device import RRAMDevice, RRAMDeviceConfig
from repro.rram.noise import IDEAL_NOISE, TYPICAL_NOISE, WORST_CASE_NOISE, NoiseConfig, NoiseModel


class TestDeviceConfig:
    def test_defaults_are_consistent(self):
        cfg = RRAMDeviceConfig()
        assert cfg.g_max_s == pytest.approx(1.0 / cfg.r_on_ohm)
        assert cfg.g_min_s == pytest.approx(1.0 / cfg.r_off_ohm)
        assert cfg.on_off_ratio == pytest.approx(100.0)
        assert cfg.num_levels == 4

    def test_invalid_resistances(self):
        with pytest.raises(ValueError):
            RRAMDeviceConfig(r_on_ohm=1e7, r_off_ohm=1e5)
        with pytest.raises(ValueError):
            RRAMDeviceConfig(r_on_ohm=-1)

    def test_invalid_bits_per_cell(self):
        with pytest.raises(ValueError):
            RRAMDeviceConfig(bits_per_cell=0)
        with pytest.raises(ValueError):
            RRAMDeviceConfig(bits_per_cell=7)


class TestDevice:
    def test_conductance_levels_span_window(self):
        device = RRAMDevice()
        levels = device.conductance_levels
        assert levels[0] == pytest.approx(device.config.g_min_s)
        assert levels[-1] == pytest.approx(device.config.g_max_s)
        assert np.all(np.diff(levels) > 0)

    def test_level_conversion_round_trip(self):
        device = RRAMDevice(RRAMDeviceConfig(bits_per_cell=3))
        levels = np.arange(device.config.num_levels)
        conductances = device.level_to_conductance(levels)
        recovered = device.conductance_to_level(conductances)
        assert np.array_equal(recovered, levels)

    def test_level_out_of_range_raises(self):
        device = RRAMDevice()
        with pytest.raises(ValueError):
            device.level_to_conductance(device.config.num_levels)

    def test_read_energy_scales_with_conductance(self):
        device = RRAMDevice()
        low = float(device.read_energy_j(device.config.g_min_s))
        high = float(device.read_energy_j(device.config.g_max_s))
        assert high > low > 0

    def test_write_costs_scale_with_pulses(self):
        device = RRAMDevice()
        assert device.write_energy_j(4) == pytest.approx(4 * device.write_energy_j(1))
        assert device.write_latency_s(4) == pytest.approx(4 * device.write_latency_s(1))
        with pytest.raises(ValueError):
            device.write_energy_j(0)


class TestNoiseConfig:
    def test_presets(self):
        assert IDEAL_NOISE.is_ideal
        assert not TYPICAL_NOISE.is_ideal
        assert WORST_CASE_NOISE.programming_sigma > TYPICAL_NOISE.programming_sigma

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            NoiseConfig(stuck_on_fraction=0.7, stuck_off_fraction=0.6)
        with pytest.raises(ValueError):
            NoiseConfig(read_noise_sigma=-0.1)


class TestNoiseModel:
    def test_ideal_model_is_identity(self):
        model = NoiseModel(IDEAL_NOISE)
        g = np.linspace(1e-7, 1e-5, 50)
        np.testing.assert_allclose(model.apply_read(g), g)
        np.testing.assert_allclose(model.apply_programming(g, 1e-7, 1e-5), g)
        np.testing.assert_allclose(model.perturb_current(g), g)

    def test_programming_variation_is_bounded_and_unbiased(self):
        model = NoiseModel(NoiseConfig(programming_sigma=0.05, seed=3))
        g = np.full(20000, 5e-6)
        out = model.apply_programming(g, 1e-7, 1e-5)
        assert np.all(out >= 1e-7) and np.all(out <= 1e-5)
        assert np.mean(out) == pytest.approx(5e-6, rel=0.02)
        assert np.std(out) > 0

    def test_stuck_cells_fraction(self):
        model = NoiseModel(NoiseConfig(stuck_on_fraction=0.1, stuck_off_fraction=0.1, seed=5))
        g = np.full(50000, 5e-6)
        out = model.apply_programming(g, 1e-7, 1e-5)
        stuck_on = np.mean(out == 1e-5)
        stuck_off = np.mean(out == 1e-7)
        assert stuck_on == pytest.approx(0.1, abs=0.01)
        assert stuck_off == pytest.approx(0.1, abs=0.01)

    def test_read_noise_magnitude(self):
        model = NoiseModel(NoiseConfig(read_noise_sigma=0.02, seed=9))
        g = np.full(20000, 1e-6)
        out = model.apply_read(g)
        assert np.std(out / g - 1.0) == pytest.approx(0.02, rel=0.1)

    def test_reseed_reproducibility(self):
        config = NoiseConfig(read_noise_sigma=0.05, seed=0)
        model_a = NoiseModel(config)
        model_b = NoiseModel(config)
        g = np.ones(100) * 1e-6
        np.testing.assert_allclose(model_a.apply_read(g), model_b.apply_read(g))
        model_a.reseed(42)
        model_b.reseed(42)
        np.testing.assert_allclose(model_a.apply_read(g), model_b.apply_read(g))
