"""RRAM non-ideality models: programming variation, read noise, stuck cells.

The STAR paper's key argument is that the softmax operation is *insensitive
to computing precision*, which is what lets it tolerate the analog
imperfections of an RRAM implementation.  These models let the experiments
(E9 ablation in DESIGN.md) inject realistic device non-idealities and verify
that the softmax output distribution is indeed robust.

Three classes of non-ideality are modelled, each with the standard
behavioural formulation used in NeuroSim-style simulators:

* **Programming (device-to-device) variation** — after write-verify, the
  achieved conductance differs from the target by a lognormal factor.
* **Read (cycle-to-cycle) noise** — every analog read sees additive Gaussian
  noise proportional to the nominal conductance.
* **Stuck-at faults** — a fraction of cells are stuck at ``g_min`` (stuck-off)
  or ``g_max`` (stuck-on) and ignore programming entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_in_range, require_non_negative

__all__ = ["NoiseConfig", "NoiseModel", "IDEAL_NOISE", "TYPICAL_NOISE", "WORST_CASE_NOISE"]


@dataclass(frozen=True)
class NoiseConfig:
    """Strengths of the three non-ideality mechanisms.

    Attributes
    ----------
    programming_sigma:
        Standard deviation of the lognormal programming-variation factor
        (0 disables it).  Typical write-verify flows achieve 1-3 %.
    read_noise_sigma:
        Relative standard deviation of the Gaussian read noise
        (0 disables it).  Typical values are 0.5-2 %.
    stuck_on_fraction / stuck_off_fraction:
        Fractions of cells stuck at ``g_max`` / ``g_min``.
    seed:
        Seed for the internal random generator, so experiments are
        reproducible.
    """

    programming_sigma: float = 0.0
    read_noise_sigma: float = 0.0
    stuck_on_fraction: float = 0.0
    stuck_off_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_non_negative(self.programming_sigma, "programming_sigma")
        require_non_negative(self.read_noise_sigma, "read_noise_sigma")
        require_in_range(self.stuck_on_fraction, 0.0, 1.0, "stuck_on_fraction")
        require_in_range(self.stuck_off_fraction, 0.0, 1.0, "stuck_off_fraction")
        if self.stuck_on_fraction + self.stuck_off_fraction > 1.0:
            raise ValueError("stuck_on_fraction + stuck_off_fraction must be <= 1")

    @property
    def is_ideal(self) -> bool:
        """True when every mechanism is disabled."""
        return (
            self.programming_sigma == 0.0
            and self.read_noise_sigma == 0.0
            and self.stuck_on_fraction == 0.0
            and self.stuck_off_fraction == 0.0
        )

    @property
    def is_programming_ideal(self) -> bool:
        """True when the write path is ideal (no variation, no stuck cells).

        The batched crossbar backend uses this to decide whether the
        programmed conductances still sit exactly on the device's level
        grid, which enables its exact integer-arithmetic VMM kernel.
        """
        return (
            self.programming_sigma == 0.0
            and self.stuck_on_fraction == 0.0
            and self.stuck_off_fraction == 0.0
        )


IDEAL_NOISE = NoiseConfig()
TYPICAL_NOISE = NoiseConfig(
    programming_sigma=0.02, read_noise_sigma=0.01, stuck_on_fraction=0.001, stuck_off_fraction=0.001
)
WORST_CASE_NOISE = NoiseConfig(
    programming_sigma=0.05, read_noise_sigma=0.03, stuck_on_fraction=0.01, stuck_off_fraction=0.01
)


class NoiseModel:
    """Applies the configured non-idealities to conductance matrices."""

    def __init__(self, config: NoiseConfig | None = None) -> None:
        self.config = config or IDEAL_NOISE
        self._rng = np.random.default_rng(self.config.seed)

    def reseed(self, seed: int) -> None:
        """Reset the random stream (used by Monte-Carlo sweeps)."""
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # programming-time effects
    # ------------------------------------------------------------------ #
    def apply_programming(
        self,
        target_conductance: np.ndarray,
        g_min: float,
        g_max: float,
    ) -> np.ndarray:
        """Return the conductances actually achieved after programming.

        Applies lognormal device-to-device variation and then overrides the
        stuck cells.  The result is clipped to the physical window.
        """
        g = np.asarray(target_conductance, dtype=np.float64).copy()
        cfg = self.config
        if cfg.programming_sigma > 0.0:
            factors = self._rng.lognormal(
                mean=0.0, sigma=cfg.programming_sigma, size=g.shape
            )
            g = g * factors
        total_stuck = cfg.stuck_on_fraction + cfg.stuck_off_fraction
        if total_stuck > 0.0:
            draw = self._rng.random(size=g.shape)
            stuck_on = draw < cfg.stuck_on_fraction
            stuck_off = (draw >= cfg.stuck_on_fraction) & (draw < total_stuck)
            g = np.where(stuck_on, g_max, g)
            g = np.where(stuck_off, g_min, g)
        return np.clip(g, g_min, g_max)

    # ------------------------------------------------------------------ #
    # read-time effects
    # ------------------------------------------------------------------ #
    def apply_read(self, conductance: np.ndarray) -> np.ndarray:
        """Return conductances perturbed by one read access worth of noise."""
        g = np.asarray(conductance, dtype=np.float64)
        if self.config.read_noise_sigma <= 0.0:
            return g.copy()
        noise = self._rng.normal(0.0, self.config.read_noise_sigma, size=g.shape)
        return np.clip(g * (1.0 + noise), 0.0, None)

    def perturb_current(self, currents: np.ndarray) -> np.ndarray:
        """Apply read noise directly to bitline currents (same relative model)."""
        i = np.asarray(currents, dtype=np.float64)
        if self.config.read_noise_sigma <= 0.0:
            return i.copy()
        noise = self._rng.normal(0.0, self.config.read_noise_sigma, size=i.shape)
        return i * (1.0 + noise)

    # ------------------------------------------------------------------ #
    # pre-drawn deviates (batched crossbar backend)
    # ------------------------------------------------------------------ #
    def draw_read_deviates(self, size: int) -> np.ndarray:
        """Draw ``size`` read-noise deviates from the stream, in order.

        NumPy's :class:`~numpy.random.Generator` fills arrays sequentially
        and carries no state between calls, so one flat draw of ``n1 + n2``
        deviates is element-for-element identical to two consecutive draws of
        ``n1`` and ``n2``.  The batched crossbar path exploits this to
        pre-draw the noise of a whole input block in exactly the order the
        per-vector path would consume it, which is what makes
        :meth:`repro.rram.crossbar.AnalogCrossbar.matvec_batch` bit-identical
        to a loop of per-vector reads under seeded noise.
        """
        return self._rng.normal(0.0, self.config.read_noise_sigma, size=size)

    def apply_read_with(self, conductance: np.ndarray, deviates: np.ndarray) -> np.ndarray:
        """:meth:`apply_read` using pre-drawn deviates instead of the stream."""
        g = np.asarray(conductance, dtype=np.float64)
        return np.clip(g * (1.0 + deviates), 0.0, None)

    def perturb_current_with(self, currents: np.ndarray, deviates: np.ndarray) -> np.ndarray:
        """:meth:`perturb_current` using pre-drawn deviates."""
        return np.asarray(currents, dtype=np.float64) * (1.0 + deviates)
