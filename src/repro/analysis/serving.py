"""Serving-level analysis: load sweeps and queueing-theory validation.

:class:`ServingAnalyzer` drives the request-level simulator
(:mod:`repro.serving`) over a sweep of offered loads on a STAR chip fleet
and tabulates what a capacity planner needs — sustained throughput, tail
latencies, queue depths, fleet utilization and energy per query — plus an
M/D/1 Pollaczek–Khinchine cross-validation row for the single-chip,
no-batching limit (the regime where the simulator has a closed form to
answer to).  This is the E10 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.arrivals import PoissonArrivals
from repro.serving.batcher import NO_BATCHING, DynamicBatcher
from repro.serving.fleet import ChipFleet, ServiceModel, StarServiceModel
from repro.serving.report import ServingReport
from repro.serving.simulator import ServingSimulator
from repro.serving.theory import MD1Queue
from repro.utils.stats import relative_error
from repro.utils.validation import require_positive

__all__ = ["ServingSweepRow", "MD1ValidationRow", "ServingAnalyzer"]


@dataclass(frozen=True)
class ServingSweepRow:
    """One offered-load point of the serving sweep."""

    offered_rate_rps: float
    load_factor: float
    report: ServingReport

    @property
    def throughput_rps(self) -> float:
        """Sustained completion rate at this load."""
        return self.report.throughput_rps


@dataclass(frozen=True)
class MD1ValidationRow:
    """Simulated vs Pollaczek–Khinchine mean wait in the M/D/1 limit."""

    arrival_rate_rps: float
    utilization: float
    simulated_wait_s: float
    theory_wait_s: float

    @property
    def deviation(self) -> float:
        """Relative error of the simulated mean wait."""
        return relative_error(self.simulated_wait_s, self.theory_wait_s)


class ServingAnalyzer:
    """Load sweep + M/D/1 validation of a STAR serving fleet.

    Parameters
    ----------
    service_model:
        Batch pricing; defaults to the analytical-schedule STAR accelerator
        serving BERT-base.
    num_chips:
        Fleet size for the load sweep.
    batcher:
        Dispatch policy for the load sweep (the M/D/1 validation always
        runs single-chip, no-batching).
    seq_len:
        Served sequence length.
    num_requests:
        Requests per simulated load point.
    seed:
        Seed of the Poisson arrival streams.
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        num_chips: int = 4,
        batcher: DynamicBatcher = NO_BATCHING,
        seq_len: int = 128,
        num_requests: int = 2000,
        seed: int = 0,
    ) -> None:
        require_positive(num_chips, "num_chips")
        require_positive(num_requests, "num_requests")
        self.service_model = service_model or StarServiceModel()
        self.num_chips = num_chips
        self.batcher = batcher
        self.seq_len = seq_len
        self.num_requests = num_requests
        self.seed = seed

    # ------------------------------------------------------------------ #
    # capacity and sweeps
    # ------------------------------------------------------------------ #
    def request_service_s(self) -> float:
        """Single-request service time of one chip at the analyzer's length."""
        return self.service_model.batch_latency_s(1, self.seq_len)

    def fleet_capacity_rps(self) -> float:
        """Upper-bound completion rate of the fleet at batch size 1."""
        return self.num_chips / self.request_service_s()

    def row_for(self, load_factor: float) -> ServingSweepRow:
        """Simulate one offered load, expressed as a fraction of capacity."""
        require_positive(load_factor, "load_factor")
        rate = load_factor * self.fleet_capacity_rps()
        arrivals = PoissonArrivals(rate, seq_len=self.seq_len, seed=self.seed)
        fleet = ChipFleet(self.service_model, num_chips=self.num_chips)
        report = ServingSimulator(fleet, self.batcher).run(
            arrivals.generate(self.num_requests)
        )
        return ServingSweepRow(offered_rate_rps=rate, load_factor=load_factor, report=report)

    def sweep_rows(self, load_factors: tuple[float, ...] = (0.3, 0.6, 0.9)) -> list[ServingSweepRow]:
        """The load sweep at several fractions of fleet capacity."""
        return [self.row_for(factor) for factor in load_factors]

    # ------------------------------------------------------------------ #
    # M/D/1 cross-validation
    # ------------------------------------------------------------------ #
    def md1_validation(
        self, utilization: float = 0.7, num_requests: int = 30000
    ) -> MD1ValidationRow:
        """Single-chip no-batching run vs the Pollaczek–Khinchine formula."""
        service = self.request_service_s()
        rate = utilization / service
        arrivals = PoissonArrivals(rate, seq_len=self.seq_len, seed=self.seed)
        fleet = ChipFleet(self.service_model, num_chips=1)
        report = ServingSimulator(fleet, NO_BATCHING).run(arrivals.generate(num_requests))
        theory = MD1Queue(arrival_rate_rps=rate, service_s=service)
        return MD1ValidationRow(
            arrival_rate_rps=rate,
            utilization=utilization,
            simulated_wait_s=report.mean_wait_s,
            theory_wait_s=theory.mean_wait_s,
        )

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def format_table(self, load_factors: tuple[float, ...] = (0.3, 0.6, 0.9)) -> str:
        """Printable sweep table plus the M/D/1 validation line."""
        lines = [
            f"{'load':>6} {'rate (r/s)':>11} {'served':>8} {'p50 (ms)':>9} "
            f"{'p95 (ms)':>9} {'p99 (ms)':>9} {'batch':>6} {'util':>6} {'mJ/query':>9}"
        ]
        for row in self.sweep_rows(load_factors):
            report = row.report
            lines.append(
                f"{row.load_factor:>6.2f} {row.offered_rate_rps:>11.1f} "
                f"{report.throughput_rps:>8.1f} {report.p50_latency_s * 1e3:>9.2f} "
                f"{report.p95_latency_s * 1e3:>9.2f} {report.p99_latency_s * 1e3:>9.2f} "
                f"{report.mean_batch_size:>6.2f} {report.mean_utilization * 100:>5.1f}% "
                f"{report.energy_per_query_j * 1e3:>9.2f}"
            )
        check = self.md1_validation()
        lines.append(
            f"M/D/1 check (1 chip, no batching, rho={check.utilization:.2f}): "
            f"simulated wait {check.simulated_wait_s * 1e3:.3f} ms vs "
            f"P-K {check.theory_wait_s * 1e3:.3f} ms "
            f"({check.deviation * 100:.2f}% off)"
        )
        return "\n".join(lines)
