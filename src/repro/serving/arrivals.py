"""Request arrival processes for the serving simulator.

A *request* is one inference query: a sequence of ``seq_len`` tokens that
arrives at ``arrival_s`` and wants a full encoder forward pass.  Two
arrival processes cover the standard serving-evaluation methodology:

* :class:`PoissonArrivals` — the open-loop memoryless arrival stream used
  by queueing-theory cross-validation and load sweeps (exponential
  inter-arrival gaps at a configured offered rate);
* :class:`TraceArrivals` — replay of an explicit timestamp trace, for
  production traces or adversarial patterns (bursts, on/off phases) that
  no closed-form process expresses.

Both support fixed or per-request sequence lengths, so a heterogeneous
length mix can flow through the dynamic batcher (a batch pads to its
longest member).

Generation is fully vectorized: timestamps come from one cumulative sum
over exponential draws, validation runs once over the whole arrays, and
the :class:`Request` objects are then built through a trusted fast path
that skips per-instance re-validation — bit-identical to constructing
each request individually, an order of magnitude cheaper at millions of
requests.  :meth:`PoissonArrivals.shards` splits a stream into
statistically exact per-shard Poisson streams (rate ``lambda / k`` each,
seeded from one ``SeedSequence.spawn`` tree) for the sharded simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import (
    require_finite,
    require_finite_array,
    require_non_negative,
    require_positive,
)

__all__ = [
    "Request",
    "PoissonArrivals",
    "TraceArrivals",
    "MMPPArrivals",
    "DayCurveArrivals",
    "ClosedLoopClients",
]

#: Supported think-time distributions of :class:`ClosedLoopClients`.
THINK_DISTRIBUTIONS = ("exponential", "lognormal")


@dataclass(frozen=True, slots=True)
class Request:
    """One inference query entering the serving system.

    ``slo_class`` tags the request's service class (0 = default/best
    effort) and ``deadline_s`` is its completion SLO *relative to arrival*
    (``inf`` = no deadline) — both default to the pre-SLO behaviour, so
    untagged streams are unchanged.  The EDF batcher orders the queue by
    absolute deadline ``arrival_s + deadline_s``.
    """

    index: int
    arrival_s: float
    seq_len: int
    slo_class: int = 0
    deadline_s: float = math.inf

    def __post_init__(self) -> None:
        require_finite(self.arrival_s, "arrival_s")
        require_non_negative(self.arrival_s, "arrival_s")
        require_finite(self.seq_len, "seq_len")
        require_positive(self.seq_len, "seq_len")
        require_non_negative(self.slo_class, "slo_class")
        require_positive(self.deadline_s, "deadline_s")  # inf allowed

    @property
    def absolute_deadline_s(self) -> float:
        """The EDF sort key: when this request must have completed."""
        return self.arrival_s + self.deadline_s


def requests_from_arrays(
    times: np.ndarray,
    lens: np.ndarray,
    indices: Sequence[int] | None = None,
    slo_classes: np.ndarray | None = None,
    deadlines: np.ndarray | None = None,
) -> list[Request]:
    """Build a request list from timestamp/length arrays, validated once.

    The arrays are validated in one vectorized pass (finite, non-negative
    times; positive lengths) and the :class:`Request` objects are then
    assembled through ``object.__setattr__`` — exactly what the frozen
    dataclass's own ``__init__`` does, minus the per-instance validation
    the array pass already performed.  Output is bit-identical to calling
    ``Request(i, float(times[i]), int(lens[i]))`` in a loop.

    ``indices`` overrides the default ``0 .. n-1`` request indices, which
    shard splitters use to preserve the original stream's identities.
    ``slo_classes`` / ``deadlines`` carry per-request SLO tags through the
    same fast path (defaulting to class 0 / no deadline), so shard
    splitters preserve tagged streams exactly.
    """
    require_finite_array(times, "arrival timestamps")
    if times.size and times.min() < 0:
        index = int(np.argmin(times >= 0))
        raise ValueError(
            f"arrival timestamps must be non-negative, got {times[index]} "
            f"at index {index}"
        )
    if lens.size and lens.min() < 1:
        index = int(np.argmin(lens >= 1))
        raise ValueError(
            f"sequence lengths must be positive, got {lens[index]} at index {index}"
        )
    if lens.shape != times.shape:
        raise ValueError(f"got {lens.size} sequence lengths for {times.size} arrivals")
    if slo_classes is not None:
        if slo_classes.shape != times.shape:
            raise ValueError(
                f"got {slo_classes.size} SLO classes for {times.size} arrivals"
            )
        if slo_classes.size and slo_classes.min() < 0:
            raise ValueError("SLO classes must be non-negative")
    if deadlines is not None:
        if deadlines.shape != times.shape:
            raise ValueError(
                f"got {deadlines.size} deadlines for {times.size} arrivals"
            )
        if deadlines.size and not (deadlines > 0).all():  # NaN also fails here
            raise ValueError("deadlines must be positive (inf = no deadline)")
    index_list = range(times.size) if indices is None else indices
    classes: Iterable[int] = (
        (0,) * times.size if slo_classes is None else slo_classes.tolist()
    )
    deadline_list: Iterable[float] = (
        (math.inf,) * times.size if deadlines is None else deadlines.tolist()
    )
    new = Request.__new__
    set_field = object.__setattr__
    out: list[Request] = []
    append = out.append
    for i, t, length, slo, deadline in zip(
        index_list, times.tolist(), lens.tolist(), classes, deadline_list
    ):
        request = new(Request)
        set_field(request, "index", i)
        set_field(request, "arrival_s", t)
        set_field(request, "seq_len", length)
        set_field(request, "slo_class", slo)
        set_field(request, "deadline_s", deadline)
        append(request)
    return out


def _draw_seq_lens(
    seq_len: int | Sequence[int], count: int, rng: np.random.Generator
) -> np.ndarray:
    """Fixed length, or a uniform draw over the given choices, per request."""
    if isinstance(seq_len, (int, np.integer)):
        require_positive(int(seq_len), "seq_len")
        return np.full(count, int(seq_len), dtype=np.int64)
    choices = np.asarray(list(seq_len), dtype=np.int64)
    if choices.size == 0:
        raise ValueError("seq_len choices must not be empty")
    if choices.min() < 1:
        raise ValueError(f"sequence lengths must be positive, got {choices.min()}")
    return rng.choice(choices, size=count)


class PoissonArrivals:
    """Open-loop Poisson arrival stream at a fixed offered rate.

    ``seq_len`` is either one length for every request or a sequence of
    lengths sampled uniformly per request.  The stream is seeded and
    therefore reproducible; the same process object always generates the
    same trace for the same ``num_requests``.  ``seed`` may be an integer
    or a :class:`numpy.random.SeedSequence` (which :meth:`shards` uses to
    derive independent sub-streams).
    """

    def __init__(
        self,
        rate_rps: float,
        seq_len: int | Sequence[int] = 128,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        require_finite(rate_rps, "rate_rps")
        require_positive(rate_rps, "rate_rps")
        self.rate_rps = float(rate_rps)
        self.seq_len = seq_len
        self.seed = seed

    def generate(self, num_requests: int, index_offset: int = 0) -> list[Request]:
        """The first ``num_requests`` arrivals of the stream.

        ``index_offset`` shifts the request indices (``offset .. offset +
        n - 1``) without touching any draw — the sharded simulator uses it
        to keep indices globally unique across per-shard streams.
        """
        require_positive(num_requests, "num_requests")
        require_non_negative(index_offset, "index_offset")
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        times = np.cumsum(gaps)
        lens = _draw_seq_lens(self.seq_len, num_requests, rng)
        indices = None if index_offset == 0 else range(index_offset, index_offset + num_requests)
        return requests_from_arrays(times, lens, indices)

    def shards(self, num_shards: int) -> list["PoissonArrivals"]:
        """Split into ``num_shards`` independent rate-``lambda/k`` streams.

        This is Poisson splitting done exactly: the superposition of ``k``
        independent Poisson processes at rate ``lambda / k`` is a Poisson
        process at rate ``lambda``, so each shard's stream has precisely
        the statistics the unsharded stream would deliver to it under
        random thinning.  Every shard's generator (gap draws *and* length
        draws) comes from one ``SeedSequence.spawn`` tree rooted at this
        stream's seed, so results are reproducible for any shard count and
        shards never share draws.
        """
        require_positive(num_shards, "num_shards")
        root = (
            self.seed
            if isinstance(self.seed, np.random.SeedSequence)
            else np.random.SeedSequence(self.seed)
        )
        return [
            PoissonArrivals(self.rate_rps / num_shards, seq_len=self.seq_len, seed=child)
            for child in root.spawn(num_shards)
        ]


class TraceArrivals:
    """Replay of an explicit arrival-timestamp trace.

    ``times_s`` must be non-decreasing.  ``seq_len`` is one fixed length, a
    per-request sequence matching the trace, or a set of choices sampled
    uniformly (seeded).
    """

    def __init__(
        self,
        times_s: Sequence[float],
        seq_len: int | Sequence[int] = 128,
        seed: int = 0,
        per_request_lens: Sequence[int] | None = None,
    ) -> None:
        times = np.asarray(list(times_s), dtype=np.float64)
        if times.size == 0:
            raise ValueError("an arrival trace needs at least one timestamp")
        require_finite_array(times, "arrival timestamps")
        if times.min() < 0:
            index = int(np.argmin(times >= 0))
            raise ValueError(
                f"arrival timestamps must be non-negative, got {times[index]} "
                f"at index {index}"
            )
        decreasing = np.diff(times) < 0
        if decreasing.any():
            index = int(np.argmax(decreasing)) + 1
            raise ValueError(
                f"arrival timestamps must be non-decreasing, got {times[index]} "
                f"after {times[index - 1]} at index {index}"
            )
        if per_request_lens is not None:
            if len(per_request_lens) != times.size:
                raise ValueError(
                    f"per_request_lens has {len(per_request_lens)} entries for "
                    f"{times.size} arrivals"
                )
            lens = np.asarray(list(per_request_lens), dtype=np.float64)
            require_finite_array(lens, "per_request_lens")
            if lens.min() < 1:
                index = int(np.argmin(lens >= 1))
                raise ValueError(
                    f"per_request_lens must be positive, got {lens[index]} "
                    f"at index {index}"
                )
        self.times_s = times
        self.seq_len = seq_len
        self.seed = seed
        self.per_request_lens = (
            None if per_request_lens is None else np.asarray(per_request_lens, dtype=np.int64)
        )

    def generate(self, num_requests: int | None = None) -> list[Request]:
        """The trace's requests (optionally truncated to ``num_requests``)."""
        count = self.times_s.size if num_requests is None else min(num_requests, self.times_s.size)
        require_positive(count, "num_requests")
        if self.per_request_lens is not None:
            lens = self.per_request_lens[:count]
        else:
            rng = np.random.default_rng(self.seed)
            lens = _draw_seq_lens(self.seq_len, count, rng)
        return requests_from_arrays(self.times_s[:count], lens)


def _segment_arrivals(
    rng: np.random.Generator,
    start_s: float,
    end_s: float,
    rate_rps: float,
    out: list[np.ndarray],
) -> None:
    """Append one constant-rate segment's Poisson arrivals to ``out``.

    Within a constant-rate segment the process is homogeneous Poisson, and
    because exponential gaps are memoryless, restarting the gap draws at
    each segment boundary is distributionally exact — this is the textbook
    construction of a piecewise-constant-rate (nonhomogeneous) Poisson
    process.  Draws are chunked (mean + 4 sigma per pass) so second-long
    segments at thousands of requests per second stay vectorized.  The
    draw sequence depends only on the segment, never on how many requests
    the caller ultimately keeps, so longer generations extend shorter ones
    prefix-exactly.
    """
    t = start_s
    while True:
        expected = max(1.0, rate_rps * (end_s - t))
        chunk = int(expected + 4.0 * math.sqrt(expected) + 16.0)
        times = t + np.cumsum(rng.exponential(1.0 / rate_rps, size=chunk))
        if times[-1] >= end_s:
            out.append(times[times < end_s])
            return
        out.append(times)
        t = float(times[-1])


class MMPPArrivals:
    """Markov-modulated Poisson process: bursty arrivals with exact theory.

    A continuous-time Markov chain over ``len(rates_rps)`` states modulates
    the arrival rate: while the chain sits in state ``i`` arrivals are
    Poisson at ``rates_rps[i]``, state sojourns are exponential with rate
    ``-Q[i, i]``, and jumps land on ``j`` with probability
    ``Q[i, j] / -Q[i, i]`` — the standard two-timescale burstiness model
    (an on/off MMPP is the classic web-traffic generator).  Unlike an
    arbitrary trace, the process has closed-form statistics: the chain's
    stationary distribution ``pi`` solves ``pi Q = 0`` and the long-run
    mean arrival rate is ``pi . rates``, which the cross-validation suite
    pins the generated stream against.

    ``transitions`` is the full generator matrix ``Q`` (rows sum to zero,
    non-negative off-diagonal, strictly negative diagonal).  Generation is
    exact and prefix-deterministic: per sojourn, the segment's arrivals are
    drawn by the memoryless piecewise construction of
    :func:`_segment_arrivals`.
    """

    def __init__(
        self,
        rates_rps: Sequence[float],
        transitions: Sequence[Sequence[float]],
        seq_len: int | Sequence[int] = 128,
        seed: int | np.random.SeedSequence = 0,
        initial_state: int = 0,
    ) -> None:
        rates = np.asarray(list(rates_rps), dtype=np.float64)
        q = np.asarray(transitions, dtype=np.float64)
        if rates.ndim != 1 or rates.size < 2:
            raise ValueError("an MMPP needs at least two modulating states")
        require_finite_array(rates, "rates_rps")
        if rates.min() < 0:
            raise ValueError(f"arrival rates must be non-negative, got {rates.min()}")
        if rates.max() <= 0:
            raise ValueError("at least one MMPP state must have a positive rate")
        if q.shape != (rates.size, rates.size):
            raise ValueError(
                f"transition matrix shape {q.shape} does not match "
                f"{rates.size} states"
            )
        require_finite_array(q, "transitions")
        off_diag = q[~np.eye(rates.size, dtype=bool)]
        if off_diag.size and off_diag.min() < 0:
            raise ValueError("off-diagonal transition rates must be non-negative")
        if np.abs(q.sum(axis=1)).max() > 1e-9 * max(1.0, np.abs(q).max()):
            raise ValueError("generator-matrix rows must sum to zero")
        if np.diagonal(q).max() >= 0:
            raise ValueError(
                "every state needs a positive exit rate (strictly negative "
                "diagonal); an absorbing state has no stationary statistics"
            )
        if not 0 <= initial_state < rates.size:
            raise ValueError(
                f"initial_state must name one of {rates.size} states, "
                f"got {initial_state}"
            )
        self.rates_rps = rates
        self.transitions = q
        self.seq_len = seq_len
        self.seed = seed
        self.initial_state = int(initial_state)

    @classmethod
    def on_off(
        cls,
        burst_rate_rps: float,
        base_rate_rps: float = 0.0,
        burst_s: float = 1.0,
        duty: float = 0.5,
        seq_len: int | Sequence[int] = 128,
        seed: int | np.random.SeedSequence = 0,
    ) -> "MMPPArrivals":
        """The classic two-state burst model.

        Bursts at ``burst_rate_rps`` last ``burst_s`` on average and cover
        a ``duty`` fraction of time; between bursts the rate drops to
        ``base_rate_rps`` (0 = pure on/off).
        """
        require_positive(burst_rate_rps, "burst_rate_rps")
        require_non_negative(base_rate_rps, "base_rate_rps")
        require_positive(burst_s, "burst_s")
        if not 0.0 < duty < 1.0:
            raise ValueError(f"duty must lie strictly in (0, 1), got {duty}")
        on_exit = 1.0 / burst_s
        off_exit = on_exit * duty / (1.0 - duty)
        return cls(
            rates_rps=(burst_rate_rps, base_rate_rps),
            transitions=((-on_exit, on_exit), (off_exit, -off_exit)),
            seq_len=seq_len,
            seed=seed,
        )

    @property
    def num_states(self) -> int:
        """Modulating states of the underlying chain."""
        return self.rates_rps.size

    @property
    def stationary_distribution(self) -> np.ndarray:
        """The chain's stationary distribution: ``pi Q = 0``, ``sum(pi) = 1``."""
        n = self.num_states
        system = np.vstack([self.transitions.T, np.ones(n)])
        target = np.zeros(n + 1)
        target[-1] = 1.0
        pi, *_ = np.linalg.lstsq(system, target, rcond=None)
        return np.clip(pi, 0.0, None) / np.clip(pi, 0.0, None).sum()

    @property
    def mean_rate_rps(self) -> float:
        """Long-run mean arrival rate ``pi . rates`` — the pinnable figure."""
        return float(self.stationary_distribution @ self.rates_rps)

    @property
    def burstiness(self) -> float:
        """Peak state rate over the mean rate (1.0 = not bursty at all)."""
        return float(self.rates_rps.max()) / self.mean_rate_rps

    def generate(self, num_requests: int, index_offset: int = 0) -> list[Request]:
        """The first ``num_requests`` arrivals of the modulated stream."""
        require_positive(num_requests, "num_requests")
        require_non_negative(index_offset, "index_offset")
        rng = np.random.default_rng(self.seed)
        state = self.initial_state
        exit_rates = -np.diagonal(self.transitions)
        jump = np.clip(np.asarray(self.transitions), 0.0, None)
        jump /= jump.sum(axis=1, keepdims=True)
        t = 0.0
        pieces: list[np.ndarray] = []
        count = 0
        while count < num_requests:
            sojourn = rng.exponential(1.0 / exit_rates[state])
            rate = self.rates_rps[state]
            if rate > 0.0 and sojourn > 0.0:
                before = len(pieces)
                _segment_arrivals(rng, t, t + sojourn, rate, pieces)
                count += sum(piece.size for piece in pieces[before:])
            t += sojourn
            state = int(rng.choice(self.num_states, p=jump[state]))
        times = np.concatenate(pieces)[:num_requests]
        lens = _draw_seq_lens(self.seq_len, num_requests, rng)
        indices = None if index_offset == 0 else range(index_offset, index_offset + num_requests)
        return requests_from_arrays(times, lens, indices)


#: A stylized diurnal load curve: 24 hourly multipliers with a deep
#: overnight trough and a mid-afternoon peak (roughly 5:1 peak-to-trough),
#: the shape capacity planners autoscale against.
DEFAULT_DAY_CURVE = (
    0.35, 0.25, 0.20, 0.18, 0.20, 0.30,
    0.50, 0.80, 1.10, 1.30, 1.42, 1.48,
    1.50, 1.48, 1.45, 1.42, 1.38, 1.32,
    1.25, 1.15, 1.00, 0.82, 0.62, 0.45,
)


class DayCurveArrivals:
    """Diurnal traffic: a piecewise-constant day curve over a mean rate.

    ``curve`` gives relative load per equal-width bin of the ``period_s``
    cycle (the default is a stylized 24-hour curve); it is normalized so
    its mean is exactly 1, making the long-run arrival rate exactly
    ``mean_rate_rps`` whatever curve shape is passed.  Within each bin the
    stream is Poisson at the bin's rate — the exact piecewise-constant
    construction of :func:`_segment_arrivals` — so autoscaler experiments
    get real diurnal swings with known statistics.  Bins with multiplier 0
    are genuinely silent.
    """

    def __init__(
        self,
        mean_rate_rps: float,
        curve: Sequence[float] = DEFAULT_DAY_CURVE,
        period_s: float = 86400.0,
        seq_len: int | Sequence[int] = 128,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        require_finite(mean_rate_rps, "mean_rate_rps")
        require_positive(mean_rate_rps, "mean_rate_rps")
        require_finite(period_s, "period_s")
        require_positive(period_s, "period_s")
        shape = np.asarray(list(curve), dtype=np.float64)
        if shape.size < 1:
            raise ValueError("the day curve needs at least one bin")
        require_finite_array(shape, "curve")
        if shape.min() < 0:
            raise ValueError(f"curve multipliers must be non-negative, got {shape.min()}")
        if shape.max() <= 0:
            raise ValueError("the day curve must have at least one positive bin")
        self.mean_rate_rps = float(mean_rate_rps)
        self.curve = shape / shape.mean()  # normalized: mean multiplier == 1
        self.period_s = float(period_s)
        self.seq_len = seq_len
        self.seed = seed

    @property
    def num_bins(self) -> int:
        """Bins per period (24 for the default hourly day curve)."""
        return self.curve.size

    @property
    def bin_s(self) -> float:
        """Width of one curve bin."""
        return self.period_s / self.num_bins

    def rate_at(self, time_s: float) -> float:
        """Instantaneous offered rate at ``time_s`` (periodic)."""
        require_non_negative(time_s, "time_s")
        bin_index = int((time_s % self.period_s) / self.bin_s)
        return self.mean_rate_rps * float(self.curve[min(bin_index, self.num_bins - 1)])

    @property
    def peak_rate_rps(self) -> float:
        """Offered rate of the busiest bin — what peak provisioning sizes for."""
        return self.mean_rate_rps * float(self.curve.max())

    def generate(self, num_requests: int, index_offset: int = 0) -> list[Request]:
        """The first ``num_requests`` arrivals of the diurnal stream."""
        require_positive(num_requests, "num_requests")
        require_non_negative(index_offset, "index_offset")
        rng = np.random.default_rng(self.seed)
        pieces: list[np.ndarray] = []
        count = 0
        bin_index = 0
        while count < num_requests:
            start = bin_index * self.bin_s
            rate = self.mean_rate_rps * float(self.curve[bin_index % self.num_bins])
            if rate > 0.0:
                before = len(pieces)
                _segment_arrivals(rng, start, start + self.bin_s, rate, pieces)
                count += sum(piece.size for piece in pieces[before:])
            bin_index += 1
        times = np.concatenate(pieces)[:num_requests]
        lens = _draw_seq_lens(self.seq_len, num_requests, rng)
        indices = None if index_offset == 0 else range(index_offset, index_offset + num_requests)
        return requests_from_arrays(times, lens, indices)


def _per_client(value, num_clients: int, name: str) -> np.ndarray:
    """Broadcast one scalar, or validate one entry per client."""
    if np.ndim(value) == 0:
        return np.full(num_clients, value)
    out = np.asarray(list(value))
    if out.size != num_clients:
        raise ValueError(f"got {out.size} {name} entries for {num_clients} clients")
    return out


class ClosedLoopClients:
    """A closed population of clients with think time between requests.

    Unlike the open-loop processes above, these arrivals *react to the
    system*: each of ``num_clients`` users issues one request, waits for
    its completion, thinks for a random time, and issues the next — so a
    slow fleet throttles its own offered load instead of growing an
    unbounded queue.  This is the interactive-system model of classical
    closed queueing theory: with exponential service the single-chip limit
    is the machine-repair M/M/1//N queue whose throughput and response
    time :class:`~repro.serving.theory.MachineRepairQueue` gives in closed
    form.

    Think times are exponential with mean ``think_s`` or lognormal with
    the same mean (``think_sigma`` shapes the log scale; the location is
    mean-preserving, so theory comparisons keep their ``Z``).  Per-client
    ``slo_class`` / ``deadline_s`` let one population mix service classes
    — e.g. interactive clients with tight deadlines alongside batch
    clients with loose ones.  Clients start thinking at time 0 (the
    standard initial condition).  All draws come from one seeded
    generator, consumed in event order by the simulator's closed loop, so
    runs are exactly reproducible.
    """

    def __init__(
        self,
        num_clients: int,
        think_s: float,
        think_distribution: str = "exponential",
        think_sigma: float = 1.0,
        seq_len: int | Sequence[int] = 128,
        slo_class: int | Sequence[int] = 0,
        deadline_s: float | Sequence[float] = math.inf,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        require_positive(num_clients, "num_clients")
        require_finite(think_s, "think_s")
        require_positive(think_s, "think_s")
        if think_distribution not in THINK_DISTRIBUTIONS:
            raise ValueError(
                f"think_distribution must be one of {THINK_DISTRIBUTIONS}, "
                f"got {think_distribution!r}"
            )
        require_positive(think_sigma, "think_sigma")
        self.num_clients = int(num_clients)
        self.think_s = float(think_s)
        self.think_distribution = think_distribution
        self.think_sigma = float(think_sigma)
        self.seq_len = seq_len
        self.slo_classes = _per_client(slo_class, self.num_clients, "slo_class").astype(
            np.int64
        )
        if self.slo_classes.min() < 0:
            raise ValueError("SLO classes must be non-negative")
        self.deadlines_s = _per_client(
            deadline_s, self.num_clients, "deadline_s"
        ).astype(np.float64)
        if not (self.deadlines_s > 0).all():
            raise ValueError("deadlines must be positive (inf = no deadline)")
        self.seed = seed

    def session(self) -> "ClientSession":
        """A fresh draw stream for one simulation run."""
        return ClientSession(self)


class ClientSession:
    """The consumable randomness of one closed-loop run.

    Think times and sequence lengths are drawn in buffered chunks (one
    vectorized draw per ~1024 requests) but handed out one at a time in
    the order the event loop asks, so the stream is deterministic in the
    seed and cheap at tens of thousands of requests.
    """

    _CHUNK = 1024

    def __init__(self, clients: ClosedLoopClients) -> None:
        self.clients = clients
        self._rng = np.random.default_rng(clients.seed)
        self._think: list[float] = []
        self._lens: list[int] = []
        fixed = isinstance(clients.seq_len, (int, np.integer))
        self._fixed_len = int(clients.seq_len) if fixed else None
        if self._fixed_len is not None:
            require_positive(self._fixed_len, "seq_len")

    def next_think_s(self) -> float:
        """One think-time draw (exponential or mean-preserving lognormal)."""
        if not self._think:
            clients = self.clients
            if clients.think_distribution == "exponential":
                draws = self._rng.exponential(clients.think_s, size=self._CHUNK)
            else:
                sigma = clients.think_sigma
                mu = math.log(clients.think_s) - 0.5 * sigma * sigma
                draws = self._rng.lognormal(mu, sigma, size=self._CHUNK)
            self._think = draws.tolist()
        return self._think.pop()

    def next_seq_len(self) -> int:
        """One sequence-length draw (fixed lengths never touch the rng)."""
        if self._fixed_len is not None:
            return self._fixed_len
        if not self._lens:
            self._lens = _draw_seq_lens(
                self.clients.seq_len, self._CHUNK, self._rng
            ).tolist()
        return self._lens.pop()

    def slo_class_of(self, client: int) -> int:
        """The service class of one client's requests."""
        return int(self.clients.slo_classes[client])

    def deadline_of(self, client: int) -> float:
        """The relative completion deadline of one client's requests."""
        return float(self.clients.deadlines_s[client])
