"""Sharded multi-process serving simulation: millions of requests in minutes.

The single-process simulator funnels every event through one Python
:class:`~repro.core.events.EventLoop`, which caps throughput around a few
hundred thousand events per second.  This module scales *out* instead of
up, exploiting the structure of the serving model: with one fleet-wide
FIFO queue split into ``k`` independent sub-fleets, the sub-systems share
nothing — no queue state, no chip state, no RNG stream — so each can run
in its own worker process and the per-shard
:class:`~repro.serving.report.ServingReport` objects merge exactly
(:meth:`~repro.serving.report.ServingReport.merge` pools the full latency
samples, so merged percentiles are the percentiles of the pooled samples,
not an approximation).

Two ways to feed the shards:

* :meth:`ShardedServingSimulator.run` — split an explicit request list by
  a front-end policy: ``round_robin`` (deterministic interleave),
  ``seq_hash`` (sticky by sequence length, so a shard sees a consistent
  length mix — the routing-study splitter) or ``random`` (seeded Bernoulli
  thinning — the statistically exact split of a Poisson stream, under
  which each shard's arrivals are again Poisson at rate ``lambda / k``).
  Round-robin thins a Poisson stream into Erlang-``k`` shard streams:
  smoother than Poisson, so per-shard waits are *optimistic* relative to
  true thinning — fine for capacity screening, wrong for tail-latency
  claims; use ``random`` or :meth:`~ShardedServingSimulator.run_poisson`
  for those.
* :meth:`ShardedServingSimulator.run_poisson` — hand each worker its own
  rate-``lambda/k`` :class:`~repro.serving.arrivals.PoissonArrivals`
  sub-stream (from :meth:`~repro.serving.arrivals.PoissonArrivals.shards`,
  i.e. one ``SeedSequence.spawn`` tree), so arrival *generation* is
  parallelized too and no request ever crosses a process boundary.

Determinism: every random stream — per-shard arrivals, per-shard fault
processes, retry jitter, per-shard fidelity-sampling streams
(:class:`~repro.serving.fleet.TieredServiceModel`) — derives from one
``SeedSequence.spawn`` tree
rooted at the user's seed, so the same seed and shard count reproduce the
same merged report whether shards run serially in-process
(``parallel=False``) or across worker processes, on any worker count.

What crosses the process boundary stays small: shard tasks carry the
sub-fleet's service models (pre-warm with
:meth:`ShardedServingSimulator.prewarm` /
:meth:`~repro.serving.fleet.ChipFleet.tabulated` to ship plain timing
tables instead of accelerator objects, so no shard re-prices the
workload) and either an arrival-process spec or compact numpy arrays;
results return as columnar array-backed reports.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.serving.arrivals import PoissonArrivals, Request, requests_from_arrays
from repro.serving.autoscale import Autoscaler
from repro.serving.batcher import NO_BATCHING, DynamicBatcher
from repro.serving.faults import AdmissionController, FaultInjector, RetryPolicy
from repro.serving.fleet import ChipFleet, ServiceModel, TieredServiceModel
from repro.serving.profiling import PROFILER, RunProfile
from repro.serving.report import BatchTable, RequestTable, RoutingStats, ServingReport
from repro.serving.routing import Router
from repro.serving.simulator import ServingSimulator
from repro.utils.validation import require_positive

__all__ = ["SPLIT_POLICIES", "ShardedServingSimulator"]

#: Front-end request-to-shard assignment policies for :meth:`run`.
SPLIT_POLICIES = ("round_robin", "seq_hash", "random")

#: Knuth's multiplicative hash constant — spreads consecutive sequence
#: lengths across shards instead of striding them (seq_len % k would send
#: every length of one residue class to one shard).
_HASH_MULTIPLIER = 2654435761


@dataclass
class _ShardTask:
    """Everything one worker needs to simulate its shard, kept picklable."""

    shard: int
    num_shards: int
    models: tuple[ServiceModel, ...]
    speedups: tuple[float, ...]
    batcher: DynamicBatcher
    faults: FaultInjector | None
    retry: RetryPolicy | None
    admission: AdmissionController | None
    autoscaler: Autoscaler | None = None
    router: Router | None = None
    # explicit split: compact arrays (rebuilt into requests in the worker)
    times: np.ndarray | None = None
    lens: np.ndarray | None = None
    indices: np.ndarray | None = None
    slo_classes: np.ndarray | None = None
    deadlines: np.ndarray | None = None
    # generated split: an arrival process the worker runs itself
    arrivals: PoissonArrivals | None = None
    num_requests: int = 0
    index_offset: int = 0


def _empty_report(
    fleet: ChipFleet, simulator: ServingSimulator
) -> ServingReport:
    """A zero-request report for a shard the splitter left empty.

    Keeps the merge well-formed (the shard's chips still count toward the
    fleet) instead of failing a run because one shard of many got nothing.
    """
    retry = simulator.retry if simulator.retry is not None else RetryPolicy()
    autoscaled = simulator.autoscaler is not None
    routing = None
    if simulator.router is not None:
        # a routed empty shard still contributes its (all-zero) queue
        # columns, keeping the merged per-queue layout chip-aligned
        routing = RoutingStats(
            policy=simulator.router.policy,
            stealing=simulator.router.stealing,
            num_routed=0,
            local_batches=0,
            stolen_batches=0,
            route_network_s=0.0,
            steal_network_s=0.0,
            queue_peaks=(0,) * fleet.num_chips,
            queue_requests=(0,) * fleet.num_chips,
            queue_wait_s=(0.0,) * fleet.num_chips,
        )
    return ServingReport(
        num_chips=fleet.num_chips,
        requests=RequestTable.empty(),
        batches=BatchTable.empty(),
        chip_busy_s=(0.0,) * fleet.num_chips,
        queue_peak=0,
        chip_idle_power_w=tuple(
            fleet.idle_power_w(chip) for chip in range(fleet.num_chips)
        ),
        deadline_s=retry.deadline_s if simulator.fault_aware else None,
        faults_enabled=simulator.fault_aware,
        # keep the merged per-chip sleep columns aligned: an empty autoscaled
        # shard still contributes one (zero) entry per chip
        chip_sleep_s=(0.0,) * fleet.num_chips if autoscaled else (),
        chip_sleep_power_w=tuple(
            fleet.sleep_power_w(chip) for chip in range(fleet.num_chips)
        )
        if autoscaled
        else (),
        autoscale_enabled=autoscaled,
        routing=routing,
    )


def _simulate_shard(task: _ShardTask) -> tuple[ServingReport, RunProfile | None]:
    """Run one shard to completion (module-level so worker pools can pickle it)."""
    fleet = ChipFleet(service_models=task.models, speedups=task.speedups)
    simulator = ServingSimulator(
        fleet,
        task.batcher,
        faults=task.faults,
        retry=task.retry,
        admission=task.admission,
        autoscaler=task.autoscaler,
        router=task.router,
    )
    if task.arrivals is not None:
        requests = task.arrivals.generate(task.num_requests, task.index_offset)
    else:
        requests = requests_from_arrays(
            task.times,
            task.lens,
            task.indices.tolist(),
            slo_classes=task.slo_classes,
            deadlines=task.deadlines,
        )
    if not requests:
        return _empty_report(fleet, simulator), None
    report = simulator.run(requests, label=f"shard {task.shard}/{task.num_shards}")
    return report, simulator.last_profile


class ShardedServingSimulator:
    """Partition a fleet and arrival stream across worker processes.

    The fleet's chips are split contiguously into ``num_shards`` sub-fleets
    (as even as the division allows; ``num_chips >= num_shards`` required)
    and each shard runs a full :class:`~repro.serving.simulator.ServingSimulator`
    — healthy or fault-aware — on its slice of the traffic.  Per-shard
    fault processes derive from one ``SeedSequence.spawn`` tree over the
    injector's seed, so no two shards share draws and results reproduce
    for any worker count.

    ``parallel=False`` runs the shards serially in the calling process —
    bit-identical results (useful for tests and coverage), no speedup.
    ``max_workers`` caps the process pool (default: one worker per shard,
    bounded by the machine's CPU count).
    """

    def __init__(
        self,
        fleet: ChipFleet,
        batcher: DynamicBatcher = NO_BATCHING,
        num_shards: int = 2,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        admission: AdmissionController | None = None,
        autoscaler: Autoscaler | None = None,
        router: Router | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
    ) -> None:
        require_positive(num_shards, "num_shards")
        if fleet.num_chips < num_shards:
            raise ValueError(
                f"cannot shard {fleet.num_chips} chip(s) across {num_shards} "
                f"shards; need at least one chip per shard"
            )
        if max_workers is not None:
            require_positive(max_workers, "max_workers")
        self.fleet = fleet
        self.batcher = batcher
        self.num_shards = num_shards
        self.faults = faults
        self.retry = retry
        self.admission = admission
        self.autoscaler = autoscaler
        self.router = router
        self.parallel = parallel
        self.max_workers = max_workers
        #: Per-shard reports and hot-path profiles of the latest run.
        self.last_reports: list[ServingReport] = []
        self.last_profiles: list[RunProfile] = []

    # ------------------------------------------------------------------ #
    # partitioning
    # ------------------------------------------------------------------ #
    def prewarm(
        self, batch_sizes: Sequence[int], seq_lens: Sequence[int]
    ) -> "ShardedServingSimulator":
        """Freeze the fleet's pricing into tables before sharding.

        Prices the whole ``batch x seq_len`` grid once in the calling
        process (:meth:`~repro.serving.fleet.ChipFleet.tabulated`), so
        workers receive plain timing tables and never touch an accelerator
        model.  Tiered models additionally get their executed-schedule
        templates cold-built here over the same grid, so workers only ever
        resample prebuilt templates.  Returns ``self`` for chaining.
        """
        self.fleet = self.fleet.tabulated(batch_sizes, seq_lens)
        return self

    def _chip_slices(self) -> list[slice]:
        base, extra = divmod(self.fleet.num_chips, self.num_shards)
        slices = []
        start = 0
        for shard in range(self.num_shards):
            count = base + (1 if shard < extra else 0)
            slices.append(slice(start, start + count))
            start += count
        return slices

    def _shard_faults(self) -> list[FaultInjector | None]:
        if self.faults is None:
            return [None] * self.num_shards
        root = (
            self.faults.seed
            if isinstance(self.faults.seed, np.random.SeedSequence)
            else np.random.SeedSequence(self.faults.seed)
        )
        return [
            replace(self.faults, seed=child) for child in root.spawn(self.num_shards)
        ]

    def _shard_models(self) -> list[tuple[ServiceModel, ...]]:
        """Per-shard model tuples, with tiered models reseeded per shard.

        A :class:`~repro.serving.fleet.TieredServiceModel` advances a
        sampling stream as it prices, so shards must not share one
        instance: every ``(model, shard)`` pair gets a fresh copy seeded
        by an independent ``SeedSequence`` child off the model's own seed.
        The copies are built here — before execution forks — so serial
        (``parallel=False``) and worker-pool runs consume identical
        generator states and stay bit-identical.
        """
        slices = self._chip_slices()
        tiered: dict[int, list[TieredServiceModel]] = {}
        for model in self.fleet.models:
            if isinstance(model, TieredServiceModel) and id(model) not in tiered:
                root = (
                    model.seed
                    if isinstance(model.seed, np.random.SeedSequence)
                    else np.random.SeedSequence(model.seed)
                )
                tiered[id(model)] = [
                    model.with_seed(child) for child in root.spawn(self.num_shards)
                ]
        return [
            tuple(
                tiered[id(model)][shard] if id(model) in tiered else model
                for model in self.fleet.models[chips]
            )
            for shard, chips in enumerate(slices)
        ]

    def _tasks(self) -> list[_ShardTask]:
        faults = self._shard_faults()
        models = self._shard_models()
        # per-queue topology partitions with the chips: each shard's
        # router keeps its own slice of the per-link latencies
        return [
            _ShardTask(
                shard=shard,
                num_shards=self.num_shards,
                models=models[shard],
                speedups=self.fleet.speedups[chips],
                batcher=self.batcher,
                faults=faults[shard],
                retry=self.retry,
                admission=self.admission,
                autoscaler=self.autoscaler,
                router=self.router.for_chips(chips)
                if self.router is not None
                else None,
            )
            for shard, chips in enumerate(self._chip_slices())
        ]

    def _assign(
        self, requests: Sequence[Request], policy: str, seed: int
    ) -> np.ndarray:
        """Shard id per request under the front-end splitter policy."""
        if policy == "round_robin":
            return np.arange(len(requests), dtype=np.int64) % self.num_shards
        if policy == "seq_hash":
            lens = np.fromiter(
                (r.seq_len for r in requests), dtype=np.int64, count=len(requests)
            )
            return (lens * _HASH_MULTIPLIER % (1 << 32)) % self.num_shards
        if policy == "random":
            rng = np.random.default_rng(seed)
            return rng.integers(0, self.num_shards, size=len(requests))
        raise ValueError(f"policy must be one of {SPLIT_POLICIES}, got {policy!r}")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute(self, tasks: list[_ShardTask]) -> ServingReport:
        if self.parallel and len(tasks) > 1:
            methods = multiprocessing.get_all_start_methods()
            # fork shares the parent's warmed state (pricing tables, code)
            # for free; fall back to the platform default elsewhere
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            workers = min(
                len(tasks), self.max_workers or os.cpu_count() or 1
            )
            with context.Pool(processes=workers) as pool:
                results = pool.map(_simulate_shard, tasks, chunksize=1)
        else:
            results = [_simulate_shard(task) for task in tasks]
        reports = [report for report, _ in results]
        profiles = [profile for _, profile in results if profile is not None]
        self.last_reports = reports
        self.last_profiles = profiles
        for profile in profiles:  # subprocess profilers die with the worker
            PROFILER.record(profile)
        merged = ServingReport.merge(reports)
        return merged

    def run(
        self,
        requests: Sequence[Request],
        policy: str = "round_robin",
        seed: int = 0,
    ) -> ServingReport:
        """Split an explicit request list across the shards and serve it.

        ``policy`` picks the front-end splitter (:data:`SPLIT_POLICIES`);
        ``seed`` only matters for ``"random"``.  Requests keep their
        original indices, so the merged report's request identities match
        the input stream.
        """
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        assignment = self._assign(requests, policy, seed)
        times = np.fromiter(
            (r.arrival_s for r in requests), dtype=np.float64, count=len(requests)
        )
        lens = np.fromiter(
            (r.seq_len for r in requests), dtype=np.int64, count=len(requests)
        )
        indices = np.fromiter(
            (r.index for r in requests), dtype=np.int64, count=len(requests)
        )
        slo_classes = np.fromiter(
            (r.slo_class for r in requests), dtype=np.int64, count=len(requests)
        )
        deadlines = np.fromiter(
            (r.deadline_s for r in requests), dtype=np.float64, count=len(requests)
        )
        # ship the SLO columns only when some request is actually tagged,
        # keeping untagged shard tasks byte-identical to the pre-SLO format
        tagged = bool(slo_classes.any() or np.isfinite(deadlines).any())
        tasks = self._tasks()
        for shard, task in enumerate(tasks):
            mine = assignment == shard
            task.times = times[mine]
            task.lens = lens[mine]
            task.indices = indices[mine]
            if tagged:
                task.slo_classes = slo_classes[mine]
                task.deadlines = deadlines[mine]
        return self._execute(tasks)

    def run_poisson(
        self, arrivals: PoissonArrivals, num_requests: int
    ) -> ServingReport:
        """Serve ``num_requests`` of a Poisson stream, split exactly.

        The stream is split by :meth:`~repro.serving.arrivals.PoissonArrivals.shards`
        — ``k`` independent rate-``lambda/k`` processes from one
        ``SeedSequence.spawn`` tree, the statistically exact decomposition
        of a Poisson process — and each worker *generates its own
        arrivals*, so for large runs neither the request list nor its
        arrays ever cross a process boundary.  Each shard serves
        ``num_requests / num_shards`` requests (the first shards take the
        remainder), with globally unique request indices.
        """
        require_positive(num_requests, "num_requests")
        if num_requests < self.num_shards:
            raise ValueError(
                f"cannot split {num_requests} request(s) across "
                f"{self.num_shards} shards"
            )
        streams = arrivals.shards(self.num_shards)
        base, extra = divmod(num_requests, self.num_shards)
        tasks = self._tasks()
        offset = 0
        for shard, task in enumerate(tasks):
            count = base + (1 if shard < extra else 0)
            task.arrivals = streams[shard]
            task.num_requests = count
            task.index_offset = offset
            offset += count
        return self._execute(tasks)
