"""Algorithmic softmax variants: exact, STAR fixed-point, and Softermax base-2.

These are *functional* models — they compute what the respective hardware
produces, without simulating crossbar currents — and are therefore fast
enough to run inside full BERT-base inference for the accuracy experiments
(E4, E8 in DESIGN.md).  The cycle/energy-accurate counterpart of
:class:`FixedPointSoftmax` lives in :mod:`repro.core.softmax_engine`; a test
asserts the two produce identical numerics on the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.functional import softmax as exact_softmax
from repro.utils.fixed_point import FixedPointFormat

__all__ = ["ReferenceSoftmax", "FixedPointSoftmax", "Base2Softmax"]


@dataclass(frozen=True)
class ReferenceSoftmax:
    """Exact floating-point softmax (wrapper, so it is interchangeable)."""

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Exact softmax along ``axis``."""
        return exact_softmax(x, axis=axis)


@dataclass(frozen=True)
class FixedPointSoftmax:
    """Functional model of STAR's fixed-point softmax datapath.

    The datapath (Fig. 1 and Fig. 2 of the paper) is:

    1. quantise the input scores to the fixed-point format determined by the
       bit-width analysis (e.g. 8 bits = 6 integer + 2 fractional for CNEWS);
    2. find the maximum and subtract: ``d_i = x_max - x_i >= 0`` (the sign is
       dropped, which is exact because the difference is never positive);
    3. look up ``e^{-d_i}`` in the LUT, whose entries are
       ``round(e^{x} * 2^m) * 2^{-m}`` with ``m = lut_frac_bits``;
    4. accumulate the denominator from the same LUT values (in hardware the
       counters + VMM crossbar produce exactly this sum);
    5. divide, with the quotient truncated to ``quotient_bits`` fractional
       bits (the digital divider's output precision).

    Attributes
    ----------
    fmt:
        Fixed-point format of the quantised scores.
    lut_frac_bits:
        ``m`` in the LUT quantisation rule (the paper's Fig. 2 uses 4).
    quotient_bits:
        Fractional bits kept by the final divider; 0 keeps full precision,
        which is useful when isolating LUT error in tests.
    """

    fmt: FixedPointFormat
    lut_frac_bits: int = 4
    quotient_bits: int = 0

    def __post_init__(self) -> None:
        if self.lut_frac_bits < 1:
            raise ValueError(f"lut_frac_bits must be >= 1, got {self.lut_frac_bits}")
        if self.quotient_bits < 0:
            raise ValueError(f"quotient_bits must be >= 0, got {self.quotient_bits}")

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fixed-point softmax along ``axis``."""
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, axis, -1)

        # 1. quantise the scores; clip to the offset-binary signed range the
        #    engine's CAM code space can hold (e.g. [-32, +31.75] for CNEWS)
        clipped = np.clip(moved, self.fmt.signed_min_value, self.fmt.signed_max_value)
        quantised = np.rint(clipped / self.fmt.resolution) * self.fmt.resolution

        # 2. x_max - x_i, always >= 0; saturate to the unsigned magnitude range
        x_max = np.max(quantised, axis=-1, keepdims=True)
        diff = np.clip(x_max - quantised, 0.0, self.fmt.max_value)

        # 3. LUT exponential: round(e^{-d} * 2^m) * 2^{-m}
        lut_scale = float(1 << self.lut_frac_bits)
        exps = np.rint(np.exp(-diff) * lut_scale) / lut_scale

        # 4. denominator from the same quantised values
        denom = np.sum(exps, axis=-1, keepdims=True)
        # an all-zero row can only occur if every LUT entry rounded to zero;
        # hardware would output a uniform distribution (divider saturates)
        safe_denom = np.where(denom > 0.0, denom, 1.0)
        probs = exps / safe_denom
        uniform = np.full_like(probs, 1.0 / probs.shape[-1])
        probs = np.where(denom > 0.0, probs, uniform)

        # 5. divider output quantisation
        if self.quotient_bits > 0:
            q_scale = float(1 << self.quotient_bits)
            probs = np.floor(probs * q_scale) / q_scale

        return np.moveaxis(probs, -1, axis)


@dataclass(frozen=True)
class Base2Softmax:
    """Softermax-style base-2 softmax (functional model of the CMOS baseline).

    Softermax (Stevens et al., 2021) replaces ``e^x`` with ``2^x`` so the
    exponential becomes a shift, and computes the running maximum online.
    Functionally the output equals ``2^{x_i - x_max} / sum_j 2^{x_j - x_max}``
    with the inputs quantised to ``input_bits`` and the un-normalised terms
    kept at ``term_bits`` of fraction.

    When ``correct_scale`` is true the scores are pre-multiplied by
    ``log2(e)`` so the result approximates the true softmax (this is the
    "no-retraining" deployment mode); otherwise the raw base-2 form is used.
    """

    input_bits: int = 8
    term_bits: int = 8
    correct_scale: bool = True

    def __post_init__(self) -> None:
        if self.input_bits < 2:
            raise ValueError(f"input_bits must be >= 2, got {self.input_bits}")
        if self.term_bits < 1:
            raise ValueError(f"term_bits must be >= 1, got {self.term_bits}")

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Base-2 softmax along ``axis``."""
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, axis, -1)
        if self.correct_scale:
            moved = moved * np.log2(np.e)

        # fixed-point input quantisation with a symmetric range sized from data
        max_abs = np.max(np.abs(moved))
        scale = max_abs if max_abs > 0 else 1.0
        levels = (1 << (self.input_bits - 1)) - 1
        quantised = np.rint(moved / scale * levels) / levels * scale

        x_max = np.max(quantised, axis=-1, keepdims=True)
        terms = np.power(2.0, quantised - x_max)
        term_scale = float(1 << self.term_bits)
        terms = np.rint(terms * term_scale) / term_scale

        denom = np.sum(terms, axis=-1, keepdims=True)
        safe_denom = np.where(denom > 0.0, denom, 1.0)
        probs = terms / safe_denom
        uniform = np.full_like(probs, 1.0 / probs.shape[-1])
        probs = np.where(denom > 0.0, probs, uniform)
        return np.moveaxis(probs, -1, axis)
