"""Behavioural RRAM (resistive RAM) cell model.

The model captures the aspects of a memristive cell that matter for an
architecture-level simulator such as STAR:

* a finite conductance window ``[g_min, g_max]`` (the inverse of the
  high-resistance / low-resistance states, HRS / LRS);
* a finite number of programmable conductance levels per cell
  (``bits_per_cell``);
* read voltage and per-access read energy / latency;
* programming (SET/RESET) pulse energy and latency, used by the
  write-cost model when crossbars are (re)programmed.

The default numbers follow the HfO2-based devices commonly assumed in the
PIM-accelerator literature (ISAAC, PipeLayer, NeuroSim examples):
``R_on = 100 kOhm``, ``R_off = 10 MOhm``, 2 bits per cell, 0.3 V read
voltage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require_in_range, require_positive

__all__ = ["RRAMDeviceConfig", "RRAMDevice"]


@dataclass(frozen=True)
class RRAMDeviceConfig:
    """Static parameters of an RRAM cell.

    Attributes
    ----------
    r_on_ohm / r_off_ohm:
        Low-resistance and high-resistance state resistances.
    bits_per_cell:
        Number of bits stored per device; the number of programmable
        conductance levels is ``2 ** bits_per_cell``.
    read_voltage_v:
        Voltage applied on the wordline during a read / compute access.
    read_pulse_s:
        Duration of one read pulse.
    write_pulse_s:
        Duration of one SET/RESET programming pulse.
    write_voltage_v:
        Programming voltage.
    write_energy_j:
        Energy of a single programming pulse (per cell).
    """

    r_on_ohm: float = 1.0e5
    r_off_ohm: float = 1.0e7
    bits_per_cell: int = 2
    read_voltage_v: float = 0.3
    read_pulse_s: float = 5.0e-9
    write_pulse_s: float = 50.0e-9
    write_voltage_v: float = 2.0
    write_energy_j: float = 1.0e-13

    def __post_init__(self) -> None:
        require_positive(self.r_on_ohm, "r_on_ohm")
        require_positive(self.r_off_ohm, "r_off_ohm")
        if self.r_off_ohm <= self.r_on_ohm:
            raise ValueError(
                f"r_off_ohm ({self.r_off_ohm}) must exceed r_on_ohm ({self.r_on_ohm})"
            )
        if self.bits_per_cell < 1 or self.bits_per_cell > 6:
            raise ValueError(f"bits_per_cell must be in [1, 6], got {self.bits_per_cell}")
        require_positive(self.read_voltage_v, "read_voltage_v")
        require_positive(self.read_pulse_s, "read_pulse_s")
        require_positive(self.write_pulse_s, "write_pulse_s")
        require_positive(self.write_voltage_v, "write_voltage_v")
        require_positive(self.write_energy_j, "write_energy_j")

    @property
    def g_max_s(self) -> float:
        """Maximum conductance (LRS), in siemens."""
        return 1.0 / self.r_on_ohm

    @property
    def g_min_s(self) -> float:
        """Minimum conductance (HRS), in siemens."""
        return 1.0 / self.r_off_ohm

    @property
    def num_levels(self) -> int:
        """Number of programmable conductance levels."""
        return 1 << self.bits_per_cell

    @property
    def on_off_ratio(self) -> float:
        """Conductance (resistance) on/off ratio."""
        return self.r_off_ohm / self.r_on_ohm


class RRAMDevice:
    """Maps digital cell values to conductances and models per-access costs.

    The conductance levels are spaced linearly between ``g_min`` and
    ``g_max`` — the standard assumption of behavioural PIM simulators, and
    the one NeuroSim uses for its "linear" device mode.
    """

    def __init__(self, config: RRAMDeviceConfig | None = None) -> None:
        self.config = config or RRAMDeviceConfig()
        levels = self.config.num_levels
        self._conductance_levels = np.linspace(
            self.config.g_min_s, self.config.g_max_s, levels
        )

    @property
    def conductance_levels(self) -> np.ndarray:
        """The ``2 ** bits_per_cell`` programmable conductances, ascending."""
        return self._conductance_levels.copy()

    def level_to_conductance(self, levels: np.ndarray | int) -> np.ndarray:
        """Convert integer cell levels to conductances in siemens."""
        level_arr = np.asarray(levels, dtype=np.int64)
        if np.any(level_arr < 0) or np.any(level_arr >= self.config.num_levels):
            raise ValueError(
                f"cell levels must be in [0, {self.config.num_levels - 1}]"
            )
        return self._conductance_levels[level_arr]

    def conductance_to_level(self, conductance: np.ndarray | float) -> np.ndarray:
        """Quantise conductances to the nearest programmable level index."""
        g = np.asarray(conductance, dtype=np.float64)
        g = np.clip(g, self.config.g_min_s, self.config.g_max_s)
        span = self.config.g_max_s - self.config.g_min_s
        frac = (g - self.config.g_min_s) / span
        return np.rint(frac * (self.config.num_levels - 1)).astype(np.int64)

    # ------------------------------------------------------------------ #
    # per-access costs
    # ------------------------------------------------------------------ #
    def read_energy_j(self, conductance_s: float | np.ndarray) -> np.ndarray:
        """Energy dissipated in the cell during one read pulse, ``V^2 * G * t``."""
        g = np.asarray(conductance_s, dtype=np.float64)
        return (self.config.read_voltage_v**2) * g * self.config.read_pulse_s

    def read_latency_s(self) -> float:
        """Latency of one read pulse."""
        return self.config.read_pulse_s

    def write_energy_j(self, num_pulses: int = 1) -> float:
        """Energy of programming one cell with ``num_pulses`` pulses."""
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        return self.config.write_energy_j * num_pulses

    def write_latency_s(self, num_pulses: int = 1) -> float:
        """Latency of programming one cell with ``num_pulses`` pulses."""
        if num_pulses < 1:
            raise ValueError(f"num_pulses must be >= 1, got {num_pulses}")
        return self.config.write_pulse_s * num_pulses
