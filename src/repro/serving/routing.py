"""Topology-aware multi-queue serving: router, per-chip queues, work stealing.

The plain :class:`~repro.serving.simulator.ServingSimulator` drains one
fleet-wide FIFO, so a long sequence routinely lands on a small-tile chip
while a big-tile chip idles.  This module puts a *front-end router* in
front of per-chip queues instead:

* **Network stage** — every routed request crosses a front-end→chip link
  (:class:`NetworkModel`, configurable per-link latency) and only joins
  the chip's queue after the hop; a batch stolen from a peer queue is
  charged one chip→chip steal hop before service starts.
* **Routing policies** (:data:`ROUTING_POLICIES`) — ``round_robin``
  (static interleave), ``join_shortest_queue`` (fewest outstanding
  requests: backlog plus in service), and ``shortest_expected_delay``,
  which uses the chip's batch-aware pricing as a cost oracle over (queue
  backlog + in-flight + the candidate request's ``seq_len``): the
  candidate is priced at the batcher's full batch size on each chip, so
  the per-request amortized cost of a long sequence is far lower on a
  big-tile chip and long requests prefer it even when its queue is deeper.
* **Work stealing** — dispatch is fleet-wide oldest-head-first (most
  urgent first under an EDF batcher): an idle chip whose own queue holds
  no mature batch pulls the oldest/most-urgent mature batch from a peer
  queue — under FIFO routing that head lives in the most-backlogged queue
  — paying the steal hop.  Stealing keeps the fleet work-conserving, so
  per-chip queues never strand work behind a busy chip.

Dispatch order is what makes the zero-cost limit exact: with a
homogeneous fleet, zero link and steal latencies, single-request
dispatch (:data:`~repro.serving.batcher.NO_BATCHING`) and stealing
enabled, ``join_shortest_queue`` and ``shortest_expected_delay`` route
every arrival to the lowest-indexed idle chip and every freed chip
steals the globally oldest queued request — exactly the global-FIFO
baseline, bit for bit (the property suite asserts full report equality).
``round_robin`` genuinely reorders service even then; that is the point
of comparing policies.

The loop threads the same fault machinery as the global path: failed
chips go offline (their queue survives and peers may steal from it), the
in-flight batch is lost and re-enters through the *router* — a retried
request is re-routed and pays a fresh network hop — and admission
control sheds against the fleet-wide landed backlog.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

from repro.core.events import ARRIVE, FREE, TIMEOUT, EventLoop, ServerPool
from repro.serving.arrivals import Request
from repro.serving.batcher import DynamicBatcher
from repro.serving.faults import (
    AdmissionController,
    FaultInjector,
    NO_ADMISSION,
    RetryPolicy,
)
from repro.serving.fleet import ChipFleet
from repro.serving.report import (
    DropRecord,
    FailureRecord,
    RetryRecord,
    RoutingStats,
    ServingReport,
    StealRecord,
)
from repro.utils.validation import require_non_negative

__all__ = ["ROUTING_POLICIES", "NetworkModel", "Router", "run_routed"]

#: Front-end request-to-queue routing policies.
ROUTING_POLICIES = ("round_robin", "join_shortest_queue", "shortest_expected_delay")

#: A request lands in its chip queue (after the front-end→chip hop).
#: Sorts after same-instant TIMEOUTs but before the dispatch sweeps they
#: schedule, so every landing at time ``t`` is queued before any batch
#: decision at ``t`` — mirroring the global loop's enqueue-then-dispatch
#: order.
_HOP = TIMEOUT + 1

#: Deferred dispatch sweep: after every same-instant landing.
_DISPATCH = TIMEOUT + 2

#: Fault-process events order before workload events (see simulator.py).
_FAIL = FREE - 2
_REPAIR = FREE - 1


@dataclass(frozen=True)
class NetworkModel:
    """Front-end→fleet star topology with per-link latencies.

    ``link_latency_s`` is either one scalar (every front-end→chip link)
    or one latency per chip; ``steal_latency_s`` is the chip→chip hop a
    stolen batch pays before service starts (default: the same as the
    scalar link latency would suggest is *not* assumed — it defaults to
    0, an on-package steal).
    """

    link_latency_s: float | tuple[float, ...] = 0.0
    steal_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if isinstance(self.link_latency_s, (int, float)):
            require_non_negative(float(self.link_latency_s), "link_latency_s")
        else:
            links = tuple(float(s) for s in self.link_latency_s)
            object.__setattr__(self, "link_latency_s", links)
            for latency in links:
                require_non_negative(latency, "link_latency_s")
        require_non_negative(self.steal_latency_s, "steal_latency_s")

    def links(self, num_chips: int) -> tuple[float, ...]:
        """Per-chip link latencies, the scalar replicated if need be."""
        if isinstance(self.link_latency_s, tuple):
            if len(self.link_latency_s) != num_chips:
                raise ValueError(
                    f"got {len(self.link_latency_s)} link latencies for "
                    f"{num_chips} chips"
                )
            return self.link_latency_s
        return (float(self.link_latency_s),) * num_chips

    def for_chips(self, chips: slice) -> "NetworkModel":
        """The sub-topology of one contiguous chip slice (sharding)."""
        if isinstance(self.link_latency_s, tuple):
            return NetworkModel(self.link_latency_s[chips], self.steal_latency_s)
        return self


@dataclass(frozen=True)
class Router:
    """Front-end routing configuration of a multi-queue serving run.

    Passing a ``Router`` to :class:`~repro.serving.simulator.ServingSimulator`
    (or the sharded variant) replaces the fleet-wide FIFO with one queue
    per chip behind this front end; ``None`` (the default everywhere)
    keeps the global queue bit-identical to before routing existed.
    """

    policy: str = "shortest_expected_delay"
    network: NetworkModel = NetworkModel()
    stealing: bool = True

    def __post_init__(self) -> None:
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"policy must be one of {ROUTING_POLICIES}, got {self.policy!r}"
            )

    def for_chips(self, chips: slice) -> "Router":
        """This router restricted to one shard's contiguous chip slice."""
        return Router(self.policy, self.network.for_chips(chips), self.stealing)


def _oracle_latency_s(fleet: ChipFleet, chip: int, batch: int, seq_len: int) -> float:
    """Stateless batch pricing for the shortest-expected-delay oracle.

    The oracle must never advance a model's random stream: tiered models
    are priced through their analytic base, and the Markovian exponential
    model through its mean.  Star/tabulated/fixed pricing is already
    deterministic and cache-backed, so repeated oracle queries are cheap.
    """
    model = fleet.models[chip]
    if hasattr(model, "sample_fraction"):  # TieredServiceModel
        model = model.base
    mean_s = getattr(model, "mean_s", None)
    if mean_s is not None:  # ExponentialServiceModel: use the mean, not a draw
        latency = batch * mean_s
    else:
        latency = model.batch_latency_s(batch, seq_len)
    return latency / fleet.speedups[chip]


def run_routed(
    fleet: ChipFleet,
    batcher: DynamicBatcher,
    router: Router,
    ordered: Sequence[Request],
    faults: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    admission: AdmissionController | None = None,
) -> tuple[ServingReport, EventLoop, int]:
    """Serve an arrival-ordered request list through per-chip queues.

    Healthy and fault-aware in one loop: without any fault component,
    records are written at dispatch (the healthy record order); with one,
    at completion, exactly like the global fault path.  Returns
    ``(report, event loop, dispatch sweeps)`` like the simulator's
    internal paths; the report carries a :class:`~repro.serving.report.RoutingStats`.
    """
    num_chips = fleet.num_chips
    fault_aware = faults is not None or retry is not None or admission is not None
    retry = retry if retry is not None else RetryPolicy()
    admission = admission if admission is not None else NO_ADMISSION
    deadline_on = fault_aware and retry.deadline_s is not None
    session = faults.session(num_chips) if faults is not None else None

    loop = EventLoop()
    chips = ServerPool("chips", num_chips, speedups=fleet.speedups)
    for request in ordered:
        loop.schedule(request.arrival_s, ARRIVE, request)
    if session is not None:
        for chip in range(num_chips):
            loop.schedule(session.time_to_failure_s(chip), _FAIL, chip)

    links = router.network.links(num_chips)
    steal_latency_s = router.network.steal_latency_s
    policy = router.policy
    stealing = router.stealing
    sed = policy == "shortest_expected_delay"
    jsq = policy == "join_shortest_queue"

    # one heap per chip; entries are (drain key, arrival order, request)
    # with the key from the batcher (arrival order under FIFO, absolute
    # deadline under EDF), so ties and order are deterministic everywhere
    queues: list[list[tuple[float, int, Request]]] = [[] for _ in range(num_chips)]
    inflight_requests = [0] * num_chips  # requests in service, for JSQ/SED costs
    total_backlog = 0
    queue_peak = 0
    queue_peaks = [0] * num_chips
    queue_requests = [0] * num_chips
    queue_wait_s = [0.0] * num_chips
    num_routed = 0
    local_batches = 0
    stolen_batches = 0
    route_network_s = 0.0
    steal_network_s = 0.0
    steal_records: list[StealRecord] = []
    rr_next = 0  # round-robin cursor
    order = 0  # fleet-wide arrival counter (FIFO drain key)
    oracle_batch = batcher.max_batch_size
    # per-seq_len amortized cost row (one float per chip), built lazily:
    # route() runs once per request, so it must not allocate
    cost_rows: dict[int, list[float]] = {}
    all_chips = tuple(range(num_chips))
    offline_count = 0
    num_idle = num_chips  # chips idle AND online: dispatch early-out

    req_index: list[int] = []
    req_arrival: list[float] = []
    req_batch: list[int] = []
    req_attempts: list[int] = []
    req_slo: list[int] = []
    req_deadline: list[float] = []
    b_chip: list[int] = []
    b_dispatch: list[float] = []
    b_completion: list[float] = []
    b_size: list[int] = []
    b_seq_len: list[int] = []
    b_energy: list[float] = []
    b_tier: list[int] = []
    shed: list[DropRecord] = []
    abandoned: list[DropRecord] = []
    retries: list[RetryRecord] = []
    failures: list[FailureRecord] = []
    attempts: dict[int, int] = {}
    timed_wait = batcher.max_wait_s > 0.0
    queued: set[int] = set()
    dispatch_calls = 0
    inflight: list[dict | None] = [None] * num_chips  # fault path batch info
    epoch = [0] * num_chips
    failed_chips = [False] * num_chips
    outstanding = len(ordered)

    schedule = loop.schedule
    batcher_ready = batcher.ready
    batcher_batch_of = batcher.batch_of
    batcher_queue_key = batcher.queue_key
    batch_latency_s = fleet.batch_latency_s
    batch_energy_j = fleet.batch_energy_j
    batch_tier = fleet.batch_tier
    max_wait_s = batcher.max_wait_s
    idle = chips.idle
    online = chips.online

    def cost_row(seq_len: int) -> list[float]:
        """Amortized per-request service of this length on every chip."""
        row = cost_rows.get(seq_len)
        if row is None:
            row = [
                _oracle_latency_s(fleet, chip, oracle_batch, seq_len) / oracle_batch
                for chip in all_chips
            ]
            cost_rows[seq_len] = row
        return row

    def route(request: Request) -> int:
        """The queue the front end sends this request to."""
        nonlocal rr_next
        if policy == "round_robin":
            chip = rr_next
            rr_next = (rr_next + 1) % num_chips
            return chip
        # health-aware: never route to a failed chip unless all are down
        if offline_count:
            candidates = [c for c in all_chips if online[c]] or all_chips
        else:
            candidates = all_chips
        if jsq:
            best = -1
            best_cost = -1
            for c in candidates:
                cost = len(queues[c]) + inflight_requests[c]
                if best < 0 or cost < best_cost:
                    best, best_cost = c, cost
            return best
        # shortest expected delay: network hop plus the chip's outstanding
        # work priced at the candidate's amortized full-batch cost
        costs = cost_row(request.seq_len)
        best = -1
        best_cost = 0.0
        for c in candidates:
            cost = links[c] + (len(queues[c]) + inflight_requests[c] + 1) * costs[c]
            if best < 0 or cost < best_cost:
                best, best_cost = c, cost
        return best

    def expired(request: Request, now: float) -> bool:
        return deadline_on and now > retry.deadline_of(request.arrival_s)

    def shed_from_queue(request: Request, time: float) -> None:
        nonlocal outstanding
        queued.discard(request.index)
        shed.append(
            DropRecord(
                index=request.index,
                time_s=time,
                reason="deadline",
                attempts=attempts.get(request.index, 0),
            )
        )
        outstanding -= 1

    def land(time: float, request: Request, arrival_order: int, queue: int) -> None:
        """The request's network hop completes: join the chip queue."""
        nonlocal total_backlog, queue_peak
        heap = queues[queue]
        heappush(
            heap, (batcher_queue_key(request, arrival_order), arrival_order, request)
        )
        total_backlog += 1
        if total_backlog > queue_peak:
            queue_peak = total_backlog
        if len(heap) > queue_peaks[queue]:
            queue_peaks[queue] = len(heap)
        queued.add(request.index)
        if timed_wait:
            # maturity measured from front-end arrival, like the global loop
            schedule(max(time, request.arrival_s + max_wait_s), TIMEOUT, request.index)
        schedule(time, _DISPATCH)

    def dispatch(time: float, force: bool = False) -> None:
        """Serve mature queue heads fleet-wide, oldest/most-urgent first.

        Each round picks the globally best mature head: its own chip if
        idle, else — with stealing on — the lowest-indexed idle chip,
        which pays the steal hop.  ``force`` releases the first batch past
        a maturity check that float rounding may have stranded (set by a
        TIMEOUT whose request is still queued), exactly like the global
        loop.
        """
        nonlocal total_backlog, local_batches, stolen_batches
        nonlocal steal_network_s, outstanding, num_idle
        shedding = deadline_on and admission.shed_expired
        while True:
            if num_idle == 0 or total_backlog == 0:
                return
            best = -1
            best_key: tuple[float, int] | None = None
            for q in all_chips:
                heap = queues[q]
                while heap and shedding and expired(heap[0][2], time):
                    # head-of-line deadline shedding, per queue
                    _, _, head = heappop(heap)
                    total_backlog -= 1
                    shed_from_queue(head, time)
                if not heap:
                    continue
                key, count, head = heap[0]
                if not stealing and not (idle[q] and online[q]):
                    continue  # without stealing only the home chip serves q
                # without a wait timer every queued head is already mature
                if timed_wait and not (
                    force or batcher_ready(len(heap), time - head.arrival_s)
                ):
                    continue
                if best_key is None or (key, count) < best_key:
                    best, best_key = q, (key, count)
            if best < 0:
                return
            if idle[best] and online[best]:
                chip = best
            else:
                chip = chips.idle_server()  # lowest-indexed idle online chip
                if chip is None:
                    return
            force = False
            heap = queues[best]
            take = batcher_batch_of(len(heap))
            if admission.degraded_max_batch is not None and any(failed_chips):
                take = min(take, admission.degraded_max_batch)
            stolen = chip != best
            hop = steal_latency_s if stolen else 0.0
            dispatch_s = time + hop
            wait_sum = 0.0
            members: list[Request] = []
            while len(members) < take and heap:
                _, _, request = heappop(heap)
                total_backlog -= 1
                if shedding and expired(request, time):
                    shed_from_queue(request, time)
                    continue
                members.append(request)
                wait_sum += dispatch_s - request.arrival_s
            if not members:
                continue  # everything popped was expired; re-evaluate
            queued.difference_update(r.index for r in members)
            seq_len = max(r.seq_len for r in members)
            service = batch_latency_s(chip, len(members), seq_len)
            tier = batch_tier(chip)
            energy = batch_energy_j(chip, len(members), seq_len)
            completion = dispatch_s + service
            chips.acquire(chip)
            num_idle -= 1
            chips.occupy(service)
            inflight_requests[chip] = len(members)
            queue_requests[best] += len(members)
            queue_wait_s[best] += wait_sum
            batch_row = len(b_chip)
            if stolen:
                stolen_batches += 1
                steal_network_s += steal_latency_s
                steal_records.append(
                    StealRecord(
                        batch_index=batch_row, queue=best, chip=chip, decided_s=time
                    )
                )
            else:
                local_batches += 1
            epoch[chip] += 1
            if fault_aware:
                # records written at completion: a killed batch leaves none
                inflight[chip] = {
                    "epoch": epoch[chip],
                    "members": members,
                    "dispatch_s": dispatch_s,
                    "completion_s": completion,
                    "seq_len": seq_len,
                    "energy_j": energy,
                    "tier": tier,
                }
            else:
                b_chip.append(chip)
                b_dispatch.append(dispatch_s)
                b_completion.append(completion)
                b_size.append(len(members))
                b_seq_len.append(seq_len)
                b_energy.append(energy)
                b_tier.append(tier)
                for r in members:
                    req_index.append(r.index)
                    req_arrival.append(r.arrival_s)
                    req_batch.append(batch_row)
                    req_slo.append(r.slo_class)
                    req_deadline.append(r.deadline_s)
            schedule(completion, FREE, chip, epoch[chip])

    while loop:
        time, kind, data = loop.pop()
        if kind == ARRIVE:
            request = data[0]
            if fault_aware and not admission.admits(total_backlog):
                shed.append(
                    DropRecord(
                        index=request.index,
                        time_s=time,
                        reason="queue_full",
                        attempts=attempts.get(request.index, 0),
                    )
                )
                outstanding -= 1
                continue
            queue = route(request)
            num_routed += 1
            hop = links[queue]
            route_network_s += hop
            if hop == 0.0:
                # zero-latency link: land within the arrival event, exactly
                # where the global loop enqueues (no extra heap traffic)
                land(time, request, order, queue)
            else:
                schedule(time + hop, _HOP, request, order, queue)
            order += 1
        elif kind == FREE:
            chip, free_epoch = data
            if fault_aware:
                info = inflight[chip]
                if info is None or info["epoch"] != free_epoch:
                    continue  # completion of a batch a failure already killed
                inflight[chip] = None
                batch_row = len(b_chip)
                b_chip.append(chip)
                b_dispatch.append(info["dispatch_s"])
                b_completion.append(time)
                b_size.append(len(info["members"]))
                b_seq_len.append(info["seq_len"])
                b_energy.append(info["energy_j"])
                b_tier.append(info["tier"])
                for r in info["members"]:
                    req_index.append(r.index)
                    req_arrival.append(r.arrival_s)
                    req_batch.append(batch_row)
                    req_attempts.append(attempts.get(r.index, 0))
                    req_slo.append(r.slo_class)
                    req_deadline.append(r.deadline_s)
                outstanding -= len(info["members"])
            inflight_requests[chip] = 0
            chips.release(chip)
            num_idle += 1  # a valid FREE only comes from an online chip
            schedule(time, _DISPATCH)
        elif kind == TIMEOUT:
            if data[0] in queued:
                schedule(time, _DISPATCH, data[0])
        elif kind == _HOP:
            land(time, data[0], data[1], data[2])
        elif kind == _FAIL:
            chip = data[0]
            if outstanding == 0:
                continue  # traffic resolved: let the failure process die out
            failed_chips[chip] = True
            offline_count += 1
            if idle[chip]:
                num_idle -= 1  # an idle chip going offline leaves the pool
            chips.set_online(chip, False)
            repaired_s = time + session.downtime_s(chip, fleet.reprogram_latency_s(chip))
            lost = 0
            wasted = 0.0
            info = inflight[chip]
            if info is not None:
                inflight[chip] = None
                inflight_requests[chip] = 0
                chips.release(chip)
                lost = len(info["members"])
                service = info["completion_s"] - info["dispatch_s"]
                progress = (time - info["dispatch_s"]) / service if service > 0 else 1.0
                wasted = info["energy_j"] * max(0.0, progress)
                for request in info["members"]:
                    attempts[request.index] = attempts.get(request.index, 0) + 1
                    attempt = attempts[request.index]
                    if attempt >= retry.max_attempts:
                        abandoned.append(
                            DropRecord(
                                index=request.index,
                                time_s=time,
                                reason="retries_exhausted",
                                attempts=attempt,
                            )
                        )
                        outstanding -= 1
                        continue
                    reenqueue_s = time + retry.backoff_s(
                        attempt, session.jitter_rng if session else None
                    )
                    if deadline_on and reenqueue_s > retry.deadline_of(
                        request.arrival_s
                    ):
                        abandoned.append(
                            DropRecord(
                                index=request.index,
                                time_s=time,
                                reason="deadline",
                                attempts=attempt,
                            )
                        )
                        outstanding -= 1
                        continue
                    retries.append(
                        RetryRecord(
                            index=request.index,
                            attempt=attempt,
                            failure_s=time,
                            reenqueue_s=reenqueue_s,
                        )
                    )
                    # a retry re-enters through the router: it is re-routed
                    # (the failed chip is offline, so it lands elsewhere)
                    # and pays a fresh front-end hop
                    loop.schedule(reenqueue_s, ARRIVE, request)
            failures.append(
                FailureRecord(
                    chip=chip,
                    fail_s=time,
                    repaired_s=repaired_s,
                    lost_requests=lost,
                    wasted_energy_j=wasted,
                )
            )
            loop.schedule(repaired_s, _REPAIR, chip)
        elif kind == _REPAIR:
            chip = data[0]
            failed_chips[chip] = False
            offline_count -= 1
            num_idle += 1  # repaired chips come back idle
            chips.set_online(chip, True)
            if outstanding > 0:
                loop.schedule(time + session.time_to_failure_s(chip), _FAIL, chip)
                loop.schedule(time, _DISPATCH)
        else:  # _DISPATCH
            dispatch_calls += 1
            dispatch(time, force=bool(data) and data[0] in queued)

    from repro.serving.simulator import _assemble_tables, _per_chip_busy

    requests, batches = _assemble_tables(
        req_index, req_arrival, req_batch, req_attempts if fault_aware else None,
        b_chip, b_dispatch, b_completion, b_size, b_seq_len, b_energy,
        req_slo, req_deadline, b_tier,
    )
    stats = RoutingStats(
        policy=policy,
        stealing=stealing,
        num_routed=num_routed,
        local_batches=local_batches,
        stolen_batches=stolen_batches,
        route_network_s=route_network_s,
        steal_network_s=steal_network_s,
        queue_peaks=tuple(queue_peaks),
        queue_requests=tuple(queue_requests),
        queue_wait_s=tuple(queue_wait_s),
        steals=tuple(steal_records),
    )
    report = ServingReport(
        num_chips=num_chips,
        requests=requests,
        batches=batches,
        chip_busy_s=_per_chip_busy(batches, num_chips),
        queue_peak=queue_peak,
        chip_idle_power_w=tuple(
            fleet.idle_power_w(chip) for chip in range(num_chips)
        ),
        shed=tuple(shed),
        abandoned=tuple(abandoned),
        retries=tuple(retries),
        failures=tuple(failures),
        deadline_s=retry.deadline_s if fault_aware else None,
        faults_enabled=fault_aware,
        routing=stats,
    )
    return report, loop, dispatch_calls
