"""Fixed-point number formats used throughout the STAR softmax engine.

The STAR paper encodes softmax inputs (attention scores after the
``x_i - x_max`` subtraction) as *unsigned* fixed-point values because the
subtraction result is always non-positive and the sign bit can therefore be
dropped (Section II of the paper).  The required formats reported by the
paper are:

======== ============= ============== ==========
Dataset  Total bits    Integer bits   Frac bits
======== ============= ============== ==========
CNEWS    8             6              2
MRPC     9             6              3
CoLA     7             5              2
======== ============= ============== ==========

This module provides :class:`FixedPointFormat`, a small value type that
captures the integer/fractional split, plus quantisation helpers that are
shared by the CAM/SUB crossbar, the exponential LUT and the bit-width
analysis code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "FixedPointFormat",
    "quantize",
    "dequantize_codes",
    "quantization_error",
    "sqnr_db",
    "CNEWS_FORMAT",
    "MRPC_FORMAT",
    "COLA_FORMAT",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """An unsigned or signed fixed-point format ``Q(integer_bits.frac_bits)``.

    Parameters
    ----------
    integer_bits:
        Number of bits before the binary point (excluding the sign bit).
    frac_bits:
        Number of bits after the binary point.
    signed:
        When ``True`` one additional sign bit is prepended and the value
        range becomes symmetric around zero.  The STAR softmax engine uses
        ``signed=False`` for the magnitude of ``x_i - x_max`` because the
        sign is known to be negative.

    Examples
    --------
    >>> fmt = FixedPointFormat(6, 2)
    >>> fmt.total_bits
    8
    >>> fmt.resolution
    0.25
    >>> fmt.max_value
    63.75
    """

    integer_bits: int
    frac_bits: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.integer_bits < 0:
            raise ValueError(f"integer_bits must be >= 0, got {self.integer_bits}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be >= 0, got {self.frac_bits}")
        if self.integer_bits + self.frac_bits == 0:
            raise ValueError("a fixed-point format needs at least one bit")

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Total storage bits including the sign bit when signed."""
        return self.integer_bits + self.frac_bits + (1 if self.signed else 0)

    @property
    def magnitude_bits(self) -> int:
        """Bits used for the magnitude (excludes the sign bit)."""
        return self.integer_bits + self.frac_bits

    @property
    def resolution(self) -> float:
        """Smallest representable step (one LSB)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def num_levels(self) -> int:
        """Number of representable magnitude levels."""
        return 1 << self.magnitude_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (self.num_levels - 1) * self.resolution

    @property
    def min_value(self) -> float:
        """Smallest representable value (0 for unsigned formats)."""
        if self.signed:
            return -self.max_value
        return 0.0

    @property
    def signed_max_value(self) -> float:
        """Largest score representable when the code space is used as offset binary.

        STAR stores signed attention scores in an unsigned CAM code space by
        biasing with half the range (offset binary), so the positive side
        reaches ``(num_levels/2 - 1) * resolution`` — e.g. +31.75 for the
        8-bit CNEWS format.
        """
        return (self.num_levels // 2 - 1) * self.resolution

    @property
    def signed_min_value(self) -> float:
        """Most negative score representable in the offset-binary code space."""
        return -(self.num_levels // 2) * self.resolution

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_code(self, values: np.ndarray | float) -> np.ndarray:
        """Quantise real values to integer codes (round-to-nearest, saturate)."""
        arr = np.asarray(values, dtype=np.float64)
        scaled = np.rint(arr / self.resolution)
        max_code = self.num_levels - 1
        min_code = -max_code if self.signed else 0
        return np.clip(scaled, min_code, max_code).astype(np.int64)

    def from_code(self, codes: np.ndarray | int) -> np.ndarray:
        """Convert integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.resolution

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Round values to the representable grid (round-to-nearest, saturate)."""
        return self.from_code(self.to_code(values))

    def representable_values(self) -> np.ndarray:
        """Every representable magnitude value, ascending.

        Used to pre-load the CAM and LUT crossbars of the exponential unit,
        which store *all possible* ``x_i - x_max`` magnitudes and their
        exponentials.
        """
        codes = np.arange(self.num_levels, dtype=np.int64)
        return self.from_code(codes)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the representable range."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "s" if self.signed else "u"
        return f"Q{sign}{self.integer_bits}.{self.frac_bits}"

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def for_range(
        cls,
        max_magnitude: float,
        resolution: float,
        signed: bool = False,
    ) -> "FixedPointFormat":
        """Smallest format covering ``[0, max_magnitude]`` at ``resolution``.

        Parameters
        ----------
        max_magnitude:
            Largest magnitude that must be representable.
        resolution:
            Required step size; rounded down to the nearest power of two.
        """
        if max_magnitude < 0:
            raise ValueError("max_magnitude must be non-negative")
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        frac_bits = max(0, int(math.ceil(-math.log2(resolution))))
        integer_bits = max(1, int(math.ceil(math.log2(max_magnitude + 2.0 ** (-frac_bits)))))
        return cls(integer_bits=integer_bits, frac_bits=frac_bits, signed=signed)


# Canonical formats from the paper's bit-width table (Section II).
CNEWS_FORMAT = FixedPointFormat(integer_bits=6, frac_bits=2)
MRPC_FORMAT = FixedPointFormat(integer_bits=6, frac_bits=3)
COLA_FORMAT = FixedPointFormat(integer_bits=5, frac_bits=2)


def quantize(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Functional form of :meth:`FixedPointFormat.quantize`."""
    return fmt.quantize(values)


def dequantize_codes(codes: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Functional form of :meth:`FixedPointFormat.from_code`."""
    return fmt.from_code(codes)


def quantization_error(values: np.ndarray, fmt: FixedPointFormat) -> np.ndarray:
    """Element-wise quantisation error ``q(x) - x``."""
    values = np.asarray(values, dtype=np.float64)
    return fmt.quantize(values) - values


def sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantisation-noise ratio in dB.

    Returns ``inf`` when the quantised signal equals the reference exactly.
    """
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if reference.shape != quantized.shape:
        raise ValueError(
            f"shape mismatch: reference {reference.shape} vs quantized {quantized.shape}"
        )
    noise_power = float(np.mean((reference - quantized) ** 2))
    signal_power = float(np.mean(reference**2))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * math.log10(signal_power / noise_power)
