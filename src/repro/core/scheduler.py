"""Event-driven executor of the vector-grained attention pipeline.

:mod:`repro.core.pipeline` *predicts* the latency of the
``score GEMM -> softmax -> context GEMM`` chain with closed-form formulas;
this module *executes* the schedule.  Rows flow through an event-driven
simulation of the three stages, each backed by real resources:

* the **score** and **context** stages are served by per-head-stream tile
  groups of the MatMul engine (one server per concurrent head-stream, see
  :func:`repro.core.pipeline.attention_streams`) — a row is bound to its
  stream's tiles and streams proceed in parallel;
* the **softmax** stage is served by a shared pool of RRAM softmax
  engines; a finished score row enters one FIFO queue and is dispatched to
  the first engine that frees up (engines may have different speeds — the
  unbalanced-pool scenario).

Executed-vs-analytical semantics
--------------------------------

Both models charge the same per-row stage service times and the same
``stage_handoff_s`` forwarding overhead.  In the executor a server is
occupied for ``service + handoff`` per row (it forwards its result before
accepting the next row) and the row reaches the next stage's queue at
``service_end + handoff``; a row *completes* when its context-GEMM service
ends.  With one server per stage and no jitter this reproduces
:meth:`~repro.core.pipeline.AttentionPipeline.vector_grained_latency`
**exactly** (``fill + (n - 1) * (bottleneck + handoff)``), and the
operand-grained executor — every stage drains all rows before the next
starts, one handoff per stage boundary — reproduces
:meth:`~repro.core.pipeline.AttentionPipeline.operand_grained_latency`
exactly.  With engine pools the analytical model approximates a ``k``-wide
pool as a single ``k``-times-faster server; the executed schedule keeps the
discrete servers, so the two agree only up to pipeline-fill and
handoff-amortisation terms — the cross-validation suite
(``tests/core/test_scheduler_crossval.py``) pins the tolerance.

What the executor adds over the formulas is everything they cannot
express: per-row stage jitter, unbalanced engine pools, multi-sequence
tile contention, queue depths and per-engine occupancy — and, through
:class:`AttentionExecutor`, the ability to push **real tensors** through
the schedule: actual score rows produced by
:class:`~repro.core.matmul_engine.MatMulEngine` tile banks, softmaxed by a
pool of :class:`~repro.core.softmax_engine.RRAMSoftmaxEngine` instances
and contracted against ``V``, with every per-row service time *measured*
from the access-statistics ledgers the engines accumulate rather than
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.events import ARRIVE, FREE, EventLoop, ServerPool, StageJitter
from repro.core.pipeline import PipelineSchedule, StageTiming, attention_streams
from repro.utils.validation import require_positive

if TYPE_CHECKING:
    from repro.core.matmul_engine import MatMulEngine
    from repro.core.softmax_engine import RRAMSoftmaxEngine

__all__ = [
    "STAGES",
    "StageJitter",
    "RowRecord",
    "ExecutedSchedule",
    "PipelineExecutor",
    "AttentionExecution",
    "AttentionExecutor",
]

#: The three pipeline stages, in dataflow order.
STAGES = ("score", "softmax", "context")


@dataclass(frozen=True)
class RowRecord:
    """Timestamps of one row's trip through the executed pipeline."""

    row: int
    stream: int
    engine: int
    score_start_s: float
    score_end_s: float
    softmax_start_s: float
    softmax_end_s: float
    context_start_s: float
    context_end_s: float

    @property
    def completion_s(self) -> float:
        """When the row's context-GEMM service ended (pipeline exit)."""
        return self.context_end_s

    @property
    def softmax_queue_wait_s(self) -> float:
        """Time the row spent queued between score completion and softmax."""
        return self.softmax_start_s - self.score_end_s


@dataclass(frozen=True)
class ExecutedSchedule:
    """Result of executing one attention computation through the pipeline.

    The measured counterpart of the analytical
    :class:`~repro.core.pipeline.PipelineSchedule`: total latency and
    steady-state interval come from the simulated event times, and the
    execution additionally exposes per-stage busy times, peak queue depths
    and the per-engine row assignment the formulas cannot see.
    """

    granularity: str
    total_latency_s: float
    steady_state_interval_s: float
    num_streams: int
    num_softmax_engines: int
    records: tuple[RowRecord, ...]
    stage_busy_s: dict[str, float]
    queue_peaks: dict[str, int]
    engine_rows: tuple[int, ...]

    @property
    def num_rows(self) -> int:
        """Rows that completed the pipeline."""
        return len(self.records)

    def utilization(self, stage: str) -> float:
        """Busy fraction of the stage's servers over the whole execution."""
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r}; expected one of {STAGES}")
        servers = self.num_softmax_engines if stage == "softmax" else self.num_streams
        if self.total_latency_s == 0.0:
            return 0.0
        return self.stage_busy_s[stage] / (servers * self.total_latency_s)

    def as_pipeline_schedule(self) -> PipelineSchedule:
        """This execution in the analytical result type (for comparisons)."""
        return PipelineSchedule(
            granularity=self.granularity,
            total_latency_s=self.total_latency_s,
            steady_state_interval_s=self.steady_state_interval_s,
        )


def _steady_interval(completions: np.ndarray, total: float) -> float:
    """Average inter-completion gap over the middle half of the rows.

    The first and last quarters are discarded as pipeline fill and drain;
    with fewer than eight rows there is no steady state to speak of and the
    mean completion rate is reported instead.
    """
    n = completions.size
    ordered = np.sort(completions)
    if n < 8:
        return total / n
    lo, hi = n // 4, n - n // 4 - 1
    return float((ordered[hi] - ordered[lo]) / (hi - lo))


class PipelineExecutor:
    """Event-driven executor of the three-stage attention pipeline.

    Parameters
    ----------
    config:
        Granularity (``"vector"`` / ``"operand"``) and the per-forward
        ``stage_handoff_s``; defaults to :class:`~repro.core.config.PipelineConfig`.
    streams:
        Concurrent head-streams — parallel servers of the score and context
        stages (each stream owns its ``K^T`` / ``V`` tiles).  Rows are
        distributed round-robin across streams unless an explicit mapping is
        passed to :meth:`execute_service_times`.
    softmax_engines:
        Size of the shared softmax-engine pool.
    softmax_speedups:
        Optional per-engine speed factors (service time is divided by the
        factor); defaults to a homogeneous pool of 1.0.
    jitter:
        Optional :class:`StageJitter` applied to the per-row service times
        drawn from a :class:`~repro.core.pipeline.StageTiming`.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        streams: int = 1,
        softmax_engines: int = 1,
        softmax_speedups: Sequence[float] | None = None,
        jitter: StageJitter | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        require_positive(streams, "streams")
        require_positive(softmax_engines, "softmax_engines")
        self.streams = streams
        self.softmax_engines = softmax_engines
        if softmax_speedups is None:
            softmax_speedups = (1.0,) * softmax_engines
        self.softmax_speedups = tuple(float(s) for s in softmax_speedups)
        if len(self.softmax_speedups) != softmax_engines:
            raise ValueError(
                f"got {len(self.softmax_speedups)} softmax_speedups for "
                f"{softmax_engines} engines"
            )
        self.jitter = jitter

    # ------------------------------------------------------------------ #
    # StageTiming entry points
    # ------------------------------------------------------------------ #
    def _service_times(self, timing: StageTiming) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = timing.num_rows
        factors = (
            self.jitter.factors(n) if self.jitter is not None else np.ones((n, len(STAGES)))
        )
        return (
            timing.score_row_s * factors[:, 0],
            timing.softmax_row_s * factors[:, 1],
            timing.context_row_s * factors[:, 2],
        )

    def execute(self, timing: StageTiming) -> ExecutedSchedule:
        """Execute ``timing.num_rows`` rows under the configured granularity."""
        if self.config.granularity == "vector":
            return self.execute_vector(timing)
        return self.execute_operand(timing)

    def execute_vector(self, timing: StageTiming) -> ExecutedSchedule:
        """STAR's schedule: every finished score row immediately moves on."""
        score, softmax, context = self._service_times(timing)
        return self.execute_service_times(score, softmax, context, granularity="vector")

    def execute_operand(self, timing: StageTiming) -> ExecutedSchedule:
        """Prior work's schedule: stage barriers between score/softmax/context."""
        score, softmax, context = self._service_times(timing)
        return self.execute_service_times(score, softmax, context, granularity="operand")

    def speedup(self, timing: StageTiming) -> float:
        """Executed vector-grained speedup over the executed operand schedule."""
        coarse = self.execute_operand(timing).total_latency_s
        fine = self.execute_vector(timing).total_latency_s
        if fine == 0.0:
            # a zero-cost vector schedule implies a zero-cost operand one
            return 1.0
        return coarse / fine

    # ------------------------------------------------------------------ #
    # service-time entry point (measured or synthetic)
    # ------------------------------------------------------------------ #
    def execute_service_times(
        self,
        score_s: np.ndarray,
        softmax_s: np.ndarray,
        context_s: np.ndarray,
        *,
        granularity: str | None = None,
        stream_of: np.ndarray | None = None,
    ) -> ExecutedSchedule:
        """Execute rows whose per-row stage service times are given explicitly.

        This is the entry point :class:`AttentionExecutor` uses with
        *measured* service times; ``stream_of`` optionally pins each row to
        a head-stream (default round-robin).
        """
        score_s = np.asarray(score_s, dtype=np.float64)
        softmax_s = np.asarray(softmax_s, dtype=np.float64)
        context_s = np.asarray(context_s, dtype=np.float64)
        n = score_s.size
        if n == 0:
            raise ValueError("cannot execute an empty schedule")
        if softmax_s.size != n or context_s.size != n:
            raise ValueError(
                f"stage service arrays disagree on row count: "
                f"{score_s.size}, {softmax_s.size}, {context_s.size}"
            )
        if min(score_s.min(), softmax_s.min(), context_s.min()) < 0:
            raise ValueError("service times must be non-negative")
        if stream_of is None:
            stream_of = np.arange(n) % self.streams
        else:
            stream_of = np.asarray(stream_of, dtype=np.int64)
            if stream_of.size != n:
                raise ValueError("stream_of must give one stream per row")
            if stream_of.min() < 0 or stream_of.max() >= self.streams:
                raise ValueError(
                    f"stream indices must lie in [0, {self.streams}), "
                    f"got [{stream_of.min()}, {stream_of.max()}]"
                )
        granularity = granularity or self.config.granularity
        if granularity == "vector":
            return self._run_vector(score_s, softmax_s, context_s, stream_of)
        if granularity == "operand":
            return self._run_operand(score_s, softmax_s, context_s, stream_of)
        raise ValueError(f"granularity must be 'vector' or 'operand', got {granularity!r}")

    # ------------------------------------------------------------------ #
    # vector-grained: event-driven simulation
    # ------------------------------------------------------------------ #
    def _build_stages(self) -> list[ServerPool]:
        return [
            ServerPool("score", self.streams, keyed=True),
            ServerPool(
                "softmax",
                self.softmax_engines,
                keyed=False,
                speedups=self.softmax_speedups,
            ),
            ServerPool("context", self.streams, keyed=True),
        ]

    def _run_vector(
        self,
        score_s: np.ndarray,
        softmax_s: np.ndarray,
        context_s: np.ndarray,
        stream_of: np.ndarray,
    ) -> ExecutedSchedule:
        n = score_s.size
        handoff = self.config.stage_handoff_s
        services = (score_s, softmax_s, context_s)
        stages = self._build_stages()
        starts = np.zeros((n, len(STAGES)))
        ends = np.zeros((n, len(STAGES)))
        server_of = np.zeros((n, len(STAGES)), dtype=np.int64)

        # FREE at time t sorts before ARRIVE at time t, so the arrival sees
        # the freshly idled server directly (see repro.core.events)
        loop = EventLoop()
        for row in range(n):
            loop.schedule(0.0, ARRIVE, 0, row)

        def start_service(time: float, stage_index: int, server: int, row: int) -> None:
            stage = stages[stage_index]
            stage.acquire(server)
            service = stage.service_time(server, services[stage_index][row])
            end = time + service
            stage.occupy(service + handoff)
            starts[row, stage_index] = time
            ends[row, stage_index] = end
            server_of[row, stage_index] = server
            # the server forwards the row before accepting the next one
            loop.schedule(end + handoff, FREE, stage_index, server)
            if stage_index + 1 < len(STAGES):
                loop.schedule(end + handoff, ARRIVE, stage_index + 1, row)

        while loop:
            time, kind, (stage_index, payload) = loop.pop()
            stage = stages[stage_index]
            if kind == ARRIVE:
                row = payload
                stream = int(stream_of[row])
                server = stage.idle_server(stream)
                queue = stage.queue_of(stream)
                if server is None:
                    stage.enqueue(queue, row)
                else:
                    start_service(time, stage_index, server, row)
            else:  # FREE
                server = payload
                stage.release(server)
                row = stage.pop(stage.queue_of(server))
                if row is not None:
                    start_service(time, stage_index, server, row)

        # the final forward of the context stage is writeback overlap, so a
        # row completes when its context service ends
        completions = ends[:, 2]
        total = float(completions.max())
        return self._package("vector", total, starts, ends, server_of, stream_of, stages, completions)

    # ------------------------------------------------------------------ #
    # operand-grained: stage barriers
    # ------------------------------------------------------------------ #
    def _run_operand(
        self,
        score_s: np.ndarray,
        softmax_s: np.ndarray,
        context_s: np.ndarray,
        stream_of: np.ndarray,
    ) -> ExecutedSchedule:
        n = score_s.size
        handoff = self.config.stage_handoff_s
        services = (score_s, softmax_s, context_s)
        stages = self._build_stages()
        starts = np.zeros((n, len(STAGES)))
        ends = np.zeros((n, len(STAGES)))
        server_of = np.zeros((n, len(STAGES)), dtype=np.int64)

        phase_start = 0.0
        for stage_index, stage in enumerate(stages):
            free_at = [phase_start] * len(stage.idle)
            for row in range(n):
                if stage.keyed:
                    server = int(stream_of[row])
                else:
                    server = int(np.argmin(free_at))
                service = stage.service_time(server, services[stage_index][row])
                starts[row, stage_index] = free_at[server]
                ends[row, stage_index] = free_at[server] + service
                server_of[row, stage_index] = server
                free_at[server] = ends[row, stage_index]
                stage.occupy(service)
                stage.served[server] += 1
            # the whole operand queues ahead of every phase: all rows are
            # resident before any of them starts
            stage.queue_peak = n
            # one handoff per stage boundary — the operand is forwarded once
            phase_start = max(free_at) + handoff

        completions = ends[:, 2]
        total = float(completions.max())
        return self._package("operand", total, starts, ends, server_of, stream_of, stages, completions)

    # ------------------------------------------------------------------ #
    # packaging
    # ------------------------------------------------------------------ #
    def _package(
        self,
        granularity: str,
        total: float,
        starts: np.ndarray,
        ends: np.ndarray,
        server_of: np.ndarray,
        stream_of: np.ndarray,
        stages: list[ServerPool],
        completions: np.ndarray,
    ) -> ExecutedSchedule:
        records = tuple(
            RowRecord(
                row=row,
                stream=int(stream_of[row]),
                engine=int(server_of[row, 1]),
                score_start_s=float(starts[row, 0]),
                score_end_s=float(ends[row, 0]),
                softmax_start_s=float(starts[row, 1]),
                softmax_end_s=float(ends[row, 1]),
                context_start_s=float(starts[row, 2]),
                context_end_s=float(ends[row, 2]),
            )
            for row in range(starts.shape[0])
        )
        return ExecutedSchedule(
            granularity=granularity,
            total_latency_s=total,
            steady_state_interval_s=_steady_interval(completions, total),
            num_streams=self.streams,
            num_softmax_engines=self.softmax_engines,
            records=records,
            stage_busy_s={stage.name: stage.busy_s for stage in stages},
            queue_peaks={stage.name: stage.queue_peak for stage in stages},
            engine_rows=tuple(stages[1].served),
        )


# ---------------------------------------------------------------------- #
# functional execution: real tensors through the schedule
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AttentionExecution:
    """Output tensors and the executed schedule of one attention forward."""

    context: np.ndarray
    scores: np.ndarray
    weights: np.ndarray
    schedule: ExecutedSchedule


def _stats_delta(before, after):
    """Field-wise difference of two access-stats dataclasses."""
    return replace(
        before,
        **{
            f.name: getattr(after, f.name) - getattr(before, f.name)
            for f in fields(after)
        },
    )


class AttentionExecutor:
    """Streams real attention tensors through the executed schedule.

    The functional counterpart of :class:`PipelineExecutor`: given
    ``(batch, heads, seq, head_dim)`` query/key/value tensors it

    1. programs each head's ``K^T`` and ``V`` operands into persistent
       :class:`~repro.core.matmul_engine.MatMulEngine` tile banks,
    2. streams every query row through the score tiles, hands the finished
       score row to a softmax engine of the pool and contracts the
       attention row against the ``V`` tiles — producing the actual
       attention output, and
    3. *measures* each row's three stage service times from the engines'
       access-statistics ledgers (the deltas each row adds to
       ``MatMulEngine.access_stats`` / ``RRAMSoftmaxEngine.access_stats``)
       and replays them through the event-driven executor to obtain the
       :class:`ExecutedSchedule`.

    The tiles of one operand bank fire in parallel on the same input row,
    so the measured GEMM-row latency is the serialized ledger latency
    divided by the bank's tile count — the same tile-parallelism assumption
    :meth:`~repro.core.matmul_engine.MatMulEngine.row_latency_s` makes.
    Functional softmax work is spread round-robin over the pool (the
    engines are assumed homogeneous — per-engine *speed* asymmetry is a
    timed-executor scenario, see ``softmax_speedups``), while the schedule
    dispatches rows to whichever engine frees first.
    """

    def __init__(
        self,
        matmul_engine: "MatMulEngine | None" = None,
        softmax_engines: "int | Sequence[RRAMSoftmaxEngine]" = 4,
        config: PipelineConfig | None = None,
        *,
        tiles_per_stream: int = 2,
        jitter: StageJitter | None = None,
    ) -> None:
        if matmul_engine is None:
            from repro.core.matmul_engine import MatMulEngine

            matmul_engine = MatMulEngine()
        self.matmul_engine = matmul_engine
        if isinstance(softmax_engines, int):
            from repro.core.softmax_engine import RRAMSoftmaxEngine

            require_positive(softmax_engines, "softmax_engines")
            softmax_engines = [RRAMSoftmaxEngine() for _ in range(softmax_engines)]
        self.softmax_pool = list(softmax_engines)
        if not self.softmax_pool:
            raise ValueError("the softmax engine pool must not be empty")
        self.config = config or PipelineConfig()
        require_positive(tiles_per_stream, "tiles_per_stream")
        self.tiles_per_stream = tiles_per_stream
        self.jitter = jitter
        self.last_schedule: ExecutedSchedule | None = None

    def executor_for(self, num_heads: int, batch_size: int) -> PipelineExecutor:
        """The timed executor matching this workload's stream/tile allocation."""
        streams = attention_streams(
            num_heads,
            batch_size,
            self.matmul_engine.config.num_tiles,
            self.tiles_per_stream,
        )
        return PipelineExecutor(
            self.config,
            streams=streams,
            softmax_engines=len(self.softmax_pool),
            jitter=self.jitter,
        )

    def run(
        self,
        query: np.ndarray,
        key: np.ndarray,
        value: np.ndarray,
        *,
        scale: float | None = None,
        mask: np.ndarray | None = None,
    ) -> AttentionExecution:
        """Execute attention for ``(batch, heads, seq, head_dim)`` tensors."""
        query = np.asarray(query, dtype=np.float64)
        key = np.asarray(key, dtype=np.float64)
        value = np.asarray(value, dtype=np.float64)
        if query.ndim != 4 or key.shape != query.shape or value.shape != query.shape:
            raise ValueError(
                "query/key/value must share one (batch, heads, seq, head_dim) "
                f"shape, got {query.shape}, {key.shape}, {value.shape}"
            )
        batch, heads, seq_len, head_dim = query.shape
        if scale is None:
            scale = 1.0 / np.sqrt(head_dim)
        mask_arr = None
        if mask is not None:
            mask_arr = np.broadcast_to(
                np.asarray(mask, dtype=np.float64), (batch, heads, seq_len, seq_len)
            )

        executor = self.executor_for(heads, batch)
        engine = self.matmul_engine
        pool = self.softmax_pool
        n = batch * heads * seq_len

        scores = np.empty((batch, heads, seq_len, seq_len))
        weights = np.empty_like(scores)
        context = np.empty_like(query)
        score_s = np.empty(n)
        softmax_s = np.empty(n)
        context_s = np.empty(n)
        stream_of = np.empty(n, dtype=np.int64)

        row = 0
        for b in range(batch):
            for h in range(heads):
                stream = (b * heads + h) % executor.streams
                # the head-stream's stationary operands: programmed once,
                # before streaming, so per-row ledger deltas are read-only
                k_operand = engine.program_operand(key[b, h].T)
                v_operand = engine.program_operand(value[b, h])
                for i in range(seq_len):
                    before = replace(engine.access_stats)
                    score_row = engine.matmul(query[b, h, i : i + 1], k_operand)[0] * scale
                    after = replace(engine.access_stats)
                    score_s[row] = engine.latency_s_of(
                        _stats_delta(before, after)
                    ) / k_operand.num_tiles
                    if mask_arr is not None:
                        score_row = score_row + mask_arr[b, h, i]
                    scores[b, h, i] = score_row

                    soft = pool[row % len(pool)]
                    soft_before = soft.access_stats
                    weights[b, h, i] = soft.softmax(score_row)
                    softmax_s[row] = soft.latency_s_of(
                        _stats_delta(soft_before, soft.access_stats)
                    )

                    before = replace(engine.access_stats)
                    context[b, h, i] = engine.matmul(weights[b, h, i : i + 1], v_operand)[0]
                    after = replace(engine.access_stats)
                    context_s[row] = engine.latency_s_of(
                        _stats_delta(before, after)
                    ) / v_operand.num_tiles
                    stream_of[row] = stream
                    row += 1

        if self.jitter is not None:
            # ledger-derived service times are deterministic; the configured
            # jitter perturbs them the same way the timed executor would
            factors = self.jitter.factors(n)
            score_s *= factors[:, 0]
            softmax_s *= factors[:, 1]
            context_s *= factors[:, 2]
        schedule = executor.execute_service_times(
            score_s, softmax_s, context_s, stream_of=stream_of
        )
        self.last_schedule = schedule
        return AttentionExecution(
            context=context, scores=scores, weights=weights, schedule=schedule
        )
