"""Area models for RRAM arrays and their peripheral circuits.

RRAM cell area follows the standard ``4 F^2`` rule for a 1T1R-free crosspoint
cell (``F`` = feature size); peripheral area (wordline drivers, column muxes,
sense amplifiers, ADCs) is added per row/column from the converter models.
These are the same modelling assumptions NeuroSim makes at its behavioural
("estimation") level, which is how the paper sized its crossbars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rram.converters import ADC, DAC, SampleAndHold, SenseAmplifier
from repro.utils.validation import require_positive

__all__ = [
    "rram_cell_area_um2",
    "CrossbarAreaModel",
]


def rram_cell_area_um2(feature_nm: float = 32.0, cell_factor: float = 4.0) -> float:
    """Area of one crosspoint RRAM cell: ``cell_factor * F^2`` in um^2."""
    require_positive(feature_nm, "feature_nm")
    require_positive(cell_factor, "cell_factor")
    feature_um = feature_nm * 1e-3
    return cell_factor * feature_um * feature_um


@dataclass(frozen=True)
class CrossbarAreaModel:
    """Computes the silicon area of one crossbar array plus peripherals.

    Attributes
    ----------
    feature_nm:
        Technology feature size for the cell-area rule.
    cell_factor:
        Cell size in units of F^2 (4 for a crosspoint cell, ~12 for 1T1R).
    driver_area_um2:
        Area of one wordline driver.
    """

    feature_nm: float = 32.0
    cell_factor: float = 4.0
    driver_area_um2: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.feature_nm, "feature_nm")
        require_positive(self.cell_factor, "cell_factor")
        require_positive(self.driver_area_um2, "driver_area_um2")

    @property
    def cell_area_um2(self) -> float:
        """Area of one RRAM cell."""
        return rram_cell_area_um2(self.feature_nm, self.cell_factor)

    def array_area_um2(self, rows: int, cols: int) -> float:
        """Bare array area (cells and wires only)."""
        if rows < 1 or cols < 1:
            raise ValueError(f"array dimensions must be positive, got {rows}x{cols}")
        return rows * cols * self.cell_area_um2

    def vmm_crossbar_area_um2(
        self,
        rows: int,
        cols: int,
        adc: ADC,
        dac: DAC,
        adc_share: int = 8,
    ) -> float:
        """Full VMM crossbar: array + row DACs + column S&H + shared ADCs."""
        if adc_share < 1:
            raise ValueError(f"adc_share must be >= 1, got {adc_share}")
        array = self.array_area_um2(rows, cols)
        drivers = rows * (self.driver_area_um2 + dac.area_um2)
        sample_hold = cols * SampleAndHold().area_um2
        adcs = max(1, cols // adc_share) * adc.area_um2
        return array + drivers + sample_hold + adcs

    def cam_crossbar_area_um2(self, rows: int, bits: int) -> float:
        """CAM crossbar: 2 cells per bit + matchline sense amp per row + drivers."""
        if rows < 1 or bits < 1:
            raise ValueError(f"CAM dimensions must be positive, got {rows}x{bits}")
        array = self.array_area_um2(rows, 2 * bits)
        sense = rows * SenseAmplifier().area_um2
        drivers = 2 * bits * self.driver_area_um2
        return array + sense + drivers

    def lut_crossbar_area_um2(self, rows: int, value_bits: int) -> float:
        """LUT crossbar: one cell per bit + bitline sense amp per column + drivers."""
        if rows < 1 or value_bits < 1:
            raise ValueError(
                f"LUT dimensions must be positive, got {rows}x{value_bits}"
            )
        array = self.array_area_um2(rows, value_bits)
        sense = value_bits * SenseAmplifier().area_um2
        drivers = rows * self.driver_area_um2
        return array + sense + drivers
