"""The exponential unit of the softmax engine (Fig. 2 of the paper).

Three crossbars and a counter bank cooperate:

* a **CAM crossbar** stores every representable ``x_max - x_i`` magnitude
  code; searching a difference code returns a one-hot match vector (a miss
  means the difference is so large that its exponential rounds to zero);
* a **LUT crossbar** stores ``round(e^{-d} * 2^m) * 2^{-m}`` per row; the
  match vector selects the row, and the read-out word *is* the exponential
  of the input;
* the **counter bank** accumulates how many inputs matched each row;
* a **VMM crossbar** storing the very same exponential values turns the
  final counter histogram into the softmax denominator
  ``sum_j e^{x_j - x_max}`` in a single analog pass.

With ideal devices the unit's numerics are exactly those of
:class:`repro.nn.softmax_models.FixedPointSoftmax`; the noise configuration
lets the E9 ablation perturb the LUT readout and the analog summation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.area import CrossbarAreaModel
from repro.core.config import SoftmaxEngineConfig
from repro.core.counter import CounterBank
from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.rram.converters import ADC, DAC
from repro.rram.lut import LUTConfig, LUTCrossbar, exponential_lut_entries
from repro.rram.noise import NoiseModel

__all__ = ["ExponentResult", "ExponentialUnit"]


@dataclass(frozen=True)
class ExponentResult:
    """Output of the exponential unit for one row of differences.

    Attributes
    ----------
    exponentials:
        ``e^{x_i - x_max}`` per element, quantised to the LUT grid (zero for
        CAM misses).
    denominator:
        ``sum_j e^{x_j - x_max}`` as produced by the VMM crossbar.
    histogram:
        Final counter values (matches per representable level).
    misses:
        Number of inputs whose difference exceeded the stored range.
    """

    exponentials: np.ndarray
    denominator: float
    histogram: np.ndarray
    misses: int


class ExponentialUnit:
    """Functional and cost model of the CAM + LUT + counter + VMM unit."""

    def __init__(self, config: SoftmaxEngineConfig | None = None) -> None:
        self.config = config or SoftmaxEngineConfig()
        cfg = self.config
        fmt = cfg.fmt

        self.cam = CAMCrossbar(
            CAMConfig(rows=cfg.exp_rows, bits=fmt.magnitude_bits, seed=1)
        )
        stored_levels = min(cfg.exp_rows, fmt.num_levels)
        self._stored_levels = stored_levels
        self.cam.program_codes(np.arange(stored_levels, dtype=np.int64))

        self.lut = LUTCrossbar(
            LUTConfig(
                rows=cfg.exp_rows,
                value_bits=cfg.lut_value_bits,
                frac_bits=cfg.lut_frac_bits,
            )
        )
        arguments = -np.arange(stored_levels, dtype=np.float64) * fmt.resolution
        self._lut_values = exponential_lut_entries(arguments, cfg.lut_frac_bits)
        self.lut.program_values(self._lut_values)

        # Only levels whose LUT entry is non-zero need a counter: rows whose
        # exponential already rounds to zero contribute nothing to the
        # denominator, so a match there never has to be counted.  With m = 4
        # this is ~16-32 counters instead of one per CAM row.
        self._active_levels = int(np.count_nonzero(self._lut_values))
        self.counters = CounterBank(
            num_counters=max(1, self._active_levels), bits=cfg.counter_bits
        )
        self.noise = NoiseModel(cfg.noise)
        self._area_model = CrossbarAreaModel()
        # the VMM crossbar's ADC must cover the sum's dynamic range; 10 bits
        # is enough for sequence lengths up to the counters' capacity
        self._vmm_adc = ADC(bits=10)
        self._vmm_dac = DAC(bits=cfg.counter_bits)

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    @property
    def lut_values(self) -> np.ndarray:
        """The quantised exponential table (index = difference code)."""
        return self._lut_values.copy()

    def process(self, difference_codes: np.ndarray) -> ExponentResult:
        """Exponentials and denominator for one row of difference codes."""
        codes = np.asarray(difference_codes, dtype=np.int64).ravel()
        if codes.size < 1:
            raise ValueError("difference_codes must not be empty")
        if np.any(codes < 0):
            raise ValueError("difference codes must be non-negative magnitudes")

        hits = codes < self._stored_levels
        exponentials = np.zeros(codes.size, dtype=np.float64)
        exponentials[hits] = self._lut_values[codes[hits]]
        # analog LUT readout noise (zero in the ideal configuration)
        exponentials = self.noise.perturb_current(exponentials)

        # only matches on levels with a non-zero exponential are counted;
        # everything else would multiply a zero LUT entry in the summation
        counted = codes < self._active_levels
        rows = np.where(counted, codes, -1)
        self.counters.reset()
        histogram = self.counters.accumulate_histogram(rows)

        denominator = float(histogram @ self._lut_values[: self.counters.num_counters])
        denominator = float(self.noise.perturb_current(np.asarray([denominator]))[0])

        return ExponentResult(
            exponentials=exponentials,
            denominator=denominator,
            histogram=histogram,
            misses=int(np.count_nonzero(~hits)),
        )

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """CAM + LUT + VMM crossbars, counters, and the VMM converters."""
        cfg = self.config
        cam_area = self._area_model.cam_crossbar_area_um2(
            cfg.exp_rows, cfg.fmt.magnitude_bits
        )
        lut_area = self._area_model.lut_crossbar_area_um2(cfg.exp_rows, cfg.lut_value_bits)
        vmm_area = self._area_model.vmm_crossbar_area_um2(
            cfg.exp_rows, cfg.lut_value_bits, adc=self._vmm_adc, dac=self._vmm_dac, adc_share=cfg.lut_value_bits
        )
        return cam_area + lut_area + vmm_area + self.counters.area_um2()

    def element_latency_s(self) -> float:
        """Latency of one element: CAM search then LUT read (counter overlaps)."""
        return self.cam.search_latency_s() + self.lut.read_latency_s()

    def element_energy_j(self) -> float:
        """Energy of one element: CAM search + LUT read + counter increment."""
        return (
            self.cam.search_energy_j()
            + self.lut.read_energy_j()
            + self.counters.increment_energy_j()
        )

    def summation_latency_s(self) -> float:
        """Latency of the single VMM pass producing the denominator."""
        return (
            self._vmm_dac.latency_s
            + self.lut.config.device.read_pulse_s
            + self._vmm_adc.latency_s
        )

    def summation_energy_j(self) -> float:
        """Energy of the single VMM pass producing the denominator."""
        cfg = self.config
        v = self.lut.config.device.read_voltage_v
        g_mid = 0.5 * (
            1.0 / self.lut.config.device.r_on_ohm + 1.0 / self.lut.config.device.r_off_ohm
        )
        array = cfg.exp_rows * cfg.lut_value_bits * v * v * g_mid * self.lut.config.device.read_pulse_s
        dacs = cfg.exp_rows * self._vmm_dac.energy_per_conversion_j
        adc = self._vmm_adc.energy_per_conversion_j
        return array + dacs + adc

    def row_latency_s(self, seq_len: int) -> float:
        """Latency of the exponential stage for one row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return seq_len * self.element_latency_s() + self.summation_latency_s()

    def row_energy_j(self, seq_len: int) -> float:
        """Energy of the exponential stage for one row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return seq_len * self.element_energy_j() + self.summation_energy_j()

    def power_w(self) -> float:
        """Average power while continuously processing elements."""
        return self.element_energy_j() / self.element_latency_s()
