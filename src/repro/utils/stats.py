"""Small statistics helpers shared by the analysis and benchmark code."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RunningStats",
    "summarize",
    "percentile_range",
    "geometric_mean",
    "relative_error",
    "kl_divergence",
]


@dataclass
class RunningStats:
    """Streaming mean / variance / extrema (Welford's algorithm).

    Useful when analysing attention-score ranges over many batches without
    materialising every score, which is what the bit-width analysis of
    Section II does across whole datasets.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def update(self, values: np.ndarray | float) -> None:
        """Fold one value or an array of values into the running statistics."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        for value in arr:
            self.count += 1
            delta = value - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (value - self.mean)
            if value < self.minimum:
                self.minimum = float(value)
            if value > self.maximum:
                self.maximum = float(value)

    @property
    def variance(self) -> float:
        """Population variance of the values seen so far."""
        if self.count == 0:
            return float("nan")
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Population standard deviation of the values seen so far."""
        return float(np.sqrt(self.variance))

    @property
    def range(self) -> float:
        """``max - min`` of the values seen so far."""
        if self.count == 0:
            return float("nan")
        return self.maximum - self.minimum


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Return a dictionary of common summary statistics for ``values``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sequence")
    return {
        "count": float(arr.size),
        "mean": float(np.mean(arr)),
        "std": float(np.std(arr)),
        "min": float(np.min(arr)),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(np.max(arr)),
    }


def percentile_range(values: np.ndarray, coverage: float = 0.999) -> tuple[float, float]:
    """Symmetric percentile range covering ``coverage`` of the distribution.

    The bit-width analysis uses this to discard extreme outliers before
    sizing the integer part of the fixed-point format.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot compute percentile range of an empty array")
    tail = (1.0 - coverage) / 2.0 * 100.0
    low = float(np.percentile(arr, tail))
    high = float(np.percentile(arr, 100.0 - tail))
    return low, high


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; standard way to aggregate speedup ratios."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot compute geometric mean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|`` with a zero-reference guard."""
    if reference == 0:
        return float("inf") if measured != 0 else 0.0
    return abs(measured - reference) / abs(reference)


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """KL divergence ``D(p || q)`` between two probability vectors.

    Used to quantify how far the fixed-point RRAM softmax output drifts from
    the exact floating-point softmax distribution.
    """
    p = np.asarray(p, dtype=np.float64).ravel()
    q = np.asarray(q, dtype=np.float64).ravel()
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    p = np.clip(p, epsilon, None)
    q = np.clip(q, epsilon, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))
