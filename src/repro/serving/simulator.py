"""Request-level discrete-event simulation of a serving fleet.

The simulator is a thin client of :mod:`repro.core.events` — the same
event-loop/server-pool substrate the attention-pipeline executor runs on,
one level up the stack: the *servers* are whole accelerator chips, the
*items* are inference requests, and service times are whole-model batched
inference latencies from the fleet's service model.

Dynamics
--------

Requests arrive open-loop (their timestamps do not react to system state),
join one fleet-wide FIFO queue, and leave in dispatched batches governed by
the :class:`~repro.serving.batcher.DynamicBatcher`: an idle chip takes a
batch as soon as the queue holds ``max_batch_size`` requests **or** the
oldest queued request has waited ``max_wait_s``.  A dispatched batch pads
to its longest member's sequence length, occupies its chip for the service
model's batch latency, and completes all member requests at once (requests
within a batch keep FIFO order in the records).  In the single-chip,
no-batching limit with deterministic service this is exactly an M/D/1
queue, which :mod:`repro.serving.theory` cross-validates.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.events import ARRIVE, FREE, TIMEOUT, EventLoop, ServerPool
from repro.serving.arrivals import Request
from repro.serving.batcher import NO_BATCHING, DynamicBatcher
from repro.serving.fleet import ChipFleet
from repro.serving.report import BatchRecord, RequestRecord, ServingReport

__all__ = ["ServingSimulator"]

#: Deferred dispatch check: sorts after FREE/ARRIVE/TIMEOUT at the same
#: instant, so simultaneous arrivals (real in replayed traces) are all
#: enqueued before any batch-formation decision at that timestamp.
_DISPATCH = TIMEOUT + 1


class ServingSimulator:
    """Event-driven executor of a request stream over a chip fleet."""

    def __init__(self, fleet: ChipFleet, batcher: DynamicBatcher = NO_BATCHING) -> None:
        self.fleet = fleet
        self.batcher = batcher

    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Serve every request and report the completed run.

        ``requests`` need not be sorted; they are served in arrival order
        (ties broken by the given order, which arrival generators emit by
        index).
        """
        if not requests:
            raise ValueError("cannot simulate an empty request stream")
        ordered = sorted(requests, key=lambda r: r.arrival_s)

        loop = EventLoop()
        chips = ServerPool("chips", self.fleet.num_chips, speedups=self.fleet.speedups)
        for request in ordered:
            loop.schedule(request.arrival_s, ARRIVE, request)

        request_records: list[RequestRecord] = []
        batch_records: list[BatchRecord] = []
        timed_wait = self.batcher.max_wait_s > 0.0
        queued: set[int] = set()  # indexes awaiting dispatch (timeout liveness)

        def dispatch(time: float, force: bool = False) -> None:
            """Release ready batches to idle chips until either runs out.

            ``force`` releases the first batch even if the policy says the
            head is not quite mature: it is set by a TIMEOUT event whose
            request is still queued, where ``(arrival + max_wait) - arrival``
            may round below ``max_wait`` and strand the queue forever.
            """
            while True:
                depth = chips.queue_depth()
                oldest = chips.peek(0)
                if oldest is None:
                    return
                if not force and not self.batcher.ready(depth, time - oldest.arrival_s):
                    return
                chip = chips.idle_server()
                if chip is None:
                    return
                force = False  # one forced batch per timeout
                batch = [chips.pop(0) for _ in range(self.batcher.batch_of(depth))]
                queued.difference_update(r.index for r in batch)
                seq_len = max(r.seq_len for r in batch)
                service = self.fleet.batch_latency_s(chip, len(batch), seq_len)
                completion = time + service
                chips.acquire(chip)
                chips.occupy(service)
                loop.schedule(completion, FREE, chip)
                batch_index = len(batch_records)
                batch_records.append(
                    BatchRecord(
                        index=batch_index,
                        chip=chip,
                        dispatch_s=time,
                        completion_s=completion,
                        size=len(batch),
                        seq_len=seq_len,
                        energy_j=self.fleet.batch_energy_j(chip, len(batch), seq_len),
                    )
                )
                request_records.extend(
                    RequestRecord(
                        index=r.index,
                        arrival_s=r.arrival_s,
                        dispatch_s=time,
                        completion_s=completion,
                        chip=chip,
                        batch_index=batch_index,
                        batch_size=len(batch),
                        seq_len=seq_len,
                    )
                    for r in batch
                )

        while loop:
            time, kind, data = loop.pop()
            if kind == ARRIVE:
                request = data[0]
                chips.enqueue(0, request)
                queued.add(request.index)
                if timed_wait:
                    # lazy maturity timer: when it fires the request either
                    # already left in a batch (no-op) or unblocks a partial one
                    loop.schedule(
                        time + self.batcher.max_wait_s, TIMEOUT, request.index
                    )
                loop.schedule(time, _DISPATCH)
            elif kind == FREE:
                chips.release(data[0])
                loop.schedule(time, _DISPATCH)
            elif kind == TIMEOUT:
                if data[0] in queued:
                    loop.schedule(time, _DISPATCH, data[0])
            else:  # _DISPATCH
                # force only if the matured request is *still* waiting now
                dispatch(time, force=bool(data) and data[0] in queued)

        # the pool tracks aggregate busy time; per-chip occupancy comes from
        # the batch records (each batch knows which chip it occupied)
        per_chip_busy = [0.0] * self.fleet.num_chips
        for batch in batch_records:
            per_chip_busy[batch.chip] += batch.service_s
        return ServingReport(
            num_chips=self.fleet.num_chips,
            requests=tuple(request_records),
            batches=tuple(batch_records),
            chip_busy_s=tuple(per_chip_busy),
            queue_peak=chips.queue_peak,
            chip_idle_power_w=tuple(
                self.fleet.idle_power_w(chip) for chip in range(self.fleet.num_chips)
            ),
        )
