"""Fault-injected serving benchmark and graceful-degradation smoke gates.

The fault machinery rides the same event loop as healthy serving, so it
must stay cheap enough to sweep failure rates inside experiments: tens of
thousands of requests with live failure/repair processes have to simulate
in well under a second, and shedding has to actually degrade gracefully —
goodput under a 10% steady-state capacity loss stays above a pinned floor
of the fault-free baseline.
"""

from __future__ import annotations

import pytest

from repro.serving import (
    AdmissionController,
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    FixedServiceModel,
    PoissonArrivals,
    RetryPolicy,
    ServingSimulator,
)

from conftest import record


@pytest.mark.smoke
def test_bench_fault_serving_throughput(benchmark):
    """30k requests with live failure/repair processes stay sub-second."""
    service = 1e-3
    rate = 0.7 * 4 / service
    requests = PoissonArrivals(rate, seq_len=128, seed=7).generate(30000)
    fleet = ChipFleet(
        FixedServiceModel(service, reprogram_latency_s=4e-3), num_chips=4
    )
    simulator = ServingSimulator(
        fleet,
        DynamicBatcher(max_batch_size=8, max_wait_s=2e-3),
        faults=FaultInjector.for_capacity_loss(
            0.10, repair_s=4e-3, detection_s=0.05, seed=5
        ),
        retry=RetryPolicy(max_attempts=3, backoff_base_s=2e-3, jitter=0.25),
    )

    report = benchmark(simulator.run, requests)

    record(
        benchmark,
        requests_per_wall_second=round(len(requests) / benchmark.stats["mean"]),
        num_failures=report.num_failures,
        fleet_availability_pct=round(report.fleet_availability * 100, 2),
        completion_fraction=round(report.completion_fraction, 4),
    )
    assert report.num_offered == len(requests)
    assert report.num_failures > 0  # the run actually exercised faults
    assert benchmark.stats["mean"] < 1.0


@pytest.mark.smoke
def test_bench_fault_serving_goodput_floor(benchmark):
    """Shedding holds goodput under 10% capacity loss near the baseline.

    The pinned floor (85% of the fault-free goodput, the e11 acceptance
    band) guards the graceful-degradation property itself: a regression
    in health-aware dispatch, deadline shedding or retry accounting shows
    up here as lost goodput before it shows up in the golden report.
    """
    service = 1e-3
    deadline = 0.25
    rate = 0.9 * 4 * 8 / (8 * service)  # 90% of the fleet's request rate
    requests = PoissonArrivals(rate, seq_len=128, seed=11).generate(12000)
    fleet = ChipFleet(
        FixedServiceModel(service, reprogram_latency_s=4e-3), num_chips=4
    )
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
    retry = RetryPolicy(
        max_attempts=3, backoff_base_s=2e-3, jitter=0.25, deadline_s=deadline
    )
    admission = AdmissionController(
        max_queue_depth=int(deadline * rate), shed_expired=True, degraded_max_batch=4
    )
    faults = FaultInjector.for_capacity_loss(
        0.10, repair_s=4e-3, detection_s=0.05, seed=5
    )

    def both_arms():
        baseline = ServingSimulator(fleet, batcher).run(requests)
        degraded = ServingSimulator(
            fleet, batcher, faults=faults, retry=retry, admission=admission
        ).run(requests)
        return baseline, degraded

    baseline, degraded = benchmark(both_arms)

    baseline_goodput = sum(
        1 for r in baseline.requests if r.latency_s <= deadline
    ) / baseline.makespan_s
    retention = degraded.goodput_rps / baseline_goodput
    record(
        benchmark,
        baseline_goodput_rps=round(baseline_goodput, 1),
        degraded_goodput_rps=round(degraded.goodput_rps, 1),
        goodput_retention_pct=round(retention * 100, 1),
        degraded_p99_ms=round(degraded.p99_latency_s * 1e3, 2),
        num_shed=degraded.num_shed,
        num_abandoned=degraded.num_abandoned,
    )
    assert degraded.num_failures > 0
    # graceful degradation: >= 85% of fault-free goodput at 10% capacity loss
    assert retention >= 0.85
    # and the tail stays bounded near the SLO, not a queue blow-up
    assert degraded.p99_latency_s < 2 * deadline
