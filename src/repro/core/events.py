"""Discrete-event primitives shared by the pipeline executor and the serving simulator.

Two simulations in this codebase are, at heart, the same machine: the
attention-pipeline executor (:mod:`repro.core.scheduler`) moves *rows*
through stages of tile groups and softmax engines, and the request-level
serving simulator (:mod:`repro.serving`) moves *requests and batches*
through a fleet of accelerator chips.  Both need a heap of timed events
with deterministic tie-breaking, and both need FIFO pools of servers with
per-server speed factors and queue/busy-time bookkeeping.  This module
factors those primitives out so each simulation is a thin client:

* :class:`EventLoop` — a stable priority queue of ``(time, kind, *data)``
  events.  Events at equal time are ordered by ``kind`` first (lower kind
  wins — e.g. a server *freeing* is processed before a simultaneous
  *arrival*, so the arrival sees the idle server directly) and then by
  insertion order, which keeps every simulation bit-deterministic.
* :class:`ServerPool` — a set of identical-role servers with optional
  per-server speed factors, either *keyed* (each client is bound to one
  server and queues behind it) or *shared* (one FIFO queue drained by
  whichever server frees first), tracking busy time, queue peaks and
  per-server completion counts.
* :class:`StageJitter` — seeded log-normal service-time perturbation,
  shared by every simulation that wants per-item timing variation while
  staying reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["FREE", "ARRIVE", "TIMEOUT", "TICK", "EventLoop", "ServerPool", "StageJitter"]

#: Canonical event kinds.  At equal timestamps lower kinds are processed
#: first: a server finishing its forward (``FREE``) is handled before a
#: simultaneous arrival (``ARRIVE``), which is handled before batching
#: timers (``TIMEOUT``).  Clients may define further kinds; only the
#: relative ordering matters.
FREE, ARRIVE, TIMEOUT = 0, 1, 2

#: Periodic controller timers (autoscaler evaluation, metric sampling).
#: ``TICK`` deliberately sorts *after* every workload kind — including the
#: deferred-dispatch kind clients conventionally place at ``TIMEOUT + 1`` —
#: so a controller observing the system at time ``t`` sees the state after
#: all of ``t``'s arrivals, completions and dispatches have settled.
TICK = TIMEOUT + 2


class EventLoop:
    """A stable heap of timed events.

    Events are ``(time, kind, *data)`` tuples.  The loop keeps a strictly
    deterministic order: primary key is ``time``, secondary is ``kind``
    (lower first) and ties beyond that are broken by insertion order, so
    payloads are never compared.  :attr:`now` tracks the timestamp of the
    most recently popped event.

    The loop counts its own traffic — :attr:`events_scheduled` and
    :attr:`events_popped` — so simulations built on it get first-party
    hot-path numbers (surfaced by the serving profiler) at the cost of one
    integer increment per event.
    """

    __slots__ = ("_heap", "_counter", "now", "events_popped")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, tuple[Any, ...]]] = []
        self._counter = 0
        self.now = 0.0
        self.events_popped = 0

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled on this loop."""
        return self._counter

    def schedule(self, time: float, kind: int, *data: Any) -> None:
        """Schedule an event; ``data`` rides along uncompared."""
        # inlined require_non_negative: this is the hottest call site of a
        # million-request simulation, one function call per event matters
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, kind, self._counter, data))
        self._counter += 1

    def pop(self) -> tuple[float, int, tuple[Any, ...]]:
        """Pop the next event and advance :attr:`now` to its timestamp."""
        if not self._heap:
            raise IndexError("pop from an empty event loop")
        time, kind, _, data = heapq.heappop(self._heap)
        self.now = time
        self.events_popped += 1
        return time, kind, data


class ServerPool:
    """A FIFO pool of servers with per-server speed factors.

    ``keyed=True`` binds each client to the server given by its key (e.g.
    the per-stream tile groups of the score/context GEMMs), with one queue
    per server; ``keyed=False`` is a shared pool (softmax engines, chips of
    a serving fleet) with a single queue drained by whichever server frees
    first.  ``speedups`` divides the nominal service time of each server
    (heterogeneous pools); they default to a homogeneous pool of ``1.0``.

    The pool tracks aggregate busy time (:attr:`busy_s`, charged by the
    client via :meth:`occupy`), the peak queued-item count
    (:attr:`queue_peak`) and per-server completion counts (:attr:`served`).
    """

    __slots__ = (
        "name",
        "keyed",
        "speedups",
        "idle",
        "online",
        "queues",
        "heads",
        "busy_s",
        "queue_peak",
        "served",
    )

    def __init__(
        self,
        name: str,
        num_servers: int,
        *,
        keyed: bool = False,
        speedups: Sequence[float] | None = None,
    ) -> None:
        require_positive(num_servers, "num_servers")
        self.name = name
        self.keyed = keyed
        if speedups is None:
            speedups = (1.0,) * num_servers
        self.speedups = [float(s) for s in speedups]
        if len(self.speedups) != num_servers:
            raise ValueError(
                f"{name}: got {len(self.speedups)} speedups for {num_servers} servers"
            )
        for speed in self.speedups:
            require_positive(speed, f"{name} server speedup")
        self.idle = [True] * num_servers
        self.online = [True] * num_servers
        self.queues: list[list[Any]] = [[] for _ in range(num_servers if keyed else 1)]
        self.heads = [0] * len(self.queues)
        self.busy_s = 0.0
        self.queue_peak = 0
        self.served = [0] * num_servers

    @property
    def num_servers(self) -> int:
        """Number of servers in the pool."""
        return len(self.idle)

    def queue_of(self, key: int = 0) -> int:
        """Queue index serving ``key`` (always 0 for shared pools)."""
        return key if self.keyed else 0

    def queue_depth(self) -> int:
        """Items currently waiting across all queues."""
        return sum(len(q) - h for q, h in zip(self.queues, self.heads))

    def enqueue(self, queue: int, item: Any) -> None:
        """Append an item to a queue, updating the peak-depth watermark."""
        self.queues[queue].append(item)
        self.queue_peak = max(self.queue_peak, self.queue_depth())

    def peek(self, queue: int) -> Any | None:
        """The oldest queued item without removing it (``None`` when empty)."""
        if self.heads[queue] >= len(self.queues[queue]):
            return None
        return self.queues[queue][self.heads[queue]]

    def pop(self, queue: int) -> Any | None:
        """Pop the oldest queued item (``None`` when the queue is empty)."""
        if self.heads[queue] >= len(self.queues[queue]):
            return None
        item = self.queues[queue][self.heads[queue]]
        self.heads[queue] += 1
        return item

    def idle_server(self, key: int = 0) -> int | None:
        """An idle *online* server able to serve ``key``, or ``None``.

        Keyed pools return the key's server iff it is idle; shared pools
        return the lowest-indexed idle server.  Servers taken offline via
        :meth:`set_online` (e.g. failed chips of a fault-injected serving
        fleet) are never offered, whatever their idle state.
        """
        if self.keyed:
            return key if self.idle[key] and self.online[key] else None
        for index, free in enumerate(self.idle):
            if free and self.online[index]:
                return index
        return None

    def set_online(self, server: int, online: bool) -> None:
        """Mark a server as dispatchable (``True``) or failed/offline.

        Offline servers keep their queue and bookkeeping but are skipped by
        :meth:`idle_server`; all servers start online, so pools that never
        call this behave exactly as before.  The mask serves double duty:
        fault-injected fleets take failed chips offline, and the serving
        autoscaler parks deep-idle chips the same way.
        """
        self.online[server] = online

    def num_online(self) -> int:
        """Servers currently dispatchable (online, busy or not)."""
        return sum(self.online)

    def service_time(self, server: int, nominal_s: float) -> float:
        """``nominal_s`` scaled by the server's speed factor."""
        return nominal_s / self.speedups[server]

    def acquire(self, server: int) -> None:
        """Mark a server busy and count the item it starts serving."""
        if not self.idle[server]:
            raise RuntimeError(f"{self.name}: server {server} is already busy")
        self.idle[server] = False
        self.served[server] += 1

    def release(self, server: int) -> None:
        """Mark a server idle again."""
        self.idle[server] = True

    def occupy(self, duration_s: float) -> None:
        """Charge ``duration_s`` of server occupancy to the pool's busy time."""
        self.busy_s += duration_s


@dataclass(frozen=True)
class StageJitter:
    """Per-item multiplicative jitter on service times.

    Each ``(item, stage)`` service time is scaled by ``exp(sigma * z)`` with
    ``z ~ N(0, 1)`` drawn from a generator seeded with ``seed`` — log-normal
    factors keep every service time positive.  ``sigma = 0`` disables the
    draw entirely, so a jitter-free simulation stays bit-deterministic.
    """

    sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_non_negative(self.sigma, "sigma")

    def factors(self, num_items: int, num_stages: int = 3) -> np.ndarray:
        """A ``(num_items, num_stages)`` matrix of service-time scale factors."""
        if self.sigma == 0.0:
            return np.ones((num_items, num_stages))
        rng = np.random.default_rng(self.seed)
        return np.exp(self.sigma * rng.standard_normal((num_items, num_stages)))
