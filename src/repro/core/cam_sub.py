"""The CAM/SUB crossbar: STAR's ``x_i - x_max`` stage (Fig. 1 of the paper).

One RRAM crossbar is used in a time-multiplexed manner for two jobs:

1. **CAM phase — find the maximum.**  Every representable score level is
   stored on one wordline, in *descending* order.  Each input ``x_i`` is
   searched against all wordlines in parallel; its matchline one-hot vector
   marks the row holding its value.  OR gates merge the match vectors of all
   inputs, and because the stored levels are descending, the first '1' in
   the merged vector is the row of ``x_max``.
2. **SUB phase — subtract.**  For each input, the crossbar is driven with
   the input's match vector as wordline voltages and a negative voltage on
   the ``x_max`` row; the source-line output is then ``x_i - x_max``.

Two functional paths are provided:

* :meth:`CamSubCrossbar.process` — the cycle-accurate row path.  It
  materializes the matchline vectors of every search (including the optional
  CAM search-error injection, wired from
  :attr:`~repro.core.config.SoftmaxEngineConfig.cam_search_error_rate`).
* :meth:`CamSubCrossbar.process_batch` — the vectorized batch backend.  It
  processes a whole ``(num_rows, seq_len)`` score block with zero
  Python-level per-row loops via :meth:`repro.rram.cam.CAMCrossbar.
  search_max_codes`; with error-free searches it is bit-identical to the row
  path.

Latency / energy / area of the 512 x 18 crossbar, its matchline sense
amplifiers and the OR-merge logic are accounted per access and can be
derived for any amount of work from an
:class:`~repro.core.access_stats.AccessStats` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.arch.area import CrossbarAreaModel
from repro.circuits.components import OrGateArray, Register
from repro.circuits.technology import DEFAULT_TECHNOLOGY
from repro.core.access_stats import AccessStats
from repro.core.config import SoftmaxEngineConfig
from repro.rram.cam import CAMConfig, CAMCrossbar
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.validation import as_1d_float_array

__all__ = ["CamSubResult", "CamSubBatchResult", "CamSubCrossbar"]


@dataclass(frozen=True)
class CamSubResult:
    """Output of one CAM/SUB pass over a score vector.

    Attributes
    ----------
    quantized_scores:
        The inputs on the engine's fixed-point grid (computed once here and
        reused by callers, e.g. the engine's row trace).
    max_value:
        The quantised ``x_max``.
    max_row:
        CAM row index holding ``x_max`` (rows are in descending value order).
    differences:
        Non-negative magnitudes ``x_max - x_i`` on the quantisation grid.
    difference_codes:
        The same magnitudes as integer codes (units of one LSB).
    """

    quantized_scores: np.ndarray
    max_value: float
    max_row: int
    differences: np.ndarray
    difference_codes: np.ndarray


class CamSubBatchResult:
    """Output of one CAM/SUB pass over a ``(num_rows, seq_len)`` score block.

    Per-row counterparts of :class:`CamSubResult`: ``max_values`` /
    ``max_rows`` have shape ``(num_rows,)``, everything else keeps the block
    shape.  ``quantized_scores`` and ``differences`` are dequantised lazily
    from the integer codes (and cached) — the softmax hot path only consumes
    ``difference_codes``, so the float views cost nothing unless read.
    """

    def __init__(
        self,
        fmt: FixedPointFormat,
        max_codes: np.ndarray,
        difference_codes: np.ndarray,
    ) -> None:
        self._fmt = fmt
        self.max_rows = fmt.num_levels - 1 - max_codes
        self.max_values = (max_codes - fmt.num_levels // 2) * fmt.resolution
        self.difference_codes = difference_codes

    @cached_property
    def quantized_scores(self) -> np.ndarray:
        """The inputs on the engine's fixed-point grid.

        Recovered exactly from ``x_max - (x_max - x_i)``: all quantities are
        exact multiples of the resolution, so no rounding is involved.
        """
        return self.max_values[:, None] - self.differences

    @cached_property
    def differences(self) -> np.ndarray:
        """Non-negative magnitudes ``x_max - x_i`` on the quantisation grid."""
        return self.difference_codes * self._fmt.resolution


class CamSubCrossbar:
    """Functional and cost model of the CAM/SUB crossbar."""

    def __init__(self, config: SoftmaxEngineConfig | None = None) -> None:
        self.config = config or SoftmaxEngineConfig()
        fmt = self.config.fmt
        cam_config = CAMConfig(
            rows=self.config.cam_sub_rows,
            bits=fmt.magnitude_bits,
            search_error_rate=self.config.cam_search_error_rate,
            seed=self.config.cam_seed,
        )
        self.cam = CAMCrossbar(cam_config)
        # store every representable level in DESCENDING order (Fig. 1):
        # row 0 holds the largest code, so the first merged match is x_max.
        self._codes_descending = np.arange(fmt.num_levels - 1, -1, -1, dtype=np.int64)
        self.cam.program_codes(self._codes_descending)
        self._area_model = CrossbarAreaModel()
        self._or_gates = OrGateArray.cost(self.config.cam_sub_rows, DEFAULT_TECHNOLOGY)
        self._result_register = Register.cost(self.config.cam_sub_rows, DEFAULT_TECHNOLOGY)

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    def quantize_scores(self, scores: np.ndarray) -> np.ndarray:
        """Clip and round raw scores onto the engine's fixed-point grid.

        Scores are clipped to the offset-binary signed range of the CAM code
        space (e.g. [-32, +31.75] for the 8-bit CNEWS format), matching
        :class:`repro.nn.softmax_models.FixedPointSoftmax`.
        """
        fmt = self.config.fmt
        arr = np.asarray(scores, dtype=np.float64)
        clipped = np.clip(arr, fmt.signed_min_value, fmt.signed_max_value)
        return np.rint(clipped / fmt.resolution) * fmt.resolution

    def _search_codes(self, quantized_scores: np.ndarray) -> np.ndarray:
        """Offset-binary search codes of quantised scores (any shape).

        The CAM stores score *levels*; scores can be negative, so they are
        offset into the unsigned code space ``[0, num_levels)`` by biasing
        with half the range — the standard offset-binary trick that lets one
        unsigned CAM cover a signed range.
        """
        fmt = self.config.fmt
        bias_levels = fmt.num_levels // 2
        codes = np.rint(quantized_scores / fmt.resolution).astype(np.int64) + bias_levels
        return np.clip(codes, 0, fmt.num_levels - 1)

    def _score_to_row(self, quantized_scores: np.ndarray) -> np.ndarray:
        """Map quantised scores to CAM row indices (descending storage order)."""
        # row r stores code (num_levels - 1 - r)
        return self.config.fmt.num_levels - 1 - self._search_codes(quantized_scores)

    def process(self, scores: np.ndarray) -> CamSubResult:
        """Run the CAM phase and the SUB phase over one score vector.

        This is the cycle-accurate path: every search's matchline vector is
        materialized (so the configured search-error rate can flip match
        decisions) and the OR-merge picks the first hit.
        """
        vector = as_1d_float_array(scores, "scores")
        if vector.size < 1:
            raise ValueError("score vector must not be empty")
        fmt = self.config.fmt
        bias_levels = fmt.num_levels // 2
        quantized = self.quantize_scores(vector)

        # --- CAM phase: search each input, merge match vectors with ORs ----
        matches = self.cam.search_many(self._search_codes(quantized))  # (n, rows)
        merged = np.any(matches, axis=0)
        hit_rows = np.flatnonzero(merged)
        if hit_rows.size == 0:
            if self.cam.config.search_error_rate > 0.0:
                # every true match flipped off with no false positive — an
                # all-zero merged vector makes the controller re-search, so
                # the row resolves to the true maximum
                max_row = int(self._score_to_row(quantized).min())
            else:
                raise RuntimeError("CAM search produced no match for any input")
        else:
            max_row = int(hit_rows[0])  # descending order: first hit is the max
        max_code = int(self.cam.stored_codes[max_row])
        max_value = (max_code - bias_levels) * fmt.resolution

        # --- SUB phase: x_max - x_i, non-negative magnitudes ---------------
        differences = np.clip(max_value - quantized, 0.0, None)
        difference_codes = np.rint(differences / fmt.resolution).astype(np.int64)
        return CamSubResult(
            quantized_scores=quantized,
            max_value=max_value,
            max_row=max_row,
            differences=differences,
            difference_codes=difference_codes,
        )

    def process_batch(self, scores: np.ndarray) -> CamSubBatchResult:
        """Run the CAM and SUB phases over a ``(num_rows, seq_len)`` block.

        Fully vectorized: the per-row maxima come from one batched
        :meth:`~repro.rram.cam.CAMCrossbar.search_max_codes` call and the SUB
        phase is a single broadcast subtraction.  Bit-identical to running
        :meth:`process` row by row (search errors must be disabled — the CAM
        raises otherwise).
        """
        block = np.asarray(scores, dtype=np.float64)
        if block.ndim != 2:
            raise ValueError(f"scores must be a 2D (num_rows, seq_len) block, got shape {block.shape}")
        num_rows, seq_len = block.shape
        if num_rows and seq_len < 1:
            raise ValueError("score rows must not be empty")
        fmt = self.config.fmt
        bias_levels = fmt.num_levels // 2
        resolution = fmt.resolution

        # one pass each: scale, clip, round, offset into the code space (the
        # clip/round work in-place on the scaled copy).  resolution is a
        # power of two, so every step below is exact and the codes are
        # bit-identical to quantize_scores followed by _search_codes.
        scaled = block * (1.0 / resolution)
        np.clip(
            scaled,
            fmt.signed_min_value / resolution,
            fmt.signed_max_value / resolution,
            out=scaled,
        )
        np.rint(scaled, out=scaled)
        # codes fit comfortably in 32 bits (<= 2^18 levels), halving traffic
        search_codes = scaled.astype(np.int32)
        search_codes += bias_levels

        # every code is a stored level by construction, so the batched CAM
        # search collapses to one max per row
        max_codes = self.cam.search_max_codes(search_codes, assume_hits=True)

        # the SUB phase stays in the integer code domain: x_max >= x_i, so
        # the magnitudes need no clipping and dequantise exactly (the
        # subtraction reuses the code buffer — it is not needed afterwards)
        difference_codes = np.subtract(
            max_codes[:, None].astype(np.int32), search_codes, out=search_codes
        )
        return CamSubBatchResult(
            fmt=fmt,
            max_codes=max_codes,
            difference_codes=difference_codes,
        )

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """CAM/SUB crossbar array + matchline SAs + OR merge + result register."""
        cam_area = self._area_model.cam_crossbar_area_um2(
            self.config.cam_sub_rows, self.config.fmt.magnitude_bits
        )
        return cam_area + self._or_gates.area_um2 + self._result_register.area_um2

    def power_w(self) -> float:
        """Average power while continuously processing rows."""
        # energy per row over latency per row at a representative length
        representative_len = 128
        return self.row_energy_j(representative_len) / self.row_latency_s(representative_len)

    def energy_j_of(self, stats: AccessStats) -> float:
        """Energy of the accesses recorded in ``stats``.

        Searches and SUB passes both exercise the crossbar (the array is
        time-multiplexed); OR merges are charged per element and the result
        register per row.
        """
        search = stats.cam_sub_searches * self.cam.search_energy_j()
        merge = stats.or_merges * self._or_gates.energy_per_op_j
        subtract = stats.sub_passes * self.cam.search_energy_j()
        register = stats.register_writes * self._result_register.energy_per_op_j
        return search + merge + subtract + register

    def latency_s_of(self, stats: AccessStats) -> float:
        """Serial latency of the accesses recorded in ``stats``.

        The CAM phase searches the inputs one per cycle (all wordlines in
        parallel per input); the SUB phase likewise produces one difference
        per cycle through the same time-multiplexed crossbar.  The OR merge
        settles once per row.
        """
        search = stats.cam_sub_searches * self.cam.search_latency_s()
        merge = stats.register_writes * self._or_gates.latency_s
        subtract = stats.sub_passes * self.cam.search_latency_s()
        return search + merge + subtract

    def row_latency_s(self, seq_len: int) -> float:
        """Latency of processing one score row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return self.latency_s_of(AccessStats.for_block(1, seq_len))

    def row_energy_j(self, seq_len: int) -> float:
        """Energy of processing one score row of ``seq_len`` elements."""
        if seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        return self.energy_j_of(AccessStats.for_block(1, seq_len))
