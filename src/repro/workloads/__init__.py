"""Synthetic workloads: attention-score distributions, classification task, sweeps."""

from repro.workloads.classification import ClassificationResult, ClassificationTask
from repro.workloads.scores import (
    CNEWS_PROFILE,
    COLA_PROFILE,
    DATASET_PROFILES,
    MRPC_PROFILE,
    AttentionScoreGenerator,
    ScoreProfile,
)
from repro.workloads.sweeps import (
    INTRO_SEQUENCE_SWEEP,
    PRECISION_SWEEP,
    BitwidthSweep,
    SequenceLengthSweep,
)

__all__ = [
    "ScoreProfile",
    "AttentionScoreGenerator",
    "CNEWS_PROFILE",
    "MRPC_PROFILE",
    "COLA_PROFILE",
    "DATASET_PROFILES",
    "ClassificationTask",
    "ClassificationResult",
    "SequenceLengthSweep",
    "BitwidthSweep",
    "INTRO_SEQUENCE_SWEEP",
    "PRECISION_SWEEP",
]
