"""Tensor quantisation helpers for the quantised-attention experiments.

STAR's MatMul engine follows ReTransformer: weights and activations are
quantised to 8 bits before being mapped to crossbar conductances, and the
5-bit column ADC adds further output quantisation.  These helpers provide
the per-tensor symmetric quantisation used when running BERT-base through the
hardware-aware inference path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantizationSpec", "quantize_tensor", "dequantize_tensor", "fake_quantize"]


@dataclass(frozen=True)
class QuantizationSpec:
    """Per-tensor symmetric quantisation to ``bits`` bits.

    Attributes
    ----------
    bits:
        Total bit-width including the sign bit.
    per_channel_axis:
        When not ``None``, scales are computed independently along this axis
        (the usual choice for weight matrices is the output-channel axis).
    """

    bits: int = 8
    per_channel_axis: int | None = None

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError(f"bits must be in [2, 32], got {self.bits}")

    @property
    def q_max(self) -> int:
        """Largest positive integer code."""
        return (1 << (self.bits - 1)) - 1

    def scales_for(self, tensor: np.ndarray) -> np.ndarray:
        """Quantisation scale(s) mapping the tensor range onto the code range."""
        arr = np.asarray(tensor, dtype=np.float64)
        if self.per_channel_axis is None:
            max_abs = float(np.max(np.abs(arr)))
            max_abs = max_abs if max_abs > 0 else 1.0
            return np.asarray(max_abs / self.q_max)
        reduce_axes = tuple(
            axis for axis in range(arr.ndim) if axis != self.per_channel_axis % arr.ndim
        )
        max_abs = np.max(np.abs(arr), axis=reduce_axes, keepdims=True)
        max_abs = np.where(max_abs > 0, max_abs, 1.0)
        return max_abs / self.q_max


def quantize_tensor(tensor: np.ndarray, spec: QuantizationSpec) -> tuple[np.ndarray, np.ndarray]:
    """Quantise to integer codes; returns ``(codes, scales)``."""
    arr = np.asarray(tensor, dtype=np.float64)
    scales = spec.scales_for(arr)
    codes = np.clip(np.rint(arr / scales), -spec.q_max, spec.q_max).astype(np.int64)
    return codes, scales


def dequantize_tensor(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Map integer codes back to real values."""
    return np.asarray(codes, dtype=np.float64) * scales


def fake_quantize(tensor: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Quantise and immediately dequantise (simulated-quantisation inference)."""
    codes, scales = quantize_tensor(tensor, spec)
    return dequantize_tensor(codes, scales)
