"""E2 — Fig. 1 behaviour: the CAM/SUB crossbar finds x_max and subtracts.

Benchmarks the 512 x 18 CAM/SUB crossbar processing full-length score rows
and checks that the produced maxima/differences are exact on the
quantisation grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.cam_sub import CamSubCrossbar
from repro.core.config import SoftmaxEngineConfig
from repro.utils.fixed_point import MRPC_FORMAT
from repro.workloads import CNEWS_PROFILE, AttentionScoreGenerator

from conftest import record


def test_bench_cam_sub_row_processing(benchmark):
    """Find-max + subtract over a 128-element attention-score row."""
    cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=MRPC_FORMAT))
    scores = AttentionScoreGenerator(CNEWS_PROFILE, seed=0).rows(1, 128)[0]

    result = benchmark(cam_sub.process, scores)

    quantised = cam_sub.quantize_scores(scores)
    assert result.max_value == quantised.max()
    np.testing.assert_allclose(result.differences, quantised.max() - quantised, atol=1e-12)
    record(
        benchmark,
        crossbar_rows=cam_sub.config.cam_sub_rows,
        crossbar_physical_cols=2 * cam_sub.config.fmt.magnitude_bits,
        row_latency_ns=round(cam_sub.row_latency_s(128) * 1e9, 2),
        row_energy_pj=round(cam_sub.row_energy_j(128) * 1e12, 2),
        area_um2=round(cam_sub.area_um2(), 1),
    )


def test_bench_fig1_toy_example(benchmark):
    """The 4-input toy example of Fig. 1 (4 x 8 CAM/SUB crossbar workflow)."""
    from repro.utils.fixed_point import FixedPointFormat

    cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=FixedPointFormat(3, 1), cam_sub_rows=16, exp_rows=16))
    scores = np.array([1.5, 3.0, -2.0, 0.5])

    result = benchmark(cam_sub.process, scores)

    assert result.max_value == 3.0
    np.testing.assert_allclose(result.differences, [1.5, 0.0, 5.0, 2.5])
    record(benchmark, max_value=result.max_value, max_row=result.max_row)
