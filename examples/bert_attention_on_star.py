"""Run a BERT-style encoder with its softmax executed by STAR's RRAM engine.

Run with:  python examples/bert_attention_on_star.py

Four things are demonstrated:

1. functional equivalence — a small transformer encoder is evaluated twice,
   once with the exact softmax and once with the RRAM softmax engine plugged
   into every attention layer, and the outputs are compared;
2. full analog inference — the same encoder runs with *every* GEMM on
   simulated crossbar tiles (`AnalogBackend`) feeding the RRAM softmax
   engine, swept across device read-noise levels: the end-to-end
   accuracy-under-noise scenario the compute-backend refactor opened;
3. the executed schedule — attention rows stream through the event-driven
   vector-grained pipeline (`AttentionExecutor`): real score rows from
   MatMul-engine tile banks, a pool of softmax engines, per-row timings
   measured from the access-stats ledgers;
4. full-model accounting — the BERT-base workload (12 layers, hidden 768) is
   mapped onto the STAR accelerator model to obtain the end-to-end inference
   latency, power and computing efficiency that Fig. 3 reports (with the
   executed schedule cross-validating the closed-form pipeline model),
   including the softmax-vs-matmul latency picture that motivated the paper.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import StarScheduleAnalyzer
from repro.baselines import GPUModel
from repro.core import (
    AttentionExecutor,
    MatMulEngine,
    MatMulEngineConfig,
    RRAMSoftmaxEngine,
    SoftmaxEngineConfig,
    STARAccelerator,
)
from repro.nn import AnalogBackend, BertConfig, BertEncoderModel, BertWorkload
from repro.rram import NoiseConfig
from repro.utils import CNEWS_FORMAT, format_si


def functional_equivalence_demo() -> None:
    """Small encoder evaluated with exact vs RRAM softmax."""
    print("=== 1. Encoder with RRAM softmax vs exact softmax ===")
    config = BertConfig(
        num_layers=2, hidden=64, num_heads=4, intermediate=128, vocab_size=1000, max_positions=64
    )
    rng = np.random.default_rng(0)
    token_ids = rng.integers(0, config.vocab_size, size=(2, 32))

    reference = BertEncoderModel(config, seed=7)
    engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
    hardware = BertEncoderModel(config, seed=7, softmax_fn=engine)

    out_ref = reference(token_ids)
    out_hw = hardware(token_ids)
    relative = np.abs(out_ref - out_hw) / (np.abs(out_ref).max())
    correlation = np.corrcoef(out_ref.ravel(), out_hw.ravel())[0, 1]

    print(f"encoder output shape          : {out_hw.shape}")
    print(f"softmax rows simulated in RRAM: {engine.rows_processed}")
    print(f"max relative deviation        : {relative.max():.4%}")
    print(f"output correlation            : {correlation:.6f}\n")


def full_analog_inference_demo() -> None:
    """Every GEMM on crossbar tiles + engine softmax, swept over read noise."""
    print("=== 2. Full analog BERT: crossbar GEMMs + RRAM softmax ===")
    config = BertConfig(
        num_layers=2, hidden=32, num_heads=4, intermediate=64, vocab_size=256, max_positions=32
    )
    rng = np.random.default_rng(1)
    token_ids = rng.integers(0, config.vocab_size, size=(1, 32))
    out_ref = BertEncoderModel(config, seed=7)(token_ids)

    for sigma in (0.0, 0.01, 0.05):
        backend = AnalogBackend(
            MatMulEngine(
                MatMulEngineConfig(
                    crossbar_rows=32,
                    crossbar_cols=32,
                    adc_bits=10,
                    bits_per_cell=5,
                    noise=NoiseConfig(read_noise_sigma=sigma, seed=0),
                )
            )
        )
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        analog = BertEncoderModel(config, seed=7, softmax_fn=engine, backend=backend)
        out_analog = analog(token_ids)
        correlation = np.corrcoef(out_ref.ravel(), out_analog.ravel())[0, 1]
        stats = backend.access_stats
        print(
            f"  read noise {sigma * 100:4.1f}%  output corr {correlation:.4f}  "
            f"tile VMMs {stats.vmm_ops:6d}  programming pulses {stats.programming_pulses}"
        )
    print("(stationary weights program once; QK^T / AV operands rewrite per call)\n")


def executed_schedule_demo() -> None:
    """Real tensors streamed through the event-driven vector-grained schedule."""
    print("=== 3. Executed schedule: real rows through tile banks + engine pool ===")
    config = BertConfig(
        num_layers=1, hidden=32, num_heads=4, intermediate=64, vocab_size=256, max_positions=16
    )
    executor = AttentionExecutor(
        MatMulEngine(
            MatMulEngineConfig(
                crossbar_rows=32, crossbar_cols=32, adc_bits=10, bits_per_cell=5, num_tiles=8
            )
        ),
        softmax_engines=[
            RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT)) for _ in range(4)
        ],
    )
    model = BertEncoderModel(config, seed=7, executor=executor)
    token_ids = np.random.default_rng(2).integers(0, config.vocab_size, size=(1, 16))
    model(token_ids)
    (schedule,) = model.attention_schedules()
    print(f"rows executed           : {schedule.num_rows} "
          f"({schedule.num_streams} head-streams, "
          f"{schedule.num_softmax_engines} softmax engines)")
    print(f"measured latency        : {format_si(schedule.total_latency_s, 's')} "
          f"(steady interval {format_si(schedule.steady_state_interval_s, 's')}/row)")
    print(f"softmax pool            : util {schedule.utilization('softmax') * 100:.1f}%, "
          f"rows/engine {schedule.engine_rows}, "
          f"peak queue {schedule.queue_peaks['softmax']}")
    print("(per-row stage times are measured from the engines' access-stats ledgers)\n")


def full_model_accounting() -> None:
    """BERT-base on the STAR accelerator model (the Fig. 3 scenario)."""
    print("=== 4. BERT-base (seq 128) on the STAR accelerator ===")
    workload = BertWorkload(seq_len=128)
    star = STARAccelerator()
    report = star.cost_report(workload)
    layer = star.layer_latency_breakdown(workload)

    print(f"workload                : {workload.total_ops() / 1e9:.1f} GOPs "
          f"({workload.softmax_elements() / 1e6:.1f}M softmax elements)")
    print(f"inference latency       : {format_si(report.latency_s, 's')}")
    print(f"chip power              : {format_si(report.power_w, 'W')}")
    print(f"chip area               : {report.area_mm2:.1f} mm^2")
    print(f"computing efficiency    : {report.computing_efficiency_gops_per_watt:.1f} GOPs/s/W "
          f"(paper: 612.66)")
    print("per-layer latency breakdown:")
    print(f"  Q/K/V/output GEMMs    : {format_si(layer.projection_s, 's')}")
    print(f"  attention pipeline    : {format_si(layer.attention_pipeline_s, 's')}")
    print(f"  feed-forward GEMMs    : {format_si(layer.ffn_s, 's')}")
    print("executed schedule cross-validation (event-driven vs closed-form):")
    print("  " + StarScheduleAnalyzer(star).format_table().replace("\n", "\n  ") + "\n")


def gpu_motivation() -> None:
    """The introduction's GPU observation: softmax share vs sequence length."""
    print("=== 5. Why STAR exists: softmax share of GPU latency ===")
    gpu = GPUModel()
    for seq_len in (128, 256, 384, 512, 1024):
        breakdown = gpu.latency_breakdown(BertWorkload(seq_len=seq_len))
        bar = "#" * int(round(breakdown.softmax_share * 40))
        print(f"  L={seq_len:5d}  softmax {breakdown.softmax_share * 100:5.1f}% {bar}")
    print("(the paper reports 59.20% at L=512 on a Titan RTX)\n")


def main() -> None:
    functional_equivalence_demo()
    full_analog_inference_demo()
    executed_schedule_demo()
    full_model_accounting()
    gpu_motivation()


if __name__ == "__main__":
    main()
