"""Tests for repro.utils.stats."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStats,
    geometric_mean,
    kl_divergence,
    percentile,
    percentile_range,
    relative_error,
    summarize,
)


class TestPercentile:
    def test_unweighted_matches_numpy_linear(self, rng):
        values = rng.normal(size=501)
        for q in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(np.percentile(values, q))

    def test_vector_q_returns_array(self, rng):
        values = rng.normal(size=100)
        result = percentile(values, (50.0, 95.0))
        assert isinstance(result, np.ndarray)
        assert result.shape == (2,)
        assert np.all(np.diff(result) >= 0)

    def test_equal_weights_match_unweighted(self, rng):
        values = rng.exponential(size=200)
        weighted = percentile(values, 90.0, weights=np.ones(200))
        assert weighted == pytest.approx(percentile(values, 90.0))

    def test_weights_shift_the_percentile(self):
        values = [1.0, 2.0, 3.0]
        heavy_tail = percentile(values, 50.0, weights=[1.0, 1.0, 100.0])
        heavy_head = percentile(values, 50.0, weights=[100.0, 1.0, 1.0])
        assert heavy_tail > percentile(values, 50.0) > heavy_head

    def test_single_dominant_weight(self):
        assert percentile([1.0, 5.0, 9.0], 50.0, weights=[0.0, 1.0, 0.0]) == 5.0

    def test_zero_weight_values_never_returned(self):
        # regression: a zero-weight extreme must not anchor the q=0/q=100 edges
        assert percentile([1.0, 2.0, 3.0], 100.0, weights=[1.0, 1.0, 0.0]) == 2.0
        assert percentile([1.0, 2.0, 3.0], 0.0, weights=[0.0, 1.0, 1.0]) == 2.0

    def test_single_value(self):
        assert percentile([3.5], 75.0) == 3.5
        assert percentile([3.5], 75.0, weights=[2.0]) == 3.5

    def test_interpolates_between_positions(self):
        # two points sit at positions 0 and 1: q=25 interpolates linearly
        assert percentile([0.0, 1.0], 25.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 50.0, weights=[1.0])
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 50.0, weights=[-1.0, 1.0])
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], 50.0, weights=[0.0, 0.0])

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=50,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_result_lies_within_range(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)


class TestRunningStats:
    def test_matches_numpy_moments(self, rng):
        values = rng.normal(3.0, 2.0, size=500)
        stats = RunningStats()
        stats.update(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values), rel=1e-9)
        assert stats.minimum == pytest.approx(np.min(values))
        assert stats.maximum == pytest.approx(np.max(values))

    def test_incremental_updates_equal_batch(self, rng):
        values = rng.normal(size=100)
        batch = RunningStats()
        batch.update(values)
        incremental = RunningStats()
        for value in values:
            incremental.update(value)
        assert incremental.mean == pytest.approx(batch.mean)
        assert incremental.variance == pytest.approx(batch.variance)

    def test_range(self):
        stats = RunningStats()
        stats.update([1.0, 5.0, -2.0])
        assert stats.range == pytest.approx(7.0)

    def test_empty_stats_are_nan(self):
        stats = RunningStats()
        assert np.isnan(stats.variance)
        assert np.isnan(stats.range)


class TestSummaries:
    def test_summarize_keys_and_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_summarize_reports_tail_percentiles(self):
        values = np.arange(101, dtype=np.float64)
        summary = summarize(values)
        assert summary["p50"] == pytest.approx(50.0)
        assert summary["p95"] == pytest.approx(95.0)
        assert summary["p99"] == pytest.approx(99.0)

    def test_summarize_weighted(self):
        summary = summarize([1.0, 2.0, 3.0], weights=[1.0, 1.0, 100.0])
        mean = (1 + 2 + 300) / 102
        assert summary["mean"] == pytest.approx(mean)
        assert summary["p50"] > 2.0
        # std must describe the same weighted distribution as the mean
        expected_var = (1 * (1 - mean) ** 2 + 1 * (2 - mean) ** 2 + 100 * (3 - mean) ** 2) / 102
        assert summary["std"] == pytest.approx(np.sqrt(expected_var))

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percentile_range_covers_bulk(self, rng):
        values = rng.normal(0, 1, size=10000)
        low, high = percentile_range(values, coverage=0.95)
        inside = np.mean((values >= low) & (values <= high))
        assert inside == pytest.approx(0.95, abs=0.02)

    def test_percentile_range_invalid_coverage(self):
        with pytest.raises(ValueError):
            percentile_range(np.ones(10), coverage=0.0)

    def test_percentile_range_empty(self):
        with pytest.raises(ValueError):
            percentile_range(np.array([]))


class TestRatios:
    def test_geometric_mean_of_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_geometric_mean_of_reciprocal_pair(self):
        assert geometric_mean([2.0, 0.5]) == pytest.approx(1.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")


class TestKLDivergence:
    def test_identical_distributions_have_zero_kl(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_kl_is_non_negative(self, rng):
        for _ in range(20):
            p = rng.dirichlet(np.ones(16))
            q = rng.dirichlet(np.ones(16))
            assert kl_divergence(p, q) >= -1e-12

    def test_kl_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.ones(3) / 3, np.ones(4) / 4)

    def test_kl_normalises_inputs(self):
        p = np.array([2.0, 3.0, 5.0])
        q = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, q) == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=2, max_value=32), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_kl_non_negative_property(self, size, seed):
        generator = np.random.default_rng(seed)
        p = generator.dirichlet(np.ones(size))
        q = generator.dirichlet(np.ones(size))
        assert kl_divergence(p, q) >= -1e-12
