"""Synthetic attention-score distributions standing in for CNEWS / MRPC / CoLA.

The paper analyses "the data range of all x_i across three popular datasets
for the BERT-base model" to size the softmax engine's fixed-point format.
The trained model and the original datasets are not available offline, so
each dataset is replaced by a *score profile*: a generative model of
pre-softmax attention-score rows whose dynamic range and fine structure
match what the paper's bit-width table implies:

* **CNEWS** — row range just under 64 (6 integer bits), coarse structure
  near the maximum (0.25 resolution suffices -> 2 fractional bits);
* **MRPC**  — row range just under 64 (6 integer bits), fine structure near
  the maximum (0.125 resolution needed -> 3 fractional bits);
* **CoLA**  — row range just under 32 (5 integer bits), coarse structure
  (2 fractional bits).

Each generated row mimics a row of the ``QK^T / sqrt(d)`` matrix: a bulk of
background scores, a cluster of near-maximum scores whose spacing sets the
precision requirement, and a long negative tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_positive

__all__ = [
    "ScoreProfile",
    "CNEWS_PROFILE",
    "MRPC_PROFILE",
    "COLA_PROFILE",
    "DATASET_PROFILES",
    "AttentionScoreGenerator",
]


@dataclass(frozen=True)
class ScoreProfile:
    """Generative description of one dataset's attention-score rows.

    Attributes
    ----------
    name:
        Dataset label.
    score_range:
        Target 99.9th-percentile spread (max - min) of a row; determines the
        integer bit requirement (``ceil(log2(score_range))``).
    top_cluster_size:
        How many scores per row sit close to the maximum and therefore carry
        most of the softmax probability mass.
    top_cluster_spacing:
        Typical gap between adjacent scores inside the top cluster; this is
        what the fractional bits must resolve.
    background_std:
        Standard deviation of the background scores (relative to the range).
    typical_seq_len:
        Sequence length the paper uses for this dataset's evaluation.
    """

    name: str
    score_range: float
    top_cluster_size: int
    top_cluster_spacing: float
    background_std: float = 0.12
    typical_seq_len: int = 128

    def __post_init__(self) -> None:
        require_positive(self.score_range, "score_range")
        require_positive(self.top_cluster_spacing, "top_cluster_spacing")
        require_positive(self.background_std, "background_std")
        if self.top_cluster_size < 1:
            raise ValueError(f"top_cluster_size must be >= 1, got {self.top_cluster_size}")
        if self.typical_seq_len < 2:
            raise ValueError(f"typical_seq_len must be >= 2, got {self.typical_seq_len}")


# Profiles mirroring the ranges implied by the paper's bit-width table.
CNEWS_PROFILE = ScoreProfile(
    name="CNEWS",
    score_range=56.0,
    top_cluster_size=3,
    top_cluster_spacing=1.3,
    typical_seq_len=128,
)
MRPC_PROFILE = ScoreProfile(
    name="MRPC",
    score_range=56.0,
    top_cluster_size=12,
    top_cluster_spacing=0.13,
    typical_seq_len=128,
)
COLA_PROFILE = ScoreProfile(
    name="CoLA",
    score_range=26.0,
    top_cluster_size=3,
    top_cluster_spacing=1.3,
    typical_seq_len=64,
)

DATASET_PROFILES: dict[str, ScoreProfile] = {
    profile.name: profile for profile in (CNEWS_PROFILE, MRPC_PROFILE, COLA_PROFILE)
}


class AttentionScoreGenerator:
    """Draws synthetic pre-softmax attention-score rows for one profile."""

    def __init__(self, profile: ScoreProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = np.random.default_rng(seed)

    def rows(self, num_rows: int, seq_len: int | None = None) -> np.ndarray:
        """Generate ``num_rows`` score rows of length ``seq_len``.

        Each row contains: a maximum score near the top of the range, a
        cluster of ``top_cluster_size - 1`` runner-up scores spaced by
        roughly ``top_cluster_spacing`` below it, and background scores
        spread across the remaining range with a negative bias (attention
        rows are dominated by a few keys).
        """
        if num_rows < 1:
            raise ValueError(f"num_rows must be >= 1, got {num_rows}")
        profile = self.profile
        length = seq_len if seq_len is not None else profile.typical_seq_len
        if length < profile.top_cluster_size + 1:
            raise ValueError(
                f"seq_len {length} too short for top cluster of "
                f"{profile.top_cluster_size}"
            )
        rng = self._rng
        half_range = profile.score_range / 2.0

        rows = np.empty((num_rows, length), dtype=np.float64)
        for i in range(num_rows):
            # the row maximum sits near +half_range with a little jitter
            row_max = half_range * rng.uniform(0.88, 0.99)
            cluster_size = profile.top_cluster_size
            gaps = rng.uniform(0.6, 1.4, size=cluster_size - 1) * profile.top_cluster_spacing
            cluster = row_max - np.concatenate(([0.0], np.cumsum(gaps)))

            num_background = length - cluster_size
            # background scores: mostly negative, spanning down to -half_range
            background = rng.normal(
                loc=-0.45 * profile.score_range,
                scale=profile.background_std * profile.score_range,
                size=num_background,
            )
            background = np.clip(background, -half_range * rng.uniform(0.9, 1.0), row_max - 1.0)
            # guarantee the row minimum reaches close to the bottom of the range
            background[0] = -half_range * rng.uniform(0.9, 0.99)

            row = np.concatenate((cluster, background))
            rng.shuffle(row)
            rows[i] = row
        return rows

    def score_matrix(self, seq_len: int | None = None) -> np.ndarray:
        """A full ``seq_len x seq_len`` attention-score matrix (one head)."""
        length = seq_len if seq_len is not None else self.profile.typical_seq_len
        return self.rows(length, length)

    def observed_range(self, num_rows: int = 2048, seq_len: int | None = None) -> float:
        """Empirical 99.9th-percentile row spread, used by the bit-width analysis."""
        rows = self.rows(num_rows, seq_len)
        spreads = rows.max(axis=1) - rows.min(axis=1)
        return float(np.percentile(spreads, 99.9))
