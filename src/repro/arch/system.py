"""Chip-level overheads shared by every ReRAM accelerator model.

Crossbar tiles alone look spectacularly efficient (tens of TOPS/W); what
brings published ReRAM accelerators down to the hundreds of GOPs/W range is
everything around the tiles: eDRAM activation buffers, the on-chip network,
instruction/control logic and IO.  PipeLayer, ReTransformer and STAR all sit
on comparable substrates, so these overheads are factored out into one model
that every accelerator (baseline or STAR) instantiates with the same
constants — keeping Fig. 3 a comparison of the *architectural* differences
(pipeline granularity, softmax implementation, operand rewriting) rather
than of arbitrarily different bookkeeping.

The constants follow the ISAAC / PipeLayer tile breakdowns at 32 nm:
roughly 90-100 mW and 0.25 mm^2 of buffer + network + control per crossbar
tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_non_negative

__all__ = ["SystemOverheadModel", "DEFAULT_SYSTEM_OVERHEAD"]


@dataclass(frozen=True)
class SystemOverheadModel:
    """Per-tile buffer / interconnect / control overheads.

    Attributes
    ----------
    buffer_power_w_per_tile:
        eDRAM / SRAM activation-buffer power attributable to one tile.
    network_power_w_per_tile:
        On-chip network (routers, links) power per tile.
    control_power_w_per_tile:
        Instruction decode, sequencing and miscellaneous control per tile.
    overhead_area_mm2_per_tile:
        Combined buffer + network + control area per tile.
    io_power_w:
        Chip-level IO power, paid once.
    """

    buffer_power_w_per_tile: float = 0.055
    network_power_w_per_tile: float = 0.025
    control_power_w_per_tile: float = 0.015
    overhead_area_mm2_per_tile: float = 0.25
    io_power_w: float = 0.4

    def __post_init__(self) -> None:
        require_non_negative(self.buffer_power_w_per_tile, "buffer_power_w_per_tile")
        require_non_negative(self.network_power_w_per_tile, "network_power_w_per_tile")
        require_non_negative(self.control_power_w_per_tile, "control_power_w_per_tile")
        require_non_negative(self.overhead_area_mm2_per_tile, "overhead_area_mm2_per_tile")
        require_non_negative(self.io_power_w, "io_power_w")

    @property
    def power_w_per_tile(self) -> float:
        """Total per-tile overhead power."""
        return (
            self.buffer_power_w_per_tile
            + self.network_power_w_per_tile
            + self.control_power_w_per_tile
        )

    def total_power_w(self, num_tiles: int) -> float:
        """Chip-level overhead power for ``num_tiles`` tiles.

        ``num_tiles = 0`` is a legitimate configuration — a softmax-engine-only
        or idle chip still pays the once-per-chip IO power but no per-tile
        overhead.
        """
        require_non_negative(num_tiles, "num_tiles")
        return self.power_w_per_tile * num_tiles + self.io_power_w

    def total_area_mm2(self, num_tiles: int) -> float:
        """Chip-level overhead area for ``num_tiles`` tiles (zero when tile-less)."""
        require_non_negative(num_tiles, "num_tiles")
        return self.overhead_area_mm2_per_tile * num_tiles


DEFAULT_SYSTEM_OVERHEAD = SystemOverheadModel()
