"""The serving report: what a load test of the simulated fleet produces.

Everything a capacity planner asks of a serving system in one frozen
result object — sustained throughput, mean/tail latency (p50/p95/p99 via
:func:`repro.utils.stats.percentile`), queueing behaviour, per-chip
utilization, batching efficacy and energy per query — plus the raw
per-request and per-batch records the property tests and Little's-law
cross-checks consume.

Storage is *columnar*: per-request and per-batch data live in parallel
numpy arrays (:class:`RequestTable`, :class:`BatchTable`), not tuples of
Python record objects, so million-request reports summarize in
vectorized time, pickle compactly across process boundaries, and merge
cheaply.  The record dataclasses (:class:`RequestRecord`,
:class:`BatchRecord`) survive as lazy views — iterating or indexing a
table materializes them on demand — so every existing consumer keeps
working unchanged.

:meth:`ServingReport.merge` folds the per-shard reports of a sharded run
into one fleet-wide report: latency samples pooled exactly (full sample
concatenation, so merged percentiles equal percentiles of the pooled
samples), energy/drop/retry/failure ledgers summed, per-chip utilization
concatenated with shard-local chip ids offset into one fleet-wide
numbering.

Fault-injected runs (:mod:`repro.serving.faults`) extend the report with
an availability ledger: chip failures and their downtime, retries, shed
and abandoned requests, goodput against offered traffic, and the wasted
energy of batches lost mid-service.  All fault fields default to empty,
so healthy-path reports are bit-identical to the pre-fault format.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.stats import percentile

__all__ = [
    "RequestRecord",
    "BatchRecord",
    "RequestTable",
    "BatchTable",
    "DropRecord",
    "RetryRecord",
    "FailureRecord",
    "ScaleEvent",
    "StealRecord",
    "RoutingStats",
    "ServingReport",
]


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Timestamps of one request's trip through the serving system.

    ``attempts`` counts failed service attempts before the completing one:
    0 for every request of a healthy run.  ``slo_class`` and ``deadline_s``
    carry the request's SLO tag (class 0 with an infinite relative
    deadline for untagged traffic, so pre-SLO runs are unchanged).
    """

    index: int
    arrival_s: float
    dispatch_s: float
    completion_s: float
    chip: int
    batch_index: int
    batch_size: int
    seq_len: int
    attempts: int = 0
    slo_class: int = 0
    deadline_s: float = float("inf")

    @property
    def wait_s(self) -> float:
        """Time spent queued before a chip started the request's batch."""
        return self.dispatch_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to completion)."""
        return self.completion_s - self.arrival_s

    @property
    def met_deadline(self) -> bool:
        """Whether the request completed within its own relative deadline."""
        return self.latency_s <= self.deadline_s


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """One dispatched batch and what serving it cost.

    ``tier`` is the fidelity tier that priced the batch — 0 for the
    analytic cache (every batch of an untiered fleet), 1 for an
    executed-schedule template resample under a
    :class:`~repro.serving.fleet.TieredServiceModel`.
    """

    index: int
    chip: int
    dispatch_s: float
    completion_s: float
    size: int
    seq_len: int
    energy_j: float
    tier: int = 0

    @property
    def service_s(self) -> float:
        """Chip occupancy of the batch."""
        return self.completion_s - self.dispatch_s


def _column(values, dtype) -> np.ndarray:
    arr = np.asarray(values, dtype=dtype)
    return np.atleast_1d(arr)


class RequestTable:
    """Columnar store of completed-request records.

    One numpy array per :class:`RequestRecord` field, all the same length.
    Iterating or indexing materializes :class:`RequestRecord` views for
    compatibility with record-at-a-time consumers; bulk consumers use the
    column arrays directly.
    """

    __slots__ = (
        "index",
        "arrival_s",
        "dispatch_s",
        "completion_s",
        "chip",
        "batch_index",
        "batch_size",
        "seq_len",
        "attempts",
        "slo_class",
        "deadline_s",
    )

    def __init__(
        self,
        index,
        arrival_s,
        dispatch_s,
        completion_s,
        chip,
        batch_index,
        batch_size,
        seq_len,
        attempts,
        slo_class=None,
        deadline_s=None,
    ) -> None:
        self.index = _column(index, np.int64)
        self.arrival_s = _column(arrival_s, np.float64)
        self.dispatch_s = _column(dispatch_s, np.float64)
        self.completion_s = _column(completion_s, np.float64)
        self.chip = _column(chip, np.int64)
        self.batch_index = _column(batch_index, np.int64)
        self.batch_size = _column(batch_size, np.int64)
        self.seq_len = _column(seq_len, np.int64)
        self.attempts = _column(attempts, np.int64)
        # SLO columns default to the untagged state so pre-SLO callers
        # (and pickles) keep constructing 9-column tables unchanged.
        if slo_class is None:
            self.slo_class = np.zeros(self.index.size, dtype=np.int64)
        else:
            self.slo_class = _column(slo_class, np.int64)
        if deadline_s is None:
            self.deadline_s = np.full(self.index.size, np.inf, dtype=np.float64)
        else:
            self.deadline_s = _column(deadline_s, np.float64)
        length = self.index.size
        for name in self.__slots__:
            if getattr(self, name).size != length:
                raise ValueError(
                    f"request column {name!r} has {getattr(self, name).size} "
                    f"entries for {length} requests"
                )

    @classmethod
    def empty(cls) -> "RequestTable":
        return cls(*[[] for _ in cls.__slots__])

    @classmethod
    def from_records(cls, records: Iterable[RequestRecord]) -> "RequestTable":
        records = list(records)
        return cls(
            [r.index for r in records],
            [r.arrival_s for r in records],
            [r.dispatch_s for r in records],
            [r.completion_s for r in records],
            [r.chip for r in records],
            [r.batch_index for r in records],
            [r.batch_size for r in records],
            [r.seq_len for r in records],
            [r.attempts for r in records],
            [r.slo_class for r in records],
            [r.deadline_s for r in records],
        )

    @classmethod
    def concatenate(cls, tables: Sequence["RequestTable"]) -> "RequestTable":
        return cls(
            *[
                np.concatenate([getattr(t, name) for t in tables])
                for name in cls.__slots__
            ]
        )

    def __len__(self) -> int:
        return self.index.size

    def __getitem__(self, i: int) -> RequestRecord:
        return RequestRecord(
            index=int(self.index[i]),
            arrival_s=float(self.arrival_s[i]),
            dispatch_s=float(self.dispatch_s[i]),
            completion_s=float(self.completion_s[i]),
            chip=int(self.chip[i]),
            batch_index=int(self.batch_index[i]),
            batch_size=int(self.batch_size[i]),
            seq_len=int(self.seq_len[i]),
            attempts=int(self.attempts[i]),
            slo_class=int(self.slo_class[i]),
            deadline_s=float(self.deadline_s[i]),
        )

    def __iter__(self) -> Iterator[RequestRecord]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestTable):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self.__slots__
        )

    @property
    def latency_s(self) -> np.ndarray:
        """End-to-end latencies, one per completed request."""
        return self.completion_s - self.arrival_s

    @property
    def wait_s(self) -> np.ndarray:
        """Queueing delays before dispatch, one per completed request."""
        return self.dispatch_s - self.arrival_s

    @property
    def met_deadline(self) -> np.ndarray:
        """Boolean per request: completed within its own relative deadline.

        Untagged requests carry an infinite deadline and always count as
        met, so overall attainment over mixed traffic is well defined.
        """
        return self.latency_s <= self.deadline_s


class BatchTable:
    """Columnar store of dispatched-batch records (see :class:`RequestTable`)."""

    __slots__ = (
        "index",
        "chip",
        "dispatch_s",
        "completion_s",
        "size",
        "seq_len",
        "energy_j",
        "tier",
    )

    def __init__(
        self, index, chip, dispatch_s, completion_s, size, seq_len, energy_j,
        tier=None,
    ) -> None:
        self.index = _column(index, np.int64)
        self.chip = _column(chip, np.int64)
        self.dispatch_s = _column(dispatch_s, np.float64)
        self.completion_s = _column(completion_s, np.float64)
        self.size = _column(size, np.int64)
        self.seq_len = _column(seq_len, np.int64)
        self.energy_j = _column(energy_j, np.float64)
        # the tier column defaults to all-analytic so pre-tiering callers
        # (and pickles) keep constructing 7-column tables unchanged
        if tier is None:
            self.tier = np.zeros(self.index.size, dtype=np.int64)
        else:
            self.tier = _column(tier, np.int64)
        length = self.index.size
        for name in self.__slots__:
            if getattr(self, name).size != length:
                raise ValueError(
                    f"batch column {name!r} has {getattr(self, name).size} "
                    f"entries for {length} batches"
                )

    @classmethod
    def empty(cls) -> "BatchTable":
        return cls(*[[] for _ in cls.__slots__])

    @classmethod
    def from_records(cls, records: Iterable[BatchRecord]) -> "BatchTable":
        records = list(records)
        return cls(
            [b.index for b in records],
            [b.chip for b in records],
            [b.dispatch_s for b in records],
            [b.completion_s for b in records],
            [b.size for b in records],
            [b.seq_len for b in records],
            [b.energy_j for b in records],
            [b.tier for b in records],
        )

    @classmethod
    def concatenate(cls, tables: Sequence["BatchTable"]) -> "BatchTable":
        return cls(
            *[
                np.concatenate([getattr(t, name) for t in tables])
                for name in cls.__slots__
            ]
        )

    def __len__(self) -> int:
        return self.index.size

    def __getitem__(self, i: int) -> BatchRecord:
        return BatchRecord(
            index=int(self.index[i]),
            chip=int(self.chip[i]),
            dispatch_s=float(self.dispatch_s[i]),
            completion_s=float(self.completion_s[i]),
            size=int(self.size[i]),
            seq_len=int(self.seq_len[i]),
            energy_j=float(self.energy_j[i]),
            tier=int(self.tier[i]),
        )

    def __iter__(self) -> Iterator[BatchRecord]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BatchTable):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in self.__slots__
        )

    @property
    def service_s(self) -> np.ndarray:
        """Chip occupancy per batch."""
        return self.completion_s - self.dispatch_s


#: Reasons a request can leave the system without completing.
DROP_REASONS = ("queue_full", "deadline", "retries_exhausted")


@dataclass(frozen=True)
class DropRecord:
    """One request leaving the system unserved (shed or abandoned).

    ``reason`` is one of :data:`DROP_REASONS` — ``"queue_full"`` (bounded
    queue rejected the arrival), ``"deadline"`` (expired before service or
    before a viable retry) or ``"retries_exhausted"`` (lost its last
    allowed attempt to a chip failure).
    """

    index: int
    time_s: float
    reason: str
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.reason not in DROP_REASONS:
            raise ValueError(
                f"reason must be one of {DROP_REASONS}, got {self.reason!r}"
            )


@dataclass(frozen=True)
class RetryRecord:
    """One lost request re-entering the queue after a chip failure."""

    index: int
    attempt: int
    failure_s: float
    reenqueue_s: float

    @property
    def backoff_s(self) -> float:
        """Back-off the request spent outside the queue."""
        return self.reenqueue_s - self.failure_s


@dataclass(frozen=True)
class FailureRecord:
    """One chip failure–repair cycle and what it cost.

    ``repaired_s`` is when the chip re-entered service (failure time plus
    detection and the tile-bank reprogramming); ``lost_requests`` is the
    size of the in-flight batch the failure killed (0 if the chip was
    idle) and ``wasted_energy_j`` the energy that batch had already burned.
    """

    chip: int
    fail_s: float
    repaired_s: float
    lost_requests: int = 0
    wasted_energy_j: float = 0.0

    @property
    def down_s(self) -> float:
        """Downtime of this failure–repair cycle."""
        return self.repaired_s - self.fail_s


#: Directions an autoscaler can move a chip.
SCALE_ACTIONS = ("sleep", "wake")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision acting on one chip.

    ``time_s`` is when the decision was taken; ``ready_s`` when the chip
    actually reached the target state (sleep power after the drain, or
    serving-ready after the wake ramp plus array re-bias).  ``energy_j``
    is the transition's energy — wake-up for ``"wake"`` events, 0 for
    sleeps.
    """

    chip: int
    time_s: float
    action: str
    ready_s: float
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in SCALE_ACTIONS:
            raise ValueError(
                f"action must be one of {SCALE_ACTIONS}, got {self.action!r}"
            )
        if self.ready_s < self.time_s:
            raise ValueError(
                f"ready_s {self.ready_s} precedes the decision at {self.time_s}"
            )

    @property
    def transition_s(self) -> float:
        """How long the power-state transition took."""
        return self.ready_s - self.time_s


@dataclass(frozen=True)
class StealRecord:
    """One work-steal: an idle chip served a batch from a peer's queue.

    ``queue`` is the home queue the batch was routed to, ``chip`` the
    peer that actually served it, ``decided_s`` when the steal was
    decided — the batch dispatches one steal network hop later.
    """

    batch_index: int
    queue: int
    chip: int
    decided_s: float

    def __post_init__(self) -> None:
        if self.queue == self.chip:
            raise ValueError(f"steal from queue {self.queue} to its own chip")


@dataclass(frozen=True)
class RoutingStats:
    """Per-queue and per-policy ledger of a multi-queue routed run.

    ``queue_peaks`` / ``queue_requests`` / ``queue_wait_s`` are per-queue
    (one slot per chip): the deepest the queue ever got, the requests
    dispatched *from* it (whether served locally or stolen), and their
    summed arrival-to-dispatch waits.  ``route_network_s`` and
    ``steal_network_s`` total the front-end→chip and chip→chip hop time
    charged; ``steals`` records each individual steal.
    """

    policy: str
    stealing: bool
    num_routed: int
    local_batches: int
    stolen_batches: int
    route_network_s: float
    steal_network_s: float
    queue_peaks: tuple[int, ...]
    queue_requests: tuple[int, ...]
    queue_wait_s: tuple[float, ...]
    steals: tuple[StealRecord, ...] = ()

    @property
    def num_queues(self) -> int:
        return len(self.queue_peaks)

    @property
    def peak_queue_depth(self) -> int:
        """Deepest any single chip queue ever got."""
        return max(self.queue_peaks, default=0)

    @property
    def stolen_fraction(self) -> float:
        """Fraction of dispatched batches an idle peer stole."""
        total = self.local_batches + self.stolen_batches
        return self.stolen_batches / total if total else 0.0

    def queue_mean_wait_s(self, queue: int) -> float:
        """Mean arrival→dispatch wait of requests routed to one queue."""
        count = self.queue_requests[queue]
        return self.queue_wait_s[queue] / count if count else 0.0

    @classmethod
    def merge(
        cls, parts: Sequence[tuple["RoutingStats", int, int]]
    ) -> "RoutingStats":
        """Fold per-shard stats; ``parts`` are (stats, chip/queue offset,
        batch offset) in shard order — queues renumber with their chips."""
        policies = {(s.policy, s.stealing) for s, _, _ in parts}
        if len(policies) > 1:
            raise ValueError(
                f"cannot merge routing stats with differing policies: "
                f"{sorted(policies)}"
            )
        steals: list[StealRecord] = []
        for stats, chip_offset, batch_offset in parts:
            steals.extend(
                replace(
                    steal,
                    batch_index=steal.batch_index + batch_offset,
                    queue=steal.queue + chip_offset,
                    chip=steal.chip + chip_offset,
                )
                for steal in stats.steals
            )
        first = parts[0][0]
        return cls(
            policy=first.policy,
            stealing=first.stealing,
            num_routed=sum(s.num_routed for s, _, _ in parts),
            local_batches=sum(s.local_batches for s, _, _ in parts),
            stolen_batches=sum(s.stolen_batches for s, _, _ in parts),
            route_network_s=sum(s.route_network_s for s, _, _ in parts),
            steal_network_s=sum(s.steal_network_s for s, _, _ in parts),
            queue_peaks=tuple(p for s, _, _ in parts for p in s.queue_peaks),
            queue_requests=tuple(r for s, _, _ in parts for r in s.queue_requests),
            queue_wait_s=tuple(w for s, _, _ in parts for w in s.queue_wait_s),
            steals=tuple(steals),
        )


def _as_request_table(requests) -> RequestTable:
    if isinstance(requests, RequestTable):
        return requests
    return RequestTable.from_records(requests)


def _as_batch_table(batches) -> BatchTable:
    if isinstance(batches, BatchTable):
        return batches
    return BatchTable.from_records(batches)


@dataclass(frozen=True, eq=False)
class ServingReport:
    """Result of one serving simulation run.

    ``requests`` and ``batches`` accept either columnar tables or
    iterables of record objects (converted on construction); they are
    always stored as :class:`RequestTable` / :class:`BatchTable`.

    ``chip_idle_power_w`` is each chip's standby power; the report charges
    it over the chip's un-occupied share of the makespan, so
    :attr:`energy_per_query_j` stays honest at low load (a nearly idle
    fleet still burns leakage).  The active-only figure survives as
    :attr:`active_energy_per_query_j`.  An empty tuple (the default) means
    no idle power was modelled.
    """

    num_chips: int
    requests: RequestTable
    batches: BatchTable
    chip_busy_s: tuple[float, ...]
    queue_peak: int
    chip_idle_power_w: tuple[float, ...] = ()
    shed: tuple[DropRecord, ...] = ()
    abandoned: tuple[DropRecord, ...] = ()
    retries: tuple[RetryRecord, ...] = ()
    failures: tuple[FailureRecord, ...] = ()
    deadline_s: float | None = None
    faults_enabled: bool = False
    num_shards: int = 1
    scale_events: tuple[ScaleEvent, ...] = ()
    chip_sleep_s: tuple[float, ...] = ()
    chip_sleep_power_w: tuple[float, ...] = ()
    autoscale_enabled: bool = False
    routing: RoutingStats | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", _as_request_table(self.requests))
        object.__setattr__(self, "batches", _as_batch_table(self.batches))

    # ------------------------------------------------------------------ #
    # merging (sharded runs)
    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, reports: Sequence["ServingReport"]) -> "ServingReport":
        """Fold per-shard reports into one fleet-wide report.

        Shard-local chip ids are offset into one fleet-wide numbering (in
        the given order), batch indices likewise, latency samples are
        pooled exactly (merged percentiles equal percentiles over the
        union of samples), and the energy/drop/retry/failure ledgers
        concatenate.  ``queue_peak`` is the largest *per-shard* peak —
        shards queue independently, so no fleet-wide simultaneous depth
        exists to report.  All shards must agree on ``deadline_s``.
        """
        reports = list(reports)
        if not reports:
            raise ValueError("cannot merge an empty sequence of reports")
        if len(reports) == 1:
            return replace(reports[0])
        deadlines = {r.deadline_s for r in reports}
        if len(deadlines) > 1:
            raise ValueError(
                f"cannot merge reports with differing deadlines: {sorted(deadlines, key=str)}"
            )
        routed = [r.routing is not None for r in reports]
        if any(routed) and not all(routed):
            raise ValueError("cannot merge routed and unrouted reports")
        request_tables: list[RequestTable] = []
        batch_tables: list[BatchTable] = []
        failures: list[FailureRecord] = []
        scale_events: list[ScaleEvent] = []
        routing_parts: list[tuple[RoutingStats, int, int]] = []
        chip_offset = 0
        batch_offset = 0
        for report in reports:
            requests = report.requests
            batches = report.batches
            request_tables.append(
                RequestTable(
                    requests.index,
                    requests.arrival_s,
                    requests.dispatch_s,
                    requests.completion_s,
                    requests.chip + chip_offset,
                    requests.batch_index + batch_offset,
                    requests.batch_size,
                    requests.seq_len,
                    requests.attempts,
                    requests.slo_class,
                    requests.deadline_s,
                )
            )
            batch_tables.append(
                BatchTable(
                    batches.index + batch_offset,
                    batches.chip + chip_offset,
                    batches.dispatch_s,
                    batches.completion_s,
                    batches.size,
                    batches.seq_len,
                    batches.energy_j,
                    batches.tier,
                )
            )
            failures.extend(
                replace(f, chip=f.chip + chip_offset) for f in report.failures
            )
            scale_events.extend(
                replace(e, chip=e.chip + chip_offset) for e in report.scale_events
            )
            if report.routing is not None:
                routing_parts.append((report.routing, chip_offset, batch_offset))
            chip_offset += report.num_chips
            batch_offset += len(batches)
        return cls(
            num_chips=chip_offset,
            requests=RequestTable.concatenate(request_tables),
            batches=BatchTable.concatenate(batch_tables),
            chip_busy_s=tuple(
                busy for report in reports for busy in report.chip_busy_s
            ),
            queue_peak=max(r.queue_peak for r in reports),
            chip_idle_power_w=tuple(
                power for report in reports for power in report.chip_idle_power_w
            ),
            shed=tuple(drop for r in reports for drop in r.shed),
            abandoned=tuple(drop for r in reports for drop in r.abandoned),
            retries=tuple(retry for r in reports for retry in r.retries),
            failures=tuple(failures),
            deadline_s=reports[0].deadline_s,
            faults_enabled=any(r.faults_enabled for r in reports),
            num_shards=sum(r.num_shards for r in reports),
            scale_events=tuple(scale_events),
            chip_sleep_s=tuple(
                sleep for report in reports for sleep in report.chip_sleep_s
            ),
            chip_sleep_power_w=tuple(
                power for report in reports for power in report.chip_sleep_power_w
            ),
            autoscale_enabled=any(r.autoscale_enabled for r in reports),
            routing=RoutingStats.merge(routing_parts) if routing_parts else None,
        )

    # ------------------------------------------------------------------ #
    # volume and rates
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        """Requests that completed service."""
        return len(self.requests)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        if not len(self.requests):
            return 0.0
        return float(self.requests.completion_s.max() - self.requests.arrival_s.min())

    @property
    def offered_rate_rps(self) -> float:
        """Mean arrival rate observed over the run."""
        if len(self.requests) < 2:
            return 0.0
        arrivals = self.requests.arrival_s
        span = float(arrivals.max() - arrivals.min())
        return (len(self.requests) - 1) / span if span > 0 else float("inf")

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of makespan."""
        span = self.makespan_s
        return self.num_requests / span if span > 0 else float("inf")

    # ------------------------------------------------------------------ #
    # latency and queueing
    # ------------------------------------------------------------------ #
    def latency_percentile_s(self, q: float) -> float:
        """Interpolated end-to-end latency percentile.

        Computed over *completed* requests — under load shedding this is
        the completion-conditional percentile (NaN with no completions).
        """
        if not len(self.requests):
            return float("nan")
        return float(percentile(self.requests.latency_s, q))

    @property
    def p50_latency_s(self) -> float:
        """Median end-to-end latency."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end latency."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.latency_percentile_s(99.0)

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency (completed requests; NaN with none)."""
        if not len(self.requests):
            return float("nan")
        return float(np.mean(self.requests.latency_s))

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay before dispatch (completed requests)."""
        if not len(self.requests):
            return float("nan")
        return float(np.mean(self.requests.wait_s))

    @property
    def mean_queue_depth(self) -> float:
        """Time-averaged number of queued (not yet dispatched) requests.

        By Little's law applied to the waiting room this is the summed
        waiting time divided by the observation window.
        """
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return float(np.sum(self.requests.wait_s)) / span

    @property
    def mean_in_system(self) -> float:
        """Time-averaged number of requests in the system (queued or running)."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return float(np.sum(self.requests.latency_s)) / span

    # ------------------------------------------------------------------ #
    # batching, occupancy and energy
    # ------------------------------------------------------------------ #
    @property
    def num_batches(self) -> int:
        """Batches dispatched over the run."""
        return len(self.batches)

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per dispatched batch."""
        if not len(self.batches):
            return 0.0
        return self.num_requests / self.num_batches

    def chip_utilization(self, chip: int) -> float:
        """Busy fraction of one chip over the makespan."""
        span = self.makespan_s
        return self.chip_busy_s[chip] / span if span > 0 else 0.0

    @property
    def mean_utilization(self) -> float:
        """Mean busy fraction across the fleet."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(self.chip_busy_s) / (self.num_chips * span)

    @property
    def energy_j(self) -> float:
        """Total active energy spent serving all batches."""
        return float(np.sum(self.batches.energy_j))

    def _chip_sleep(self, chip: int) -> float:
        return self.chip_sleep_s[chip] if chip < len(self.chip_sleep_s) else 0.0

    @property
    def idle_energy_j(self) -> float:
        """Leakage / standby energy over the fleet's un-occupied awake time.

        Each chip pays its idle power for the share of the makespan it was
        neither serving a batch nor parked in deep sleep by the autoscaler
        (sleep time is charged separately at the sleep power); zero when
        no idle power was modelled.
        """
        if not self.chip_idle_power_w:
            return 0.0
        span = self.makespan_s
        return sum(
            power * max(0.0, span - busy - self._chip_sleep(chip))
            for chip, (power, busy) in enumerate(
                zip(self.chip_idle_power_w, self.chip_busy_s)
            )
        )

    @property
    def sleep_energy_j(self) -> float:
        """Residual energy of autoscaler-parked chips over their sleep time.

        Non-volatile tile banks retain state through sleep, so this is
        retention-level leakage — far below idle power, which is the whole
        point of scaling down.
        """
        return sum(
            power * sleep
            for power, sleep in zip(self.chip_sleep_power_w, self.chip_sleep_s)
        )

    @property
    def wake_energy_j(self) -> float:
        """Energy of the sleep-to-serving transitions the autoscaler triggered."""
        return sum(e.energy_j for e in self.scale_events)

    @property
    def wasted_energy_j(self) -> float:
        """Energy burned by in-flight batches that a chip failure killed."""
        return sum(f.wasted_energy_j for f in self.failures)

    @property
    def total_energy_j(self) -> float:
        """Active, idle, sleep and wake energy over the run, plus wasted work."""
        return (
            self.energy_j
            + self.idle_energy_j
            + self.sleep_energy_j
            + self.wake_energy_j
            + self.wasted_energy_j
        )

    @property
    def active_energy_per_query_j(self) -> float:
        """Active-only energy per completed request (the pre-idle-power figure)."""
        if not len(self.requests):
            return 0.0
        return self.energy_j / self.num_requests

    @property
    def energy_per_query_j(self) -> float:
        """Energy per completed request including idle/leakage power.

        The serving-side figure of merit: at high load it approaches the
        active-only figure, at low load the makespan's leakage dominates —
        which is exactly what a capacity planner needs to see.
        """
        if not len(self.requests):
            return 0.0
        return self.total_energy_j / self.num_requests

    # ------------------------------------------------------------------ #
    # availability, shedding and goodput (fault-injected runs)
    # ------------------------------------------------------------------ #
    @property
    def num_shed(self) -> int:
        """Requests rejected by admission control or deadline shedding."""
        return len(self.shed)

    @property
    def num_abandoned(self) -> int:
        """Requests lost to failures that exhausted retries or deadlines."""
        return len(self.abandoned)

    @property
    def num_retries(self) -> int:
        """Retry re-entries after chip failures (one request may retry twice)."""
        return len(self.retries)

    @property
    def num_offered(self) -> int:
        """Every request that entered the system: completed + shed + abandoned."""
        return self.num_requests + self.num_shed + self.num_abandoned

    @property
    def completion_fraction(self) -> float:
        """Completed share of offered traffic (1.0 for a healthy run)."""
        offered = self.num_offered
        return self.num_requests / offered if offered else 0.0

    @property
    def num_good(self) -> int:
        """Completed requests that also met their deadline.

        Without a deadline every completion is good — goodput equals
        throughput, as on the healthy path.
        """
        if self.deadline_s is None:
            return self.num_requests
        return int(np.count_nonzero(self.requests.latency_s <= self.deadline_s))

    @property
    def goodput_rps(self) -> float:
        """Deadline-meeting completions per second of makespan."""
        span = self.makespan_s
        return self.num_good / span if span > 0 else float("inf")

    # ------------------------------------------------------------------ #
    # SLO classes and deadlines (per-request tags)
    # ------------------------------------------------------------------ #
    @property
    def slo_enabled(self) -> bool:
        """Whether any completed request carried an SLO tag."""
        if not len(self.requests):
            return False
        return bool(
            np.any(self.requests.slo_class != 0)
            or np.any(np.isfinite(self.requests.deadline_s))
        )

    @property
    def slo_classes(self) -> tuple[int, ...]:
        """Distinct SLO classes among completed requests, ascending."""
        if not len(self.requests):
            return ()
        return tuple(int(c) for c in np.unique(self.requests.slo_class))

    def _class_mask(self, slo_class: int | None) -> np.ndarray:
        if slo_class is None:
            return np.ones(len(self.requests), dtype=bool)
        return self.requests.slo_class == slo_class

    def num_in_class(self, slo_class: int) -> int:
        """Completed requests tagged with one SLO class."""
        return int(np.count_nonzero(self._class_mask(slo_class)))

    def class_latency_percentile_s(self, slo_class: int | None, q: float) -> float:
        """Latency percentile within one class (``None`` pools all classes)."""
        latencies = self.requests.latency_s[self._class_mask(slo_class)]
        if latencies.size == 0:
            return float("nan")
        return float(percentile(latencies, q))

    def class_mean_latency_s(self, slo_class: int | None) -> float:
        """Mean latency within one class (NaN with no members)."""
        latencies = self.requests.latency_s[self._class_mask(slo_class)]
        if latencies.size == 0:
            return float("nan")
        return float(np.mean(latencies))

    def num_deadline_misses(self, slo_class: int | None = None) -> int:
        """Completed requests that overran their own relative deadline."""
        mask = self._class_mask(slo_class)
        return int(np.count_nonzero(mask & ~self.requests.met_deadline))

    def deadline_attainment(self, slo_class: int | None = None) -> float:
        """Fraction of completions meeting their own deadline (1.0 with none).

        Per-request: each completion is judged against the deadline it
        arrived with, so mixed-SLO traffic has one well-defined overall
        figure (untagged requests carry ``inf`` and always count as met).
        """
        total = int(np.count_nonzero(self._class_mask(slo_class)))
        if total == 0:
            return 1.0
        return 1.0 - self.num_deadline_misses(slo_class) / total

    # ------------------------------------------------------------------ #
    # fidelity tiers (tiered service models)
    # ------------------------------------------------------------------ #
    @property
    def tiering_enabled(self) -> bool:
        """Whether any batch was priced off the executed-schedule tier.

        Derived from the tier column itself, so merged, pickled and legacy
        reports all agree — and tier-free runs keep their report text
        byte-identical to the pre-tiering format.
        """
        return bool(len(self.batches)) and bool(np.any(self.batches.tier != 0))

    @property
    def request_tier(self) -> np.ndarray:
        """Fidelity tier per completed request (its batch's tier)."""
        return self.batches.tier[self.requests.batch_index]

    def num_batches_in_tier(self, tier: int) -> int:
        """Dispatched batches priced by one fidelity tier."""
        return int(np.count_nonzero(self.batches.tier == tier))

    def num_requests_in_tier(self, tier: int) -> int:
        """Completed requests whose batch was priced by one fidelity tier."""
        return int(np.count_nonzero(self.request_tier == tier))

    @property
    def executed_batch_fraction(self) -> float:
        """Share of dispatched batches priced off executed templates."""
        if not len(self.batches):
            return 0.0
        return self.num_batches_in_tier(1) / len(self.batches)

    def tier_latency_percentile_s(self, tier: int, q: float) -> float:
        """End-to-end latency percentile within one fidelity tier."""
        latencies = self.requests.latency_s[self.request_tier == tier]
        if latencies.size == 0:
            return float("nan")
        return float(percentile(latencies, q))

    def format_tiers(self) -> str:
        """Printable fidelity-tier section of a tiered run."""
        executed_b = self.num_batches_in_tier(1)
        executed_r = self.num_requests_in_tier(1)
        lines = [
            f"fidelity tiers          : executed {executed_b}/{self.num_batches} "
            f"batches ({executed_r}/{self.num_requests} req, "
            f"{self.executed_batch_fraction * 100:.1f}% sampled)"
        ]
        analytic_p99 = self.tier_latency_percentile_s(0, 99.0)
        executed_p99 = self.tier_latency_percentile_s(1, 99.0)
        lines.append(
            f"per-tier p50/p99        : analytic "
            f"{self.tier_latency_percentile_s(0, 50.0) * 1e6:.1f} / "
            f"{analytic_p99 * 1e6:.1f} us, executed "
            f"{self.tier_latency_percentile_s(1, 50.0) * 1e6:.1f} / "
            f"{executed_p99 * 1e6:.1f} us"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # autoscaling (power-state transitions)
    # ------------------------------------------------------------------ #
    @property
    def num_scale_events(self) -> int:
        """Autoscaler sleep/wake decisions over the run."""
        return len(self.scale_events)

    @property
    def num_wakes(self) -> int:
        """Sleep-to-serving transitions over the run."""
        return sum(1 for e in self.scale_events if e.action == "wake")

    @property
    def total_sleep_s(self) -> float:
        """Summed chip-seconds spent in deep sleep across the fleet."""
        return sum(self.chip_sleep_s)

    def chip_sleep_fraction(self, chip: int) -> float:
        """Share of the makespan one chip spent parked."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return self._chip_sleep(chip) / span

    @property
    def mean_awake_chips(self) -> float:
        """Time-averaged number of chips not in deep sleep."""
        span = self.makespan_s
        if span <= 0:
            return float(self.num_chips)
        return self.num_chips - self.total_sleep_s / span

    @property
    def num_failures(self) -> int:
        """Chip failure events over the run."""
        return len(self.failures)

    @property
    def num_lost_batches(self) -> int:
        """Failures that killed an in-flight batch."""
        return sum(1 for f in self.failures if f.lost_requests > 0)

    def chip_downtime_s(self, chip: int) -> float:
        """Downtime of one chip clipped to the observation window.

        The window is the makespan (first arrival to last completion);
        repair intervals extending past the last completion only count
        their in-window share, so availability never goes negative from a
        repair that outlives the run.
        """
        if not len(self.requests):
            return 0.0
        start = float(self.requests.arrival_s.min())
        end = float(self.requests.completion_s.max())
        down = 0.0
        for f in self.failures:
            if f.chip == chip:
                down += max(0.0, min(f.repaired_s, end) - max(f.fail_s, start))
        return down

    def chip_availability(self, chip: int) -> float:
        """Healthy fraction of one chip over the observation window."""
        span = self.makespan_s
        if span <= 0:
            return 1.0
        return 1.0 - self.chip_downtime_s(chip) / span

    @property
    def fleet_availability(self) -> float:
        """Mean healthy fraction across the fleet (1.0 for a healthy run)."""
        span = self.makespan_s
        if span <= 0:
            return 1.0
        down = sum(self.chip_downtime_s(chip) for chip in range(self.num_chips))
        return 1.0 - down / (self.num_chips * span)

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        """Dictionary form used by the benchmark harness."""
        summary = {
            "num_requests": float(self.num_requests),
            "offered_rate_rps": self.offered_rate_rps,
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_wait_s": self.mean_wait_s,
            "mean_queue_depth": self.mean_queue_depth,
            "queue_peak": float(self.queue_peak),
            "mean_batch_size": self.mean_batch_size,
            "mean_utilization": self.mean_utilization,
            "energy_per_query_j": self.energy_per_query_j,
            "active_energy_per_query_j": self.active_energy_per_query_j,
        }
        if self.faults_enabled:
            summary.update(
                {
                    "num_offered": float(self.num_offered),
                    "num_shed": float(self.num_shed),
                    "num_abandoned": float(self.num_abandoned),
                    "num_retries": float(self.num_retries),
                    "num_failures": float(self.num_failures),
                    "goodput_rps": self.goodput_rps,
                    "completion_fraction": self.completion_fraction,
                    "fleet_availability": self.fleet_availability,
                    "wasted_energy_j": self.wasted_energy_j,
                }
            )
        if self.slo_enabled:
            summary["deadline_attainment"] = self.deadline_attainment()
            summary["num_deadline_misses"] = float(self.num_deadline_misses())
        if self.tiering_enabled:
            summary.update(
                {
                    "executed_batches": float(self.num_batches_in_tier(1)),
                    "executed_batch_fraction": self.executed_batch_fraction,
                    "analytic_p99_latency_s": self.tier_latency_percentile_s(0, 99.0),
                    "executed_p99_latency_s": self.tier_latency_percentile_s(1, 99.0),
                }
            )
        if self.autoscale_enabled:
            summary.update(
                {
                    "num_scale_events": float(self.num_scale_events),
                    "mean_awake_chips": self.mean_awake_chips,
                    "sleep_energy_j": self.sleep_energy_j,
                    "wake_energy_j": self.wake_energy_j,
                }
            )
        if self.routing_enabled:
            summary.update(
                {
                    "num_routed": float(self.routing.num_routed),
                    "stolen_batches": float(self.routing.stolen_batches),
                    "stolen_fraction": self.routing.stolen_fraction,
                    "peak_queue_depth": float(self.routing.peak_queue_depth),
                    "route_network_s": self.routing.route_network_s,
                    "steal_network_s": self.routing.steal_network_s,
                }
            )
        return summary

    @property
    def routing_enabled(self) -> bool:
        """Whether this run went through the multi-queue front-end router."""
        return self.routing is not None

    def format_routing(self) -> str:
        """Printable per-queue section of a routed run."""
        stats = self.routing
        stealing = "on" if stats.stealing else "off"
        peaks = " ".join(str(peak) for peak in stats.queue_peaks)
        waits = " ".join(
            f"{stats.queue_mean_wait_s(queue) * 1e6:.1f}"
            for queue in range(stats.num_queues)
        )
        return "\n".join(
            [
                f"routing policy          : {stats.policy} (stealing {stealing}, "
                f"{stats.num_routed} routed)",
                f"local / stolen batches  : {stats.local_batches} / "
                f"{stats.stolen_batches} ({stats.stolen_fraction * 100:.1f}% stolen)",
                f"network time            : route {stats.route_network_s * 1e3:.2f} ms, "
                f"steal {stats.steal_network_s * 1e3:.2f} ms",
                f"per-queue peak depth    : {peaks}",
                f"per-queue mean wait (us): {waits}",
            ]
        )

    def format_slo(self) -> str:
        """Printable per-class SLO section of a tagged run."""
        lines = []
        for slo_class in self.slo_classes:
            count = self.num_in_class(slo_class)
            p50 = self.class_latency_percentile_s(slo_class, 50.0)
            p99 = self.class_latency_percentile_s(slo_class, 99.0)
            attainment = self.deadline_attainment(slo_class)
            lines.append(
                f"class {slo_class} ({count} req)      : p50/p99 "
                f"{p50 * 1e6:.1f} / {p99 * 1e6:.1f} us, "
                f"attainment {attainment * 100:.1f}%"
            )
        lines.append(
            f"deadline attainment     : {self.deadline_attainment() * 100:.1f}% "
            f"({self.num_deadline_misses()} miss(es) overall)"
        )
        return "\n".join(lines)

    def format_autoscale(self) -> str:
        """Printable power-state section of an autoscaled run."""
        return "\n".join(
            [
                f"autoscaler              : {self.num_scale_events} transition(s), "
                f"{self.num_wakes} wake(s)",
                f"mean awake chips        : {self.mean_awake_chips:.2f} of "
                f"{self.num_chips} (slept {self.total_sleep_s:.1f} chip-s)",
                f"sleep / wake energy     : {self.sleep_energy_j * 1e3:.2f} mJ / "
                f"{self.wake_energy_j * 1e3:.2f} mJ",
            ]
        )

    def format_availability(self) -> str:
        """Printable availability section of a fault-injected run."""
        lines = [
            f"offered -> completed    : {self.num_offered} -> {self.num_requests} "
            f"(shed {self.num_shed}, abandoned {self.num_abandoned}, "
            f"retries {self.num_retries})",
            f"goodput                 : {self.goodput_rps:.1f} req/s "
            f"({self.completion_fraction * 100:.1f}% of offered completed)",
            f"fleet availability      : {self.fleet_availability * 100:.2f}% "
            f"({self.num_failures} failure(s), {self.num_lost_batches} lost "
            f"batch(es), wasted {self.wasted_energy_j * 1e3:.2f} mJ)",
        ]
        if self.failures:
            downtime = " ".join(
                f"{self.chip_downtime_s(chip) * 1e3:.1f}"
                for chip in range(self.num_chips)
            )
            lines.append(f"per-chip downtime (ms)  : {downtime}")
        return "\n".join(lines)

    def format_table(self) -> str:
        """Printable one-run summary."""
        lines = [
            f"requests / batches      : {self.num_requests} / {self.num_batches} "
            f"(mean batch {self.mean_batch_size:.2f})",
            f"offered / served rate   : {self.offered_rate_rps:.1f} / "
            f"{self.throughput_rps:.1f} req/s",
            f"latency p50/p95/p99     : {self.p50_latency_s * 1e6:.1f} / "
            f"{self.p95_latency_s * 1e6:.1f} / {self.p99_latency_s * 1e6:.1f} us",
            f"mean wait / queue depth : {self.mean_wait_s * 1e6:.1f} us / "
            f"{self.mean_queue_depth:.2f} (peak {self.queue_peak})",
            f"fleet utilization       : {self.mean_utilization * 100:.1f}% "
            f"over {self.num_chips} chip(s)",
            f"energy per query        : {self.energy_per_query_j * 1e6:.2f} uJ "
            f"(active only {self.active_energy_per_query_j * 1e6:.2f} uJ)",
        ]
        if self.routing_enabled:
            lines.append(self.format_routing())
        if self.tiering_enabled:
            lines.append(self.format_tiers())
        if self.slo_enabled:
            lines.append(self.format_slo())
        if self.autoscale_enabled:
            lines.append(self.format_autoscale())
        if self.faults_enabled:
            lines.append(self.format_availability())
        return "\n".join(lines)
