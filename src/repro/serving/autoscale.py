"""Reactive fleet autoscaling over chip power states.

The autoscaler is the capacity side of the serving control plane: a
periodic controller (``TICK`` events on the simulator's own event loop)
that watches fleet utilization and queue depth over a window and parks or
wakes chips to track a utilization band.  Parking a chip is cheap on this
hardware — RRAM tile banks are non-volatile, so a sleeping chip keeps its
weights at retention-level leakage and waking is a peripheral re-bias,
not a reprogram (:class:`~repro.core.accelerator.PowerState`) — which is
what makes diurnal scale-down worth the control complexity at all.

The policy is deliberately the classic hysteresis band:

* window utilization above ``scale_up_above`` (or queue depth at or above
  ``scale_up_queue_depth``) wakes ``step`` sleeping chips;
* window utilization below ``scale_down_below`` parks ``step`` idle
  chips (never below ``min_chips``, never a busy chip — scale-down is
  graceful, in-flight batches always finish);
* anything inside the band holds.

A band with a unique fixed point makes the steady state testable: at
offered load ``lambda`` and deterministic service ``s``, the only fleet
size ``m`` with ``scale_down_below < lambda * s / m < scale_up_above``
is where the controller must settle, whatever the initial fleet — the
cross-validation suite pins exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["Autoscaler"]


@dataclass(frozen=True)
class Autoscaler:
    """Hysteresis-band scaling policy evaluated every ``interval_s``.

    Attributes
    ----------
    interval_s:
        Controller period: how often utilization is sampled and a
        decision taken.  Also the averaging window — utilization is
        measured as busy chip-seconds over awake chip-seconds since the
        previous tick.
    scale_up_above / scale_down_below:
        The hysteresis band on window utilization.  Must leave a gap
        (``down < up``) or the controller oscillates every tick.
    scale_up_queue_depth:
        Optional backlog override: a queue at or above this depth at a
        tick wakes chips even if the (awake-normalized) utilization
        looks acceptable — the signal that the *awake* fleet is simply
        too small.
    min_chips / max_chips:
        Fleet-size clamps.  ``min_chips`` keeps the system live (at
        least one chip always dispatchable); ``max_chips`` of ``None``
        means the physical fleet size bounds growth.
    step:
        Chips woken or parked per decision.
    initial_chips:
        Chips awake at time zero (the rest start parked).  ``None``
        starts the whole fleet awake — the conservative default that
        leaves cold-start behaviour opt-in.
    """

    interval_s: float = 0.05
    scale_up_above: float = 0.85
    scale_down_below: float = 0.55
    scale_up_queue_depth: int | None = None
    min_chips: int = 1
    max_chips: int | None = None
    step: int = 1
    initial_chips: int | None = None

    def __post_init__(self) -> None:
        require_positive(self.interval_s, "interval_s")
        require_positive(self.step, "step")
        require_positive(self.min_chips, "min_chips")
        if not 0.0 < self.scale_down_below < self.scale_up_above <= 1.0:
            raise ValueError(
                f"need 0 < scale_down_below < scale_up_above <= 1, got "
                f"({self.scale_down_below}, {self.scale_up_above})"
            )
        if self.scale_up_queue_depth is not None:
            require_positive(self.scale_up_queue_depth, "scale_up_queue_depth")
        if self.max_chips is not None and self.max_chips < self.min_chips:
            raise ValueError(
                f"max_chips {self.max_chips} below min_chips {self.min_chips}"
            )
        if self.initial_chips is not None:
            require_positive(self.initial_chips, "initial_chips")

    def initial(self, num_chips: int) -> int:
        """Chips awake at time zero, clamped to the policy's bounds."""
        initial = num_chips if self.initial_chips is None else self.initial_chips
        return max(self.min_chips, min(initial, self.bound(num_chips)))

    def bound(self, num_chips: int) -> int:
        """Largest fleet the policy may keep awake."""
        if self.max_chips is None:
            return num_chips
        return min(self.max_chips, num_chips)

    def decide(self, utilization: float, queue_depth: int, active_chips: int) -> int:
        """Signed chip-count delta for this window (before clamping).

        ``utilization`` is the window's busy share of *awake* chip time,
        ``queue_depth`` the backlog at the tick and ``active_chips`` the
        chips currently awake or waking.  The caller clamps the returned
        ``+-step`` to ``[min_chips, bound()]`` and to the chips actually
        available to park or wake.
        """
        backlogged = (
            self.scale_up_queue_depth is not None
            and queue_depth >= self.scale_up_queue_depth
        )
        if utilization >= self.scale_up_above or backlogged:
            return self.step
        if utilization <= self.scale_down_below:
            return -self.step
        return 0
