"""Unit tests of the tiered-fidelity serving layer.

Covers the :class:`~repro.serving.fleet.TieredServiceModel` wrapper
(Bernoulli routing, seeding, energy stream-independence, tabulation), the
per-tier report columns and their merge, the schedule-template cache, the
profiling counters, and the faults-vs-control-plane ``ValueError``
remediation hint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedule_cache import ScheduleTemplate, ScheduleTemplateCache
from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    FixedServiceModel,
    PoissonArrivals,
    ServingReport,
    ServingSimulator,
    StarServiceModel,
    TIER_ANALYTIC,
    TIER_EXECUTED,
    TieredServiceModel,
)


def _template(batch: int, seq_len: int = 128) -> ScheduleTemplate:
    return ScheduleTemplate(
        batch_size=batch,
        seq_len=seq_len,
        num_layers=2,
        num_rows=4 * batch,
        base_latency_s=2e-3 * batch,
        energy_j=1e-6 * batch,
        steady_row_s=(1e-8, 3e-8, 1e-8),
    )


def _tiered(fraction: float, seed: int = 0, sigma: float = 0.2) -> TieredServiceModel:
    templates = {(b, 128): _template(b) for b in range(1, 9)}
    return TieredServiceModel(
        FixedServiceModel(1e-3, request_energy_j=1e-6),
        sample_fraction=fraction,
        jitter_sigma=sigma,
        seed=seed,
        templates=templates,
    )


class TestTieredServiceModel:
    def test_fraction_one_routes_every_dispatch_executed(self):
        model = _tiered(1.0)
        for batch in (1, 4, 8):
            model.batch_latency_s(batch, 128)
            assert model.last_tier == TIER_EXECUTED
        assert model.executed_dispatches == 3
        assert model.analytic_dispatches == 0

    def test_fraction_zero_is_pure_passthrough(self):
        model = _tiered(0.0)
        assert model.batch_latency_s(4, 128) == model.base.batch_latency_s(4, 128)
        assert model.last_tier == TIER_ANALYTIC
        assert model.executed_dispatches == 0

    def test_bernoulli_routing_is_seeded_and_reproducible(self):
        draws_a = [_tiered(0.5, seed=3).batch_latency_s(2, 128) for _ in range(1)]
        model_a, model_b = _tiered(0.5, seed=3), _tiered(0.5, seed=3)
        tiers_a = [
            (model_a.batch_latency_s(2, 128), model_a.last_tier) for _ in range(50)
        ]
        tiers_b = [
            (model_b.batch_latency_s(2, 128), model_b.last_tier) for _ in range(50)
        ]
        assert tiers_a == tiers_b
        assert draws_a  # seeded single-draw smoke
        # and a different seed gives a different tier pattern
        model_c = _tiered(0.5, seed=4)
        tiers_c = [
            (model_c.batch_latency_s(2, 128), model_c.last_tier) for _ in range(50)
        ]
        assert tiers_c != tiers_a

    def test_energy_queries_never_advance_the_sampling_stream(self):
        with_energy, without = _tiered(0.5, seed=9), _tiered(0.5, seed=9)
        seq_a, seq_b = [], []
        for _ in range(30):
            with_energy.batch_energy_j(4, 128)  # interleaved energy queries
            seq_a.append(with_energy.batch_latency_s(4, 128))
            seq_b.append(without.batch_latency_s(4, 128))
        assert seq_a == seq_b

    def test_executed_draws_exceed_template_base(self):
        model = _tiered(1.0, sigma=0.5)
        base = _template(4).base_latency_s
        draws = [model.batch_latency_s(4, 128) for _ in range(20)]
        assert all(draw >= base for draw in draws)
        assert max(draws) > base  # sigma=0.5 jitter actually moves some draw

    def test_reset_replays_the_same_tier_sequence(self):
        model = _tiered(0.5, seed=21)
        first = [model.batch_latency_s(2, 128) for _ in range(20)]
        model.reset()
        assert [model.batch_latency_s(2, 128) for _ in range(20)] == first

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            _tiered(1.5)
        with pytest.raises(ValueError):
            TieredServiceModel(FixedServiceModel(1e-3), jitter_sigma=-0.1)

    def test_missing_template_without_accelerator_fails_with_hint(self):
        model = TieredServiceModel(
            FixedServiceModel(1e-3), sample_fraction=1.0, templates={}
        )
        with pytest.raises(KeyError, match="build_templates"):
            model.batch_latency_s(4, 128)


class TestTabulatedTiering:
    def test_tabulated_prices_identically_to_the_live_model(self):
        batches, lens = range(1, 9), (128,)
        live = TieredServiceModel(
            StarServiceModel(seq_len=128),
            sample_fraction=0.5,
            jitter_sigma=0.3,
            seed=5,
        )
        shipped = TieredServiceModel(
            StarServiceModel(seq_len=128),
            sample_fraction=0.5,
            jitter_sigma=0.3,
            seed=5,
        ).tabulated(batches, lens)
        for batch in batches:
            assert shipped.batch_latency_s(batch, 128) == live.batch_latency_s(
                batch, 128
            )
            assert shipped.batch_energy_j(batch, 128) == live.batch_energy_j(
                batch, 128
            )

    def test_fleet_tabulated_preserves_tiering(self):
        fleet = ChipFleet(
            TieredServiceModel(
                StarServiceModel(seq_len=128), sample_fraction=1.0, seed=2
            ),
            num_chips=2,
        )
        cached = fleet.tabulated([1, 2, 4], [128])
        model = cached.models[0]
        assert isinstance(model, TieredServiceModel)
        assert cached.models[1] is model  # shared instance stays shared
        model.batch_latency_s(2, 128)
        assert model.last_tier == TIER_EXECUTED

    def test_template_cache_hits_and_bounds(self):
        cache = ScheduleTemplateCache(maxsize=2)
        accelerator = StarServiceModel(seq_len=128).accelerator
        from repro.nn.bert import BERT_BASE, BertWorkload

        workloads = [
            BertWorkload(config=BERT_BASE, seq_len=128).with_batch(batch)
            for batch in (1, 2, 3)
        ]
        first = cache.get_or_build(accelerator, workloads[0])
        again = cache.get_or_build(accelerator, workloads[0])
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)
        cache.get_or_build(accelerator, workloads[1])
        cache.get_or_build(accelerator, workloads[2])  # evicts the oldest
        assert len(cache) == 2


class TestTierReporting:
    def _report(self, fraction: float) -> ServingReport:
        fleet = ChipFleet(_tiered(fraction, seed=1), num_chips=2)
        requests = PoissonArrivals(800.0, seq_len=128, seed=1).generate(200)
        return ServingSimulator(
            fleet, DynamicBatcher(max_batch_size=8, max_wait_s=1e-3)
        ).run(requests)

    def test_tier_column_partitions_the_batches(self):
        report = self._report(0.5)
        assert report.tiering_enabled
        executed = report.num_batches_in_tier(TIER_EXECUTED)
        analytic = report.num_batches_in_tier(TIER_ANALYTIC)
        assert executed + analytic == report.num_batches
        assert 0 < executed < report.num_batches
        assert report.num_requests_in_tier(TIER_EXECUTED) + report.num_requests_in_tier(
            TIER_ANALYTIC
        ) == report.num_requests

    def test_format_table_includes_tier_section_when_enabled(self):
        report = self._report(0.5)
        text = report.format_table()
        assert "fidelity tiers" in text
        assert "per-tier p50/p99" in text
        summary = report.summary()
        assert summary["executed_batch_fraction"] == report.executed_batch_fraction
        assert summary["executed_p99_latency_s"] == report.tier_latency_percentile_s(
            TIER_EXECUTED, 99.0
        )

    def test_merge_preserves_tier_columns(self):
        a, b = self._report(1.0), self._report(0.0)
        merged = ServingReport.merge([a, b])
        assert merged.tiering_enabled
        assert merged.num_batches_in_tier(TIER_EXECUTED) == a.num_batches
        assert merged.num_batches_in_tier(TIER_ANALYTIC) == b.num_batches
        # request tiers gather through the merged batch indices correctly
        assert merged.num_requests_in_tier(TIER_EXECUTED) == a.num_requests

    def test_profile_counts_tiers_templates_and_pricing(self):
        fleet = ChipFleet(_tiered(0.5, seed=1), num_chips=2)
        requests = PoissonArrivals(800.0, seq_len=128, seed=1).generate(200)
        simulator = ServingSimulator(
            fleet, DynamicBatcher(max_batch_size=8, max_wait_s=1e-3)
        )
        report = simulator.run(requests)
        profile = simulator.last_profile
        assert profile.executed_batches == report.num_batches_in_tier(TIER_EXECUTED)
        assert profile.analytic_batches == report.num_batches_in_tier(TIER_ANALYTIC)
        assert profile.template_hits == profile.executed_batches  # all prebuilt
        assert profile.template_misses == 0
        # and the formatted profiler table carries the new columns
        from repro.serving import Profiler

        profiler = Profiler()
        profiler.enabled = True
        profiler.record(profile)
        assert "tiers a/x" in profiler.format_table()


class TestFaultsControlPlaneGuard:
    def test_combined_faults_and_autoscale_raise_with_remediation_hint(self):
        from repro.serving.autoscale import Autoscaler

        fleet = ChipFleet(FixedServiceModel(1e-3), num_chips=2)
        with pytest.raises(ValueError, match="two simulators over the same"):
            ServingSimulator(
                fleet,
                faults=FaultInjector(mtbf_s=1.0, detection_s=0.01, repair_s=0.01),
                autoscaler=Autoscaler(),
            )

    def test_combined_faults_and_edf_raise_with_remediation_hint(self):
        fleet = ChipFleet(FixedServiceModel(1e-3), num_chips=2)
        with pytest.raises(ValueError, match="ROADMAP"):
            ServingSimulator(
                fleet,
                DynamicBatcher.edf(max_batch_size=4, max_wait_s=1e-3),
                faults=FaultInjector(mtbf_s=1.0, detection_s=0.01, repair_s=0.01),
            )
