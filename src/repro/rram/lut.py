"""RRAM look-up-table (LUT) crossbar.

The LUT crossbar of STAR's exponential unit stores, one per row, the
pre-computed exponentials of every representable ``x_i - x_max`` magnitude:

    ``WL_i = round(e^{x_i} * 2^m) * 2^{-m}``   (Fig. 2 of the paper, m = 4)

A row is selected by the one-hot match vector coming from the companion CAM
crossbar; the bitline sense amplifiers then read out the stored binary word,
which *is* the exponential result.  No ADC is required because the readout
is digital (one bit per bitline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.converters import SenseAmplifier
from repro.rram.device import RRAMDeviceConfig
from repro.utils.validation import require_positive

__all__ = ["LUTConfig", "LUTCrossbar", "exponential_lut_entries"]


@dataclass(frozen=True)
class LUTConfig:
    """Geometry of a LUT crossbar.

    Attributes
    ----------
    rows:
        Number of table entries (one per wordline).
    value_bits:
        Width of each stored word; one RRAM cell per bit.
    frac_bits:
        Number of fractional bits in the stored fixed-point values; the
        paper's Fig. 2 uses ``m = 4`` (``round(e^x * 2^m) * 2^-m``).
    device:
        RRAM cell parameters used for energy accounting.
    """

    rows: int = 256
    value_bits: int = 18
    frac_bits: int = 4
    device: RRAMDeviceConfig = field(default_factory=RRAMDeviceConfig)

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError(f"rows must be >= 1, got {self.rows}")
        if not 1 <= self.value_bits <= 64:
            raise ValueError(f"value_bits must be in [1, 64], got {self.value_bits}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be >= 0, got {self.frac_bits}")

    @property
    def num_cells(self) -> int:
        """Total RRAM cells in the LUT array."""
        return self.rows * self.value_bits

    @property
    def resolution(self) -> float:
        """Value of one LSB of the stored words."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable stored value."""
        return ((1 << self.value_bits) - 1) * self.resolution


def exponential_lut_entries(
    arguments: np.ndarray, frac_bits: int = 4
) -> np.ndarray:
    """Quantised exponentials exactly as STAR pre-loads them.

    Implements ``round(e^{x} * 2^m) * 2^{-m}`` from Fig. 2 of the paper for
    each argument ``x`` (the arguments are the non-positive ``x_i - x_max``
    values, but the formula is applied verbatim to whatever is passed in).
    """
    if frac_bits < 0:
        raise ValueError(f"frac_bits must be >= 0, got {frac_bits}")
    args = np.asarray(arguments, dtype=np.float64)
    scale = float(1 << frac_bits)
    return np.rint(np.exp(args) * scale) / scale


class LUTCrossbar:
    """A read-only table of fixed-point values stored in an RRAM array."""

    def __init__(self, config: LUTConfig | None = None) -> None:
        self.config = config or LUTConfig()
        self.sense_amp = SenseAmplifier()
        self._values: np.ndarray | None = None
        self.read_count = 0

    # ------------------------------------------------------------------ #
    # programming
    # ------------------------------------------------------------------ #
    @property
    def is_programmed(self) -> bool:
        """Whether table entries have been written."""
        return self._values is not None

    @property
    def values(self) -> np.ndarray:
        """All stored (quantised) table values, by row."""
        if self._values is None:
            raise RuntimeError("LUT has not been programmed yet")
        return self._values.copy()

    def program_values(self, values: np.ndarray) -> None:
        """Store one fixed-point value per row (quantised to the LUT grid)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        cfg = self.config
        if arr.size > cfg.rows:
            raise ValueError(f"{arr.size} values exceed the {cfg.rows} LUT rows")
        if arr.size == 0:
            raise ValueError("cannot program an empty value list")
        if np.any(arr < 0):
            raise ValueError("LUT values must be non-negative")
        if np.any(arr > cfg.max_value):
            raise ValueError(
                f"values exceed the representable maximum {cfg.max_value} "
                f"for {cfg.value_bits} bits with {cfg.frac_bits} fractional bits"
            )
        quantised = np.rint(arr / cfg.resolution) * cfg.resolution
        self._values = quantised

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #
    def read_row(self, row: int) -> float:
        """Read the value stored at ``row`` (wordline-selected digital read)."""
        if not self.is_programmed:
            raise RuntimeError("LUT must be programmed before reading")
        if not 0 <= row < self._values.size:
            raise ValueError(f"row {row} outside [0, {self._values.size - 1}]")
        self.read_count += 1
        return float(self._values[row])

    def read_onehot(self, match_vector: np.ndarray) -> float:
        """Read the row selected by a one-hot match vector from the CAM.

        Raises if the vector selects no row or more than one row, which in
        hardware would correspond to a failed CAM search.
        """
        if not self.is_programmed:
            raise RuntimeError("LUT must be programmed before reading")
        vector = np.asarray(match_vector, dtype=np.int64).ravel()
        hits = np.flatnonzero(vector)
        if hits.size != 1:
            raise ValueError(
                f"match vector must select exactly one row, selected {hits.size}"
            )
        return self.read_row(int(hits[0]))

    def read_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`read_row` for a batch of row indices."""
        if not self.is_programmed:
            raise RuntimeError("LUT must be programmed before reading")
        idx = np.asarray(rows, dtype=np.int64).ravel()
        if np.any(idx < 0) or np.any(idx >= self._values.size):
            raise ValueError(f"row indices must lie in [0, {self._values.size - 1}]")
        self.read_count += idx.size
        return self._values[idx].copy()

    # ------------------------------------------------------------------ #
    # per-access costs
    # ------------------------------------------------------------------ #
    def read_latency_s(self) -> float:
        """Latency of one wordline-selected digital read."""
        return self.config.device.read_pulse_s + self.sense_amp.latency_s

    def read_energy_j(self) -> float:
        """Energy of reading one row (all bitlines sensed in parallel)."""
        cfg = self.config
        v = cfg.device.read_voltage_v
        g_mid = 0.5 * (1.0 / cfg.device.r_on_ohm + 1.0 / cfg.device.r_off_ohm)
        cell_energy = cfg.value_bits * v * v * g_mid * cfg.device.read_pulse_s
        sense_energy = cfg.value_bits * self.sense_amp.energy_per_sense_j
        return cell_energy + sense_energy

    def area_um2(self, cell_area_um2: float = 0.2) -> float:
        """Array area: cells plus one sense amplifier per bitline."""
        require_positive(cell_area_um2, "cell_area_um2")
        return (
            self.config.num_cells * cell_area_um2
            + self.config.value_bits * self.sense_amp.area_um2
        )
