"""Softmax-vs-matmul latency breakdown (the paper's introductory observation).

The experiment behind E1: run the GPU inference model across a sweep of
sequence lengths and report, for each length, the share of execution time
spent in softmax.  The paper's headline numbers are that softmax overtakes
matrix multiplication at sequence length 512 and reaches 59.20 % of BERT-base
execution time there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.gpu import GPUModel
from repro.nn.bert import BertConfig, BERT_BASE, BertWorkload
from repro.workloads.sweeps import INTRO_SEQUENCE_SWEEP, SequenceLengthSweep

__all__ = ["BreakdownRow", "LatencyBreakdownAnalyzer"]


@dataclass(frozen=True)
class BreakdownRow:
    """One row of the latency-breakdown table."""

    seq_len: int
    matmul_s: float
    softmax_s: float
    total_s: float
    softmax_share: float


class LatencyBreakdownAnalyzer:
    """Sweeps sequence length and reports the softmax share of GPU latency."""

    def __init__(
        self,
        gpu: GPUModel | None = None,
        bert_config: BertConfig = BERT_BASE,
        sweep: SequenceLengthSweep = INTRO_SEQUENCE_SWEEP,
    ) -> None:
        self.gpu = gpu or GPUModel()
        self.bert_config = bert_config
        self.sweep = sweep

    def row_for(self, seq_len: int) -> BreakdownRow:
        """Breakdown at one sequence length."""
        workload = BertWorkload(config=self.bert_config, seq_len=seq_len)
        breakdown = self.gpu.latency_breakdown(workload)
        return BreakdownRow(
            seq_len=seq_len,
            matmul_s=breakdown.matmul_s,
            softmax_s=breakdown.softmax_s,
            total_s=breakdown.total_s,
            softmax_share=breakdown.softmax_share,
        )

    def sweep_rows(self) -> list[BreakdownRow]:
        """Breakdown across the configured sequence-length sweep."""
        return [self.row_for(seq_len) for seq_len in self.sweep]

    def crossover_length(self) -> int | None:
        """First swept length at which softmax exceeds the matmul latency."""
        for row in self.sweep_rows():
            if row.softmax_share > 0.5:
                return row.seq_len
        return None

    def format_table(self) -> str:
        """Printable table matching the structure of the paper's observation."""
        lines = [f"{'seq_len':>8} {'matmul (ms)':>12} {'softmax (ms)':>13} {'softmax share':>14}"]
        for row in self.sweep_rows():
            lines.append(
                f"{row.seq_len:>8d} {row.matmul_s * 1e3:>12.3f} "
                f"{row.softmax_s * 1e3:>13.3f} {row.softmax_share * 100:>13.2f}%"
            )
        return "\n".join(lines)
