"""Cross-validation: executed schedules vs the analytical pipeline formulas.

With one server per stage the event-driven executor and the closed-form
model describe the identical system, so they must agree *exactly* (both
granularities).  With stream/engine pools the analytical model approximates
a ``k``-wide pool as one ``k``-times-faster server; the executor keeps the
discrete servers, and the two must agree within a small tolerance
(differences are pipeline-fill and handoff-amortisation terms, which vanish
as the row count grows).
"""

from __future__ import annotations

import pytest

from repro.core.accelerator import STARAccelerator
from repro.core.config import PipelineConfig
from repro.core.pipeline import AttentionPipeline, StageTiming
from repro.core.scheduler import PipelineExecutor
from repro.nn.bert import BertWorkload

TIMINGS = [
    pytest.param((100e-9, 150e-9, 100e-9), id="softmax-bound"),
    pytest.param((10e-9, 500e-9, 10e-9), id="softmax-dominant"),
    pytest.param((100e-9, 100e-9, 100e-9), id="balanced"),
    pytest.param((250e-9, 40e-9, 90e-9), id="score-bound"),
    pytest.param((90e-9, 40e-9, 250e-9), id="context-bound"),
    pytest.param((0.0, 50e-9, 10e-9), id="free-score-stage"),
]
ROW_COUNTS = (1, 7, 64, 257)
HANDOFFS = (0.0, 2e-9)


class TestExactSingleServer:
    """One server per stage: executed == analytical, bit for bit."""

    @pytest.mark.parametrize("stage_times", TIMINGS)
    @pytest.mark.parametrize("rows", ROW_COUNTS)
    @pytest.mark.parametrize("handoff", HANDOFFS)
    def test_vector_grained_exact(self, stage_times, rows, handoff):
        timing = StageTiming(*stage_times, num_rows=rows)
        config = PipelineConfig(stage_handoff_s=handoff)
        executed = PipelineExecutor(config).execute_vector(timing)
        analytical = AttentionPipeline(config).vector_grained_latency(timing)
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=1e-12, abs=1e-18
        )

    @pytest.mark.parametrize("stage_times", TIMINGS)
    @pytest.mark.parametrize("rows", ROW_COUNTS)
    @pytest.mark.parametrize("handoff", HANDOFFS)
    def test_operand_grained_exact(self, stage_times, rows, handoff):
        timing = StageTiming(*stage_times, num_rows=rows)
        config = PipelineConfig(stage_handoff_s=handoff)
        executed = PipelineExecutor(config).execute_operand(timing)
        analytical = AttentionPipeline(config).operand_grained_latency(timing)
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=1e-12, abs=1e-18
        )

    @pytest.mark.parametrize("stage_times", TIMINGS)
    def test_steady_interval_matches_formula(self, stage_times):
        timing = StageTiming(*stage_times, num_rows=512)
        config = PipelineConfig(stage_handoff_s=2e-9)
        executed = PipelineExecutor(config).execute_vector(timing)
        assert executed.steady_state_interval_s == pytest.approx(
            timing.bottleneck_row_s + 2e-9, rel=1e-9
        )


class TestPooledResources:
    """Discrete pools vs the analytical rate-scaling approximation."""

    POOLS = [
        pytest.param((1, 1), id="degenerate"),
        pytest.param((2, 4), id="small"),
        pytest.param((4, 16), id="medium"),
        pytest.param((12, 64), id="star-default"),
    ]

    @pytest.mark.parametrize("stage_times", TIMINGS[:5])
    @pytest.mark.parametrize("pools", POOLS)
    def test_vector_grained_within_tolerance_no_handoff(self, stage_times, pools):
        # handoff-free: the only executed-vs-analytical difference is the
        # pipeline fill (native stage times vs rate-scaled ones), which is
        # bounded by sum(stage_times) and tiny against 1536 steady rows
        streams, engines = pools
        score, softmax, context = stage_times
        rows = 1536
        native = StageTiming(score, softmax, context, num_rows=rows)
        aggregate = StageTiming(
            score / streams, softmax / engines, context / streams, num_rows=rows
        )
        config = PipelineConfig(stage_handoff_s=0.0)
        executed = PipelineExecutor(
            config, streams=streams, softmax_engines=engines
        ).execute_vector(native)
        analytical = AttentionPipeline(config).vector_grained_latency(aggregate)
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=0.03
        )

    @pytest.mark.parametrize("stage_times", TIMINGS[:5])
    @pytest.mark.parametrize("pools", POOLS)
    def test_vector_grained_within_tolerance_with_handoff(self, stage_times, pools):
        # the analytical rate model charges the full handoff per aggregate
        # row while a k-wide pool amortises its forwards k ways, so the
        # models only agree where handoff << per-server interval — the
        # regime real stage timings live in (microseconds vs 2 ns)
        streams, engines = pools
        score, softmax, context = (t * 100 for t in stage_times)
        rows = 1536
        native = StageTiming(score, softmax, context, num_rows=rows)
        aggregate = StageTiming(
            score / streams, softmax / engines, context / streams, num_rows=rows
        )
        config = PipelineConfig(stage_handoff_s=2e-9)
        executed = PipelineExecutor(
            config, streams=streams, softmax_engines=engines
        ).execute_vector(native)
        analytical = AttentionPipeline(config).vector_grained_latency(aggregate)
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=0.05
        )

    @pytest.mark.parametrize("pools", POOLS)
    def test_operand_grained_matches_when_rows_divide(self, pools):
        # with the row count divisible by every pool size the discrete
        # operand phases have no ragged final wave: the coarse formula is
        # reproduced exactly even with pools
        streams, engines = pools
        rows = 1536  # divisible by 1, 2, 4, 12, 16, 64
        native = StageTiming(100e-9, 150e-9, 100e-9, num_rows=rows)
        aggregate = StageTiming(
            100e-9 / streams, 150e-9 / engines, 100e-9 / streams, num_rows=rows
        )
        config = PipelineConfig(stage_handoff_s=2e-9)
        executed = PipelineExecutor(
            config, streams=streams, softmax_engines=engines
        ).execute_operand(native)
        analytical = AttentionPipeline(config).operand_grained_latency(aggregate)
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=1e-12
        )


class TestBertShapes:
    """The E7 acceptance criterion on real BERT-base stage timings."""

    @pytest.mark.parametrize("seq_len", (128, 256, 512))
    def test_executed_speedup_within_5_percent(self, seq_len):
        star = STARAccelerator()
        workload = BertWorkload(seq_len=seq_len)
        timing = star.attention_stage_timing(workload)
        analytical_speedup = star.pipeline.speedup(timing)
        vector = star.executed_attention_schedule(workload, granularity="vector")
        operand = star.executed_attention_schedule(workload, granularity="operand")
        executed_speedup = operand.total_latency_s / vector.total_latency_s
        assert executed_speedup == pytest.approx(analytical_speedup, rel=0.05)

    @pytest.mark.parametrize("num_engines", (8, 32, 64, 128))
    def test_executed_latency_tracks_engine_count(self, num_engines):
        star = STARAccelerator(num_softmax_engines=num_engines)
        workload = BertWorkload(seq_len=128)
        analytical = star.pipeline.vector_grained_latency(
            star.attention_stage_timing(workload)
        )
        executed = star.executed_attention_schedule(workload, granularity="vector")
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=0.05
        )

    @pytest.mark.parametrize("num_tiles", (8, 24, 96))
    def test_executed_latency_tracks_tile_budget(self, num_tiles):
        from repro.core.config import MatMulEngineConfig, STARConfig

        config = STARConfig(matmul=MatMulEngineConfig(num_tiles=num_tiles))
        star = STARAccelerator(config)
        workload = BertWorkload(seq_len=128)
        analytical = star.pipeline.vector_grained_latency(
            star.attention_stage_timing(workload)
        )
        executed = star.executed_attention_schedule(workload, granularity="vector")
        assert executed.total_latency_s == pytest.approx(
            analytical.total_latency_s, rel=0.05
        )
