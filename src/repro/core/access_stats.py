"""Access statistics of the RRAM softmax engine.

The cycle-accurate engine used to *walk* the data path to know what it did:
energy and latency were charged while each element moved through the CAM,
LUT, counters and divider.  The batched backend decouples the two concerns:
the functional result is computed with pure vectorized NumPy, and an
:class:`AccessStats` value records *how many* hardware accesses of each kind
that computation corresponds to.  Energy, latency and the per-component
ledger are then derived from the stats analytically
(:meth:`repro.core.softmax_engine.RRAMSoftmaxEngine.energy_j_of` and
friends), so the accounting never rides the hot path.

One stats object describes any amount of work — a single row, a full
``(num_rows, seq_len)`` score block, or the lifetime of an engine — and
stats objects compose by addition.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["AccessStats"]


@dataclass(frozen=True)
class AccessStats:
    """Counts of every kind of hardware access the softmax engine performs.

    Attributes
    ----------
    rows:
        Softmax rows processed.
    elements:
        Score elements processed (``sum`` of row lengths).
    cam_sub_searches:
        CAM-phase searches of the CAM/SUB crossbar (one per element).
    or_merges:
        OR-gate merge operations folding match vectors (one per element).
    sub_passes:
        SUB-phase crossbar passes producing ``x_max - x_i`` (one per element).
    register_writes:
        Result-register writes latching ``x_max`` (one per row).
    exp_cam_searches:
        CAM searches in the exponential unit (one per element).
    lut_reads:
        LUT readouts (one per element whose search hit a stored level).
    counter_increments:
        Counter increments (one per element that landed on a level with a
        non-zero LUT entry).
    vmm_passes:
        Analog VMM summation passes producing denominators (one per row).
    divides:
        Divider operations (one per element).
    cam_misses:
        Elements whose difference exceeded the stored CAM range (their
        exponential is exactly zero).
    """

    rows: int = 0
    elements: int = 0
    cam_sub_searches: int = 0
    or_merges: int = 0
    sub_passes: int = 0
    register_writes: int = 0
    exp_cam_searches: int = 0
    lut_reads: int = 0
    counter_increments: int = 0
    vmm_passes: int = 0
    divides: int = 0
    cam_misses: int = 0

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"{field.name} must be >= 0, got {value}")

    def __add__(self, other: "AccessStats") -> "AccessStats":
        if not isinstance(other, AccessStats):
            return NotImplemented
        return AccessStats(
            **{
                field.name: getattr(self, field.name) + getattr(other, field.name)
                for field in fields(self)
            }
        )

    def scaled(self, factor: int) -> "AccessStats":
        """The stats of ``factor`` repetitions of this work."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return AccessStats(
            **{field.name: getattr(self, field.name) * factor for field in fields(self)}
        )

    @classmethod
    def for_block(
        cls,
        num_rows: int,
        seq_len: int,
        *,
        lut_reads: int | None = None,
        counter_increments: int | None = None,
        cam_misses: int = 0,
    ) -> "AccessStats":
        """Stats for one ``(num_rows, seq_len)`` score block.

        Without the keyword overrides the idealized per-row accounting is
        used (every element reads the LUT and bumps a counter), which is what
        the closed-form cost model of the paper's Table I assumes.  The
        batched data path passes the observed counts instead.
        """
        if num_rows < 0:
            raise ValueError(f"num_rows must be >= 0, got {num_rows}")
        if seq_len < 1 and num_rows > 0:
            raise ValueError(f"seq_len must be >= 1, got {seq_len}")
        elements = num_rows * seq_len
        return cls(
            rows=num_rows,
            elements=elements,
            cam_sub_searches=elements,
            or_merges=elements,
            sub_passes=elements,
            register_writes=num_rows,
            exp_cam_searches=elements,
            lut_reads=elements if lut_reads is None else lut_reads,
            counter_increments=elements if counter_increments is None else counter_increments,
            vmm_passes=num_rows,
            divides=elements,
            cam_misses=cam_misses,
        )
