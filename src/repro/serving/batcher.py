"""Dynamic batching policy: batch-size cap plus an accumulation timeout.

The policy is the standard server-side dynamic batcher (Triton's
``max_queue_delay``, vLLM's waiting-queue cap): queued requests are
released to an idle chip as soon as either

* the queue holds a full batch (``max_batch_size`` requests), or
* the oldest queued request has waited ``max_wait_s``.

``max_wait_s = 0`` dispatches greedily — whatever is queued (up to the
cap) leaves the moment a chip is free, which with ``max_batch_size = 1``
degenerates to pure FIFO single-request service (the M/D/1 regime the
cross-validation tests exercise).  A non-zero timeout trades first-token
latency for throughput: lightly-loaded systems hold requests briefly to
amortise the batch's weight reads over more queries.

``order`` selects how the queue is drained: ``"fifo"`` (arrival order,
the default and the only behaviour before SLO classes existed) or
``"edf"`` — earliest absolute deadline (``arrival_s + deadline_s``)
first, so tight-deadline requests overtake loose ones and a batch is the
``k`` most urgent queued requests.  Requests without a deadline sort
last under EDF (their absolute deadline is ``inf``), with arrival order
breaking ties.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["BATCH_ORDERS", "DynamicBatcher", "NO_BATCHING"]

#: Queue-drain orders a DynamicBatcher supports.
BATCH_ORDERS = ("fifo", "edf")


@dataclass(frozen=True)
class DynamicBatcher:
    """Release policy of the serving queue.

    Attributes
    ----------
    max_batch_size:
        Largest batch one chip dispatch may contain.
    max_wait_s:
        Longest the oldest queued request may wait for co-batched company
        before a partial batch is released anyway.
    order:
        Queue-drain order: ``"fifo"`` (arrival) or ``"edf"`` (earliest
        absolute deadline first).
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.0
    order: str = "fifo"

    def __post_init__(self) -> None:
        require_positive(self.max_batch_size, "max_batch_size")
        require_non_negative(self.max_wait_s, "max_wait_s")
        if self.order not in BATCH_ORDERS:
            raise ValueError(
                f"order must be one of {BATCH_ORDERS}, got {self.order!r}"
            )

    @classmethod
    def edf(
        cls, max_batch_size: int = 8, max_wait_s: float = 0.0
    ) -> "DynamicBatcher":
        """The deadline-aware variant: drain by earliest absolute deadline."""
        return cls(max_batch_size=max_batch_size, max_wait_s=max_wait_s, order="edf")

    @property
    def deadline_ordered(self) -> bool:
        """Whether this policy needs the deadline-aware dispatch path."""
        return self.order == "edf"

    def ready(self, queue_len: int, oldest_wait_s: float) -> bool:
        """Should a batch be released to an idle chip right now?"""
        if queue_len <= 0:
            return False
        return queue_len >= self.max_batch_size or oldest_wait_s >= self.max_wait_s

    def batch_of(self, queue_len: int) -> int:
        """How many requests the next dispatch takes from the queue."""
        return min(queue_len, self.max_batch_size)

    def queue_key(self, request, arrival_order: int) -> float:
        """The heap key this policy drains a per-chip queue by.

        Arrival order under FIFO, absolute deadline under EDF — the
        multi-queue router keeps one heap per chip keyed by
        ``(queue_key, arrival_order)``, so FIFO drains in arrival order
        and EDF drains most-urgent-first with arrival order breaking
        ties (and deadline-free requests, at ``inf``, sorting last).
        """
        if self.order == "edf":
            return request.absolute_deadline_s
        return float(arrival_order)

    def capped(self, max_batch_size: int) -> "DynamicBatcher":
        """This policy with its batch cap lowered to ``max_batch_size``.

        Used by degraded serving modes (a fleet running with failed chips
        dispatches smaller batches so one further failure loses fewer
        in-flight requests); a cap at or above the current one is a no-op.
        """
        require_positive(max_batch_size, "max_batch_size")
        if max_batch_size >= self.max_batch_size:
            return self
        return DynamicBatcher(
            max_batch_size=max_batch_size, max_wait_s=self.max_wait_s, order=self.order
        )


#: Pure FIFO single-request service — the M/D/1 cross-validation regime.
NO_BATCHING = DynamicBatcher(max_batch_size=1, max_wait_s=0.0)
