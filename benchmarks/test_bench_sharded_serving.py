"""Sharded-simulator benchmark: a million requests, validated and timed.

Three gates guard the scale-out:

* **Volume** — one million requests complete through the 8-shard simulator
  in a single benchmark round, with request conservation and the merged
  mean wait within 5% of the M/D/1 Pollaczek–Khinchine line (each shard is
  an exact rate-``lambda/8`` Poisson stream on a single deterministic
  chip, so the closed form applies shard-by-shard and therefore to the
  pooled mean).
* **Correctness** — parallel execution reproduces the single-process
  (serial, in-process) execution of the same partition bit for bit, which
  makes the throughput/p50/p99 agreement gates exact rather than
  statistical.
* **Scaling** — parallel efficiency of 4 workers stays above 0.5 and
  8 workers beat the single-process simulator by >= 4x.  Wall-clock
  speedup needs physical cores, so these gates engage only where the
  machine has them (CI runners with 1-2 cores still run the volume and
  correctness gates); the measured numbers are recorded either way.
"""

from __future__ import annotations

import os

import pytest

from repro.serving import (
    ChipFleet,
    FixedServiceModel,
    MD1Queue,
    PoissonArrivals,
    ServingSimulator,
    ShardedServingSimulator,
)

from conftest import record

SERVICE_S = 1e-3
LOAD = 0.7


def fleet(num_chips: int) -> ChipFleet:
    return ChipFleet(FixedServiceModel(SERVICE_S), num_chips=num_chips)


def arrivals(num_chips: int, seed: int = 7) -> PoissonArrivals:
    # hold the per-chip load at LOAD whatever the fleet size
    return PoissonArrivals(LOAD / SERVICE_S * num_chips, seq_len=128, seed=seed)


@pytest.mark.smoke
def test_bench_sharded_million_requests(benchmark):
    """1M requests across 8 shards: conservation, theory and wall time."""
    num_shards = 8
    simulator = ShardedServingSimulator(fleet(num_shards), num_shards=num_shards)

    report = benchmark.pedantic(
        simulator.run_poisson,
        args=(arrivals(num_shards), 1_000_000),
        rounds=1,
        iterations=1,
    )

    wall = benchmark.stats["mean"]
    theory = MD1Queue(arrival_rate_rps=LOAD / SERVICE_S, service_s=SERVICE_S)
    deviation = abs(report.mean_wait_s - theory.mean_wait_s) / theory.mean_wait_s
    record(
        benchmark,
        requests_per_wall_second=round(1_000_000 / wall),
        md1_wait_deviation_pct=round(deviation * 100, 2),
        merged_p99_ms=round(report.p99_latency_s * 1e3, 3),
        cpu_count=os.cpu_count(),
    )
    assert report.num_requests == 1_000_000
    assert report.num_shards == num_shards
    # every shard is an exact M/D/1 at rho=0.7: the pooled mean wait must
    # land on Pollaczek-Khinchine
    assert deviation < 0.05

    if (os.cpu_count() or 1) >= 8:
        single = ServingSimulator(fleet(num_shards))
        requests = arrivals(num_shards).generate(1_000_000)
        import time

        start = time.perf_counter()
        single.run(requests)
        single_wall = time.perf_counter() - start
        record(benchmark, single_process_wall_s=round(single_wall, 2))
        assert single_wall / wall >= 4.0


@pytest.mark.smoke
def test_bench_sharded_matches_single_process(benchmark):
    """Parallel and single-process execution of one partition agree exactly."""
    num_shards = 4
    stream = arrivals(num_shards, seed=11)
    parallel = ShardedServingSimulator(fleet(num_shards), num_shards=num_shards)
    serial = ShardedServingSimulator(
        fleet(num_shards), num_shards=num_shards, parallel=False
    )

    merged = benchmark.pedantic(
        parallel.run_poisson, args=(stream, 200_000), rounds=1, iterations=1
    )
    reference = serial.run_poisson(stream, 200_000)

    p50_gap = abs(merged.p50_latency_s - reference.p50_latency_s) / reference.p50_latency_s
    p99_gap = abs(merged.p99_latency_s - reference.p99_latency_s) / reference.p99_latency_s
    thr_gap = abs(merged.throughput_rps - reference.throughput_rps) / reference.throughput_rps
    record(
        benchmark,
        p50_gap_pct=round(p50_gap * 100, 4),
        p99_gap_pct=round(p99_gap * 100, 4),
        throughput_gap_pct=round(thr_gap * 100, 4),
    )
    # bit-identical partition makes the 2% agreement gates exact
    assert merged.requests == reference.requests
    assert merged.batches == reference.batches
    assert p50_gap < 0.02 and p99_gap < 0.02 and thr_gap < 0.02


@pytest.mark.smoke
def test_bench_sharded_scaling_efficiency(benchmark):
    """4-worker parallel efficiency, gated only where cores exist."""
    import time

    num_shards = 4
    total = 200_000
    stream = arrivals(num_shards, seed=13)

    start = time.perf_counter()
    ShardedServingSimulator(
        fleet(num_shards), num_shards=num_shards, parallel=False
    ).run_poisson(stream, total)
    serial_wall = time.perf_counter() - start

    simulator = ShardedServingSimulator(fleet(num_shards), num_shards=num_shards)
    report = benchmark.pedantic(
        simulator.run_poisson, args=(stream, total), rounds=1, iterations=1
    )

    parallel_wall = benchmark.stats["mean"]
    speedup = serial_wall / parallel_wall
    efficiency = speedup / num_shards
    record(
        benchmark,
        serial_wall_s=round(serial_wall, 3),
        speedup=round(speedup, 2),
        efficiency=round(efficiency, 3),
        cpu_count=os.cpu_count(),
    )
    assert report.num_requests == total
    if (os.cpu_count() or 1) >= num_shards:
        assert efficiency >= 0.5
