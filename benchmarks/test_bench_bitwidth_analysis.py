"""E4 — Section II bit-width table: required softmax precision per dataset.

Regenerates the analysis that arrives at 8 bits (6 + 2) for CNEWS, 9 bits
(6 + 3) for MRPC and 7 bits (5 + 2) for CoLA.
"""

from __future__ import annotations

from repro.analysis.bitwidth import BitwidthAnalyzer
from repro.workloads import DATASET_PROFILES

from conftest import record


def test_bench_bitwidth_table(benchmark, paper_values):
    """Full data-range + distortion analysis over the three dataset profiles."""
    analyzer = BitwidthAnalyzer()

    results = benchmark(analyzer.analyze_all, DATASET_PROFILES)

    by_name = {result.dataset: result for result in results}
    record(
        benchmark,
        cnews_bits=f"{by_name['CNEWS'].total_bits} ({by_name['CNEWS'].integer_bits}i+{by_name['CNEWS'].frac_bits}f)",
        mrpc_bits=f"{by_name['MRPC'].total_bits} ({by_name['MRPC'].integer_bits}i+{by_name['MRPC'].frac_bits}f)",
        cola_bits=f"{by_name['CoLA'].total_bits} ({by_name['CoLA'].integer_bits}i+{by_name['CoLA'].frac_bits}f)",
        paper_bits="CNEWS 8 (6i+2f), MRPC 9 (6i+3f), CoLA 7 (5i+2f)",
        observed_ranges={name: round(result.observed_range, 2) for name, result in by_name.items()},
    )
    assert by_name["CNEWS"].total_bits == paper_values["bits_cnews"]
    assert by_name["MRPC"].total_bits == paper_values["bits_mrpc"]
    assert by_name["CoLA"].total_bits == paper_values["bits_cola"]
    assert (by_name["CNEWS"].integer_bits, by_name["CNEWS"].frac_bits) == (6, 2)
    assert (by_name["MRPC"].integer_bits, by_name["MRPC"].frac_bits) == (6, 3)
    assert (by_name["CoLA"].integer_bits, by_name["CoLA"].frac_bits) == (5, 2)
