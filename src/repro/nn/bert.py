"""BERT-base model definition and workload operation counting.

The paper's efficiency experiments are all phrased in terms of the BERT-base
encoder (12 layers, hidden 768, 12 heads, FFN 3072).  Two things are needed
from it here:

* a runnable forward pass (for the accuracy and score-distribution
  experiments), built from :mod:`repro.nn.encoder` — with pluggable
  softmax (``softmax_fn``) and GEMM compute backend (``backend``), so the
  same model runs exact NumPy inference or full analog inference on
  simulated RRAM crossbars;
* exact operation counts of each component as a function of sequence length
  (for the latency-breakdown experiment E1 and the efficiency figure E6),
  provided by :class:`BertWorkload` without instantiating any weights — so
  the benchmark harness can sweep sequence lengths cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.nn.backend import ComputeBackend
from repro.nn.encoder import TransformerEncoder
from repro.nn.layers import Embedding

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.matmul_engine import GEMMShape
    from repro.core.scheduler import AttentionExecutor, ExecutedSchedule

__all__ = ["BertConfig", "BERT_BASE", "BertEncoderModel", "BertWorkload"]


@dataclass(frozen=True)
class BertConfig:
    """Topology of a BERT-style encoder."""

    num_layers: int = 12
    hidden: int = 768
    num_heads: int = 12
    intermediate: int = 3072
    vocab_size: int = 30522
    max_positions: int = 512

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.hidden < 1 or self.intermediate < 1:
            raise ValueError("hidden and intermediate sizes must be positive")
        if self.hidden % self.num_heads != 0:
            raise ValueError(
                f"hidden {self.hidden} must be divisible by num_heads {self.num_heads}"
            )

    @property
    def head_dim(self) -> int:
        """Per-head dimensionality."""
        return self.hidden // self.num_heads


BERT_BASE = BertConfig()


class BertEncoderModel:
    """Runnable BERT encoder with deterministic random weights.

    ``softmax_fn`` selects the softmax implementation and ``backend`` the
    GEMM hardware (:mod:`repro.nn.backend`).  Passing
    ``backend=AnalogBackend(...)`` together with
    ``softmax_fn=RRAMSoftmaxEngine(...)`` runs the whole encoder —
    projections, attention score/context products, FFN *and* softmax — on
    simulated analog RRAM hardware; the embedding lookup stays digital.
    """

    def __init__(
        self,
        config: BertConfig = BERT_BASE,
        seed: int = 0,
        softmax_fn: Callable[[np.ndarray], np.ndarray] | None = None,
        backend: ComputeBackend | None = None,
        executor: "AttentionExecutor | None" = None,
    ) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.embedding = Embedding(
            config.vocab_size, config.max_positions, config.hidden, rng=rng
        )
        self.encoder = TransformerEncoder(
            config.num_layers,
            config.hidden,
            config.num_heads,
            config.intermediate,
            rng=rng,
            softmax_fn=softmax_fn,
            backend=backend,
            executor=executor,
        )

    def __call__(self, token_ids: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Encode a ``(batch, seq_len)`` batch of token ids."""
        hidden = self.embedding(token_ids)
        return self.encoder(hidden, mask=mask)

    def encode_hidden(self, hidden: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Encode pre-embedded hidden states (skips the embedding lookup)."""
        return self.encoder(hidden, mask=mask)

    def attention_scores(self) -> list[np.ndarray]:
        """Attention scores captured during the most recent forward pass."""
        return self.encoder.collect_attention_scores()

    def attention_schedules(self) -> "list[ExecutedSchedule]":
        """Per-layer executed schedules of the most recent forward pass.

        Empty unless the model was built with an ``executor`` — with one,
        each layer's attention chain streams through the event-driven
        schedule and reports its measured timing here.
        """
        return self.encoder.collect_attention_schedules()


@dataclass(frozen=True)
class BertWorkload:
    """Closed-form operation counts of BERT-base inference at a given length.

    All counts are in primitive operations with a multiply-accumulate counted
    as two operations, matching the GOPs convention of the paper's Fig. 3.
    """

    config: BertConfig = BERT_BASE
    seq_len: int = 128
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.seq_len < 1:
            raise ValueError(f"seq_len must be >= 1, got {self.seq_len}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    # ------------------------------------------------------------------ #
    # request-level derivatives (serving)
    # ------------------------------------------------------------------ #
    def with_batch(self, batch_size: int) -> "BertWorkload":
        """The same model and length serving ``batch_size`` requests at once.

        The serving simulator prices every dispatched batch as one such
        workload: a batch of requests is a single batched inference.
        """
        return replace(self, batch_size=batch_size)

    def with_seq_len(self, seq_len: int) -> "BertWorkload":
        """The same model padded/truncated to ``seq_len`` tokens per request."""
        return replace(self, seq_len=seq_len)

    def ops_per_request(self) -> float:
        """Primitive operations attributable to one request of the batch."""
        return self.total_ops() / self.batch_size

    # ------------------------------------------------------------------ #
    # per-request GEMM shapes (batch-aware accelerator pricing)
    # ------------------------------------------------------------------ #
    def projection_shape(self) -> "GEMMShape":
        """One Q/K/V/output projection GEMM of a single request."""
        from repro.core.matmul_engine import GEMMShape

        cfg = self.config
        return GEMMShape(m=self.seq_len, k=cfg.hidden, n=cfg.hidden)

    def ffn_up_shape(self) -> "GEMMShape":
        """The position-wise FFN up-projection GEMM of a single request."""
        from repro.core.matmul_engine import GEMMShape

        cfg = self.config
        return GEMMShape(m=self.seq_len, k=cfg.hidden, n=cfg.intermediate)

    def ffn_down_shape(self) -> "GEMMShape":
        """The position-wise FFN down-projection GEMM of a single request."""
        from repro.core.matmul_engine import GEMMShape

        cfg = self.config
        return GEMMShape(m=self.seq_len, k=cfg.intermediate, n=cfg.hidden)

    def attention_score_row_shape(self) -> "GEMMShape":
        """One row of one head's ``Q K^T`` product (the pipeline granule)."""
        from repro.core.matmul_engine import GEMMShape

        return GEMMShape(m=1, k=self.config.head_dim, n=self.seq_len)

    def attention_context_row_shape(self) -> "GEMMShape":
        """One row of one head's ``A V`` product (the pipeline granule)."""
        from repro.core.matmul_engine import GEMMShape

        return GEMMShape(m=1, k=self.seq_len, n=self.config.head_dim)

    def weight_operand_shapes_per_layer(self) -> "tuple[GEMMShape, ...]":
        """The stationary weight operands one encoder layer programs.

        Four ``hidden x hidden`` projections plus the two FFN matrices —
        the operands a time-multiplexed tile bank writes once per
        dispatched batch (the ``"streamed"`` weight policy of
        :class:`~repro.core.batch_cost.BatchCostModel`).  Attention's
        dynamic ``K^T`` / ``V`` operands are not in this list: STAR, like
        ReTransformer, avoids rewriting them through matrix decomposition.
        """
        return (
            self.projection_shape(),
            self.projection_shape(),
            self.projection_shape(),
            self.projection_shape(),
            self.ffn_up_shape(),
            self.ffn_down_shape(),
        )

    # ------------------------------------------------------------------ #
    # per-component counts (single layer)
    # ------------------------------------------------------------------ #
    def _tokens(self) -> int:
        return self.batch_size * self.seq_len

    def qkv_projection_ops_per_layer(self) -> int:
        """Q/K/V/output projections: four ``hidden x hidden`` GEMMs."""
        cfg = self.config
        return 4 * 2 * self._tokens() * cfg.hidden * cfg.hidden

    def attention_matmul_ops_per_layer(self) -> int:
        """``QK^T`` and ``A V``: the sequence-length-quadratic GEMMs."""
        cfg = self.config
        per_head = 2 * 2 * self.batch_size * self.seq_len * self.seq_len * cfg.head_dim
        return cfg.num_heads * per_head

    def ffn_ops_per_layer(self) -> int:
        """Position-wise feed-forward GEMMs."""
        cfg = self.config
        return 2 * 2 * self._tokens() * cfg.hidden * cfg.intermediate

    def softmax_elements_per_layer(self) -> int:
        """Attention matrix entries processed by softmax in one layer."""
        return self.config.num_heads * self.batch_size * self.seq_len * self.seq_len

    def softmax_ops_per_layer(self) -> int:
        """Softmax primitive ops: max-compare, subtract, exp, add, divide (~5/elem)."""
        return 5 * self.softmax_elements_per_layer()

    # ------------------------------------------------------------------ #
    # whole-model counts
    # ------------------------------------------------------------------ #
    def matmul_ops(self) -> int:
        """All GEMM operations across the encoder stack."""
        per_layer = (
            self.qkv_projection_ops_per_layer()
            + self.attention_matmul_ops_per_layer()
            + self.ffn_ops_per_layer()
        )
        return self.config.num_layers * per_layer

    def attention_only_matmul_ops(self) -> int:
        """GEMMs inside the attention mechanism only (used by Fig. 3's scope)."""
        per_layer = self.qkv_projection_ops_per_layer() + self.attention_matmul_ops_per_layer()
        return self.config.num_layers * per_layer

    def softmax_ops(self) -> int:
        """Softmax operations across the encoder stack."""
        return self.config.num_layers * self.softmax_ops_per_layer()

    def softmax_elements(self) -> int:
        """Softmax matrix elements across the encoder stack."""
        return self.config.num_layers * self.softmax_elements_per_layer()

    def softmax_vectors(self) -> int:
        """Number of length-``seq_len`` softmax row vectors in the whole model."""
        return (
            self.config.num_layers
            * self.config.num_heads
            * self.batch_size
            * self.seq_len
        )

    def total_ops(self) -> int:
        """GEMM + softmax operations (the paper's GOPs accounting)."""
        return self.matmul_ops() + self.softmax_ops()

    def breakdown(self) -> dict[str, int]:
        """Per-component totals used by the latency-breakdown experiment."""
        layers = self.config.num_layers
        return {
            "qkv_projections": layers * self.qkv_projection_ops_per_layer(),
            "attention_matmuls": layers * self.attention_matmul_ops_per_layer(),
            "ffn": layers * self.ffn_ops_per_layer(),
            "softmax": self.softmax_ops(),
        }
