"""Closed-form queueing theory the serving simulator is validated against.

In the single-chip, no-batching limit with Poisson arrivals and a
deterministic whole-model service time, the simulated system is exactly an
M/D/1 queue, so the Pollaczek–Khinchine formula predicts its steady-state
waiting time:

    W_q = lambda * E[S^2] / (2 * (1 - rho))          (general M/G/1)
        = rho * s / (2 * (1 - rho))                  (deterministic S = s)

The cross-validation suite drives the simulator at moderate utilization
and requires the measured mean wait to land within a few percent of this —
the serving-level analogue of the pipeline executor's closed-form
cross-checks.  :class:`MM1Queue` (exponential service) is included as the
pessimistic bracket: a deterministic server waits exactly half as long as
an exponential one, so a correct simulation must fall on the M/D/1 line,
not the M/M/1 one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["MD1Queue", "MM1Queue"]


class _SingleServerQueue:
    """Shared derived quantities of a single-server queue at rate/service."""

    arrival_rate_rps: float
    service_s: float

    @property
    def utilization(self) -> float:
        """Offered load ``rho = lambda * s``."""
        return self.arrival_rate_rps * self.service_s

    @property
    def mean_wait_s(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def mean_latency_s(self) -> float:
        """Mean sojourn time: queueing wait plus service."""
        return self.mean_wait_s + self.service_s

    @property
    def mean_queue_len(self) -> float:
        """Mean number waiting (Little's law on the queue)."""
        return self.arrival_rate_rps * self.mean_wait_s

    @property
    def mean_in_system(self) -> float:
        """Mean number in the system (Little's law on the sojourn)."""
        return self.arrival_rate_rps * self.mean_latency_s

    def _check(self) -> None:
        require_positive(self.arrival_rate_rps, "arrival_rate_rps")
        require_positive(self.service_s, "service_s")
        if self.utilization >= 1.0:
            raise ValueError(
                f"queue is unstable: rho = {self.utilization:.3f} >= 1 "
                f"(rate {self.arrival_rate_rps} rps, service {self.service_s} s)"
            )


@dataclass(frozen=True)
class MD1Queue(_SingleServerQueue):
    """M/D/1: Poisson arrivals, deterministic service, one server."""

    arrival_rate_rps: float
    service_s: float

    def __post_init__(self) -> None:
        self._check()

    @property
    def mean_wait_s(self) -> float:
        """Pollaczek–Khinchine mean wait for deterministic service."""
        rho = self.utilization
        return rho * self.service_s / (2.0 * (1.0 - rho))


@dataclass(frozen=True)
class MM1Queue(_SingleServerQueue):
    """M/M/1: Poisson arrivals, exponential service, one server."""

    arrival_rate_rps: float
    service_s: float

    def __post_init__(self) -> None:
        self._check()

    @property
    def mean_wait_s(self) -> float:
        """Mean wait with exponential service — twice the M/D/1 wait."""
        rho = self.utilization
        return rho * self.service_s / (1.0 - rho)
