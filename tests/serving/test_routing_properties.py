"""Routing invariants: property tests over random topologies and traffic.

Hypothesis drives the multi-queue router with random fleets, policies,
link latencies and batching and asserts what any correct topology-aware
scheduler obeys: request conservation (every arrival is served exactly
once), the network stage is causal (no dispatch before the front-end hop
lands), steal causality (every steal record names a real batch served
off-queue after its decision instant), and the zero-cost limit — a
homogeneous fleet with free links, single-request dispatch and stealing
is *bit-identical* to the global-FIFO baseline under JSQ/SED routing.
The last leg also pins serial == parallel determinism for the sharded
routed runs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    NetworkModel,
    NO_BATCHING,
    PoissonArrivals,
    Router,
    ServingSimulator,
    ShardedServingSimulator,
)

# a random routed scenario: traffic, topology, policy and batching
scenarios = st.fixed_dictionaries(
    {
        "num_requests": st.integers(min_value=1, max_value=120),
        "rate_rps": st.floats(min_value=10.0, max_value=5000.0),
        "service_s": st.floats(min_value=1e-5, max_value=5e-3),
        "num_chips": st.integers(min_value=1, max_value=5),
        "max_batch": st.integers(min_value=1, max_value=8),
        "max_wait_s": st.sampled_from([0.0, 1e-4, 2e-3]),
        "policy": st.sampled_from(
            ["round_robin", "join_shortest_queue", "shortest_expected_delay"]
        ),
        "link_latency_s": st.sampled_from([0.0, 1e-5, 5e-4]),
        "steal_latency_s": st.sampled_from([0.0, 2e-5]),
        "stealing": st.booleans(),
        "speed_skew": st.sampled_from([1.0, 4.0]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def simulate(params):
    requests = PoissonArrivals(
        params["rate_rps"], seq_len=128, seed=params["seed"]
    ).generate(params["num_requests"])
    num_chips = params["num_chips"]
    speedups = [params["speed_skew"]] + [1.0] * (num_chips - 1)
    fleet = ChipFleet(
        FixedServiceModel(params["service_s"], request_energy_j=1e-6),
        num_chips=num_chips,
        speedups=speedups,
    )
    batcher = DynamicBatcher(
        max_batch_size=params["max_batch"], max_wait_s=params["max_wait_s"]
    )
    router = Router(
        policy=params["policy"],
        network=NetworkModel(
            link_latency_s=params["link_latency_s"],
            steal_latency_s=params["steal_latency_s"],
        ),
        stealing=params["stealing"],
    )
    simulator = ServingSimulator(fleet, batcher, router=router)
    return requests, simulator.run(requests)


class TestRoutingProperties:
    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_requests_conserved(self, params):
        requests, report = simulate(params)
        assert report.num_requests == len(requests)
        assert sorted(report.requests.index.tolist()) == [r.index for r in requests]
        assert report.routing.num_routed == len(requests)
        assert sum(report.routing.queue_requests) == len(requests)

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_no_dispatch_before_the_hop_lands(self, params):
        _, report = simulate(params)
        hop = params["link_latency_s"]
        for record in report.requests:
            assert record.dispatch_s >= record.arrival_s + hop - 1e-12
        assert report.routing.route_network_s == pytest.approx(
            hop * report.routing.num_routed
        )

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_steal_causality(self, params):
        _, report = simulate(params)
        stats = report.routing
        if not params["stealing"]:
            assert stats.stolen_batches == 0
            return
        assert len(stats.steals) == stats.stolen_batches
        for steal in stats.steals:
            assert steal.queue != steal.chip
            batch = report.batches[steal.batch_index]
            assert batch.chip == steal.chip
            assert batch.dispatch_s == pytest.approx(
                steal.decided_s + params["steal_latency_s"]
            )

    @given(scenarios)
    @settings(max_examples=40, deadline=None)
    def test_batches_never_overlap_on_a_chip(self, params):
        _, report = simulate(params)
        by_chip: dict[int, list] = {}
        for batch in report.batches:
            by_chip.setdefault(batch.chip, []).append(batch)
        for batches in by_chip.values():
            batches.sort(key=lambda b: b.dispatch_s)
            for earlier, later in zip(batches, batches[1:]):
                assert later.dispatch_s >= earlier.completion_s - 1e-12


# the zero-cost limit: only the policies that route to the
# lowest-indexed idle chip reduce to the global FIFO (round_robin
# genuinely reorders service and is excluded by design)
identity_scenarios = st.fixed_dictionaries(
    {
        "num_requests": st.integers(min_value=1, max_value=150),
        "rate_rps": st.floats(min_value=50.0, max_value=8000.0),
        "service_s": st.floats(min_value=1e-5, max_value=5e-3),
        "num_chips": st.integers(min_value=1, max_value=5),
        "policy": st.sampled_from(
            ["join_shortest_queue", "shortest_expected_delay"]
        ),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


class TestZeroCostIdentity:
    @given(identity_scenarios)
    @settings(max_examples=60, deadline=None)
    def test_homogeneous_zero_delay_matches_global_fifo(self, params):
        requests = PoissonArrivals(
            params["rate_rps"], seq_len=128, seed=params["seed"]
        ).generate(params["num_requests"])
        fleet_kwargs = dict(
            service_model=FixedServiceModel(
                params["service_s"], request_energy_j=1e-6, idle_power_w=0.1
            ),
            num_chips=params["num_chips"],
        )
        baseline = ServingSimulator(ChipFleet(**fleet_kwargs), NO_BATCHING).run(
            requests
        )
        routed = ServingSimulator(
            ChipFleet(**fleet_kwargs),
            NO_BATCHING,
            router=Router(policy=params["policy"]),
        ).run(requests)
        assert routed.requests == baseline.requests
        assert routed.batches == baseline.batches
        assert routed.queue_peak == baseline.queue_peak
        assert routed.chip_busy_s == baseline.chip_busy_s


class TestShardedRoutedDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        policy=st.sampled_from(
            ["round_robin", "join_shortest_queue", "shortest_expected_delay"]
        ),
    )
    @settings(max_examples=10, deadline=None)
    def test_serial_matches_parallel(self, seed, policy):
        arrivals = PoissonArrivals(3000.0, seq_len=[64, 128], seed=seed)
        router = Router(
            policy=policy,
            network=NetworkModel(link_latency_s=1e-5, steal_latency_s=1e-5),
        )

        def run(parallel: bool):
            fleet = ChipFleet(
                FixedServiceModel(1e-3, request_energy_j=1e-6),
                num_chips=4,
            )
            simulator = ShardedServingSimulator(
                fleet, num_shards=2, router=router, parallel=parallel
            )
            return simulator.run_poisson(arrivals, 400)

        serial, parallel = run(False), run(True)
        assert serial.requests == parallel.requests
        assert serial.batches == parallel.batches
        assert serial.routing == parallel.routing
