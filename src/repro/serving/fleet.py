"""Chip fleets: the serving simulator's server pool and its service model.

A fleet is ``num_chips`` accelerator chips sharing one dispatch queue.
What a batch costs is delegated to a *service model*:

* :class:`StarServiceModel` — the real thing: a
  :class:`~repro.core.accelerator.STARAccelerator` (one
  :class:`~repro.core.accelerator.ChipResources` worth of tile banks,
  softmax engines and overheads) prices a batch as a whole-model BERT
  inference at the batch's padded sequence length, with energy charged at
  the chip's active power.  Pricing is **batch-aware**: it defaults to
  :meth:`~repro.core.batch_cost.BatchCostModel.streamed`, under which a
  batch programs each stationary operand once and streams every request's
  rows through it (double-buffered beyond the first request), so batch
  service time is genuinely sublinear in batch size.  Timings are cached
  per ``(batch, seq_len)`` shape in a bounded cache shared across all
  identically-configured models — the chips of a fleet (and every fleet of
  a sweep) price each shape exactly once.
* :class:`LinearServiceModel` — wraps any service model and prices a batch
  as ``batch_size x single_request``: the pre-batching behaviour, kept as
  the explicit baseline the amortisation sweeps compare against.
* :class:`FixedServiceModel` — a synthetic deterministic service used by
  the queueing-theory cross-validation (M/D/1 needs a known constant
  service time, not a full accelerator model).
* :class:`TieredServiceModel` — fidelity as a dial: a seeded Bernoulli
  fraction of dispatches is priced off cached executed-schedule templates
  (:mod:`repro.core.schedule_cache`) with per-layer lognormal jitter
  resampled per dispatch, the rest through the wrapped analytic model —
  so pipeline-level tail variation reaches request-level p99 at ~zero
  hot-path cost.

Fleets can be heterogeneous two ways: per-chip ``speedups`` (scalar speed
factors, as before), or a per-chip ``service_models`` sequence — chips
with genuinely different :class:`~repro.core.accelerator.ChipResources`
(tile counts, engine pools) price the same batch differently, which is
what length-aware routing studies need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "ServiceModel",
    "WrappedCapabilities",
    "FixedServiceModel",
    "ExponentialServiceModel",
    "StarServiceModel",
    "LinearServiceModel",
    "TabulatedServiceModel",
    "TieredServiceModel",
    "PricingCache",
    "ChipFleet",
    "TIER_ANALYTIC",
    "TIER_EXECUTED",
]

#: Fidelity tier of a dispatched batch: analytic cache pricing.
TIER_ANALYTIC = 0
#: Fidelity tier of a dispatched batch: executed-schedule template resample.
TIER_EXECUTED = 1


class ServiceModel(Protocol):
    """Prices one dispatched batch on one (speed-1.0) chip."""

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        """Service time of a ``batch_size`` batch padded to ``seq_len``."""
        ...

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        """Active energy of serving that batch."""
        ...


class WrappedCapabilities:
    """Capability pass-throughs of a service model wrapping ``self.base``.

    A wrapper re-prices batches but runs on the *same hardware* as the
    model it wraps, so its standby power, repair cost and power-state
    capabilities are the base model's — these six properties forward them
    (with the can't-sleep-deeper-than-idle and wakes-for-free defaults
    for base models that declare no such capability).  Shared by
    :class:`LinearServiceModel` and :class:`TieredServiceModel` so the
    forwarding exists exactly once.
    """

    base: ServiceModel

    @property
    def idle_power_w(self) -> float:
        """Standby power of the wrapped chip model."""
        return getattr(self.base, "idle_power_w", 0.0)

    @property
    def reprogram_latency_s(self) -> float:
        """Repair cost of the wrapped chip model (same hardware, same rewrite)."""
        return getattr(self.base, "reprogram_latency_s", 0.0)

    @property
    def sleep_power_w(self) -> float:
        """Deep-sleep power of the wrapped chip (idle power if it cannot sleep)."""
        return getattr(self.base, "sleep_power_w", self.idle_power_w)

    @property
    def sleep_entry_latency_s(self) -> float:
        """Sleep-entry latency of the wrapped chip."""
        return getattr(self.base, "sleep_entry_latency_s", 0.0)

    @property
    def wake_latency_s(self) -> float:
        """Wake latency of the wrapped chip (same hardware, same re-bias)."""
        return getattr(self.base, "wake_latency_s", 0.0)

    @property
    def wake_energy_j(self) -> float:
        """Wake energy of the wrapped chip."""
        return getattr(self.base, "wake_energy_j", 0.0)


@dataclass(frozen=True)
class FixedServiceModel:
    """Deterministic per-request service, serialized within a batch.

    A batch of ``b`` requests costs ``b * request_latency_s`` — no batching
    benefit, which keeps the no-batching single-chip limit an exact M/D/1
    queue with service time ``request_latency_s``.  ``idle_power_w`` is the
    chip's standby draw, charged by the report over un-occupied time.

    The ``sleep_*`` / ``wake_*`` fields are the synthetic power-state knobs
    the autoscaler tests use: residual power while parked, the drain into
    deep sleep, and the latency/energy of waking back up.  They default to
    a chip that cannot sleep deeper than idle and wakes for free.
    """

    request_latency_s: float
    request_energy_j: float = 0.0
    idle_power_w: float = 0.0
    reprogram_latency_s: float = 0.0
    sleep_power_w: float = 0.0
    sleep_entry_latency_s: float = 0.0
    wake_latency_s: float = 0.0
    wake_energy_j: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.request_latency_s, "request_latency_s")
        require_non_negative(self.request_energy_j, "request_energy_j")
        require_non_negative(self.idle_power_w, "idle_power_w")
        require_non_negative(self.reprogram_latency_s, "reprogram_latency_s")
        require_non_negative(self.sleep_power_w, "sleep_power_w")
        if self.sleep_power_w > self.idle_power_w:
            raise ValueError(
                f"deep sleep must not draw more than idle: "
                f"{self.sleep_power_w} W > {self.idle_power_w} W"
            )
        require_non_negative(self.sleep_entry_latency_s, "sleep_entry_latency_s")
        require_non_negative(self.wake_latency_s, "wake_latency_s")
        require_non_negative(self.wake_energy_j, "wake_energy_j")

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.request_latency_s

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.request_energy_j


class ExponentialServiceModel:
    """Exponential per-request service — the Markovian theory stand-in.

    Each :meth:`batch_latency_s` call draws the batch's service time as a
    sum of ``batch_size`` exponentials with mean ``mean_s`` from one seeded
    generator, so runs are exactly reproducible in the seed and the
    call-order of the simulator (which prices each dispatched batch
    exactly once).  The single-chip, no-batching closed loop over this
    model is precisely the machine-repair M/M/1//N system of
    :class:`~repro.serving.theory.MachineRepairQueue`; the open-loop
    variant is M/M/1.  Energy stays deterministic (``batch_size *
    request_energy_j``): it is queried separately from the latency draw
    and plays no role in the Markovian dynamics.
    """

    def __init__(
        self,
        mean_s: float,
        request_energy_j: float = 0.0,
        idle_power_w: float = 0.0,
        seed: int | None = 0,
    ) -> None:
        import numpy as np

        require_positive(mean_s, "mean_s")
        require_non_negative(request_energy_j, "request_energy_j")
        require_non_negative(idle_power_w, "idle_power_w")
        self.mean_s = float(mean_s)
        self.request_energy_j = float(request_energy_j)
        self.idle_power_w = float(idle_power_w)
        # explicit capability defaults (a synthetic chip that never needs
        # repair, cannot sleep deeper than idle, and wakes for free), so
        # fleet accessors read real attributes instead of getattr fallbacks
        self.reprogram_latency_s = 0.0
        self.sleep_power_w = self.idle_power_w
        self.sleep_entry_latency_s = 0.0
        self.wake_latency_s = 0.0
        self.wake_energy_j = 0.0
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the draw stream (fresh runs replay the same services)."""
        import numpy as np

        self._rng = np.random.default_rng(self.seed)

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return float(self._rng.exponential(self.mean_s, size=batch_size).sum())

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.request_energy_j


class PricingCache:
    """A bounded LRU cache of ``(model fingerprint, batch, seq_len)`` timings.

    One instance is shared by default across every
    :class:`StarServiceModel`, so the chips of a fleet — and repeated
    sweeps over the same configuration — price each distinct shape exactly
    once, while models with different configurations can never collide
    (their fingerprints differ).  Bounded so day-long sweeps over many
    shapes cannot grow memory without limit.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        require_positive(maxsize, "maxsize")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple[float, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> tuple[float, float] | None:
        """The cached timing, refreshed as most-recently used."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: tuple[float, float]) -> None:
        """Insert a timing, evicting the least-recently-used beyond the bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)


#: The default cache shared by every StarServiceModel instance.
_SHARED_PRICING_CACHE = PricingCache()


class StarServiceModel:
    """Batch pricing by a STAR accelerator's whole-model timing.

    ``accelerator`` defaults to a stock analytical-schedule
    :class:`~repro.core.accelerator.STARAccelerator` built with
    ``batch_cost`` (itself defaulting to the fully batch-aware
    :meth:`~repro.core.batch_cost.BatchCostModel.streamed` pricing — pass
    :meth:`~repro.core.batch_cost.BatchCostModel.legacy` to reproduce the
    old linear behaviour); pass a ``schedule="executed"`` instance to
    price batches with the event-driven executor instead (slower, but
    captures jitter and discrete pools).  ``bert_config`` sizes the served
    model.  Results are cached per ``(batch_size, seq_len)`` in ``cache``
    (the process-wide shared :class:`PricingCache` by default).
    """

    def __init__(
        self,
        accelerator=None,
        bert_config=None,
        batch_cost=None,
        cache: PricingCache | None = None,
        seq_len: int = 128,
    ) -> None:
        from repro.core.accelerator import STARAccelerator
        from repro.core.batch_cost import BatchCostModel
        from repro.nn.bert import BERT_BASE, BertWorkload

        if accelerator is not None and batch_cost is not None:
            raise ValueError(
                "pass either an accelerator (whose batch_cost is used) or "
                "batch_cost, not both"
            )
        if accelerator is None:
            accelerator = STARAccelerator(
                batch_cost=batch_cost or BatchCostModel.streamed()
            )
        self.accelerator = accelerator
        self.bert_config = bert_config or BERT_BASE
        # the model's home sequence length: the idle-power reference (and
        # the default length of the workloads it prices)
        self.seq_len = seq_len
        self._base_workload = BertWorkload(config=self.bert_config, seq_len=seq_len)
        self.cache = cache if cache is not None else _SHARED_PRICING_CACHE
        self._fingerprint = (
            type(self.accelerator),  # subclasses may override the timing model
            self.bert_config,
            self.accelerator.config,
            self.accelerator.schedule,
            self.accelerator.num_softmax_engines,
            self.accelerator.system_overhead,  # feeds power_w -> cached energy
            self.accelerator.batch_cost,
            self.accelerator.jitter,
        )

    @property
    def batch_cost(self):
        """The accelerator's batch-cost model (the pricing semantics)."""
        return self.accelerator.batch_cost

    @property
    def idle_power_w(self) -> float:
        """Standby power of one chip of this model (leakage over idle time).

        Referenced at the model's ``seq_len`` so the idle fraction is
        consistent with the active power the same chip is charged while
        serving that length.
        """
        return self.accelerator.resources.idle_power_w(self.seq_len)

    @property
    def reprogram_latency_s(self) -> float:
        """Full-model tile-bank rewrite: the chip-repair maintenance cost.

        A repaired chip must reprogram every layer's stationary operands
        before serving again; the cost is
        :meth:`~repro.core.batch_cost.BatchCostModel.maintenance_reprogram_latency_s`
        over the served model's weight GEMMs — charged whatever the weight
        policy, since a failed chip's conductance state is lost.
        """
        workload = self._base_workload
        per_layer = self.batch_cost.maintenance_reprogram_latency_s(
            self.accelerator.matmul_engine, workload.weight_operand_shapes_per_layer()
        )
        return workload.config.num_layers * per_layer

    @property
    def sleep_power_w(self) -> float:
        """Deep-sleep power of one chip — what a parked chip still draws.

        RRAM tile banks are non-volatile, so sleep gates the periphery
        (ADCs, drivers, digital) and keeps only retention-level leakage;
        see :class:`~repro.core.accelerator.PowerState`.  Falls back to
        idle power when the chip declares no power state (it cannot sleep
        deeper than idle).
        """
        return self.accelerator.resources.sleep_power_w(self.seq_len)

    @property
    def sleep_entry_latency_s(self) -> float:
        """Drain-and-gate time before a parked chip reaches sleep power."""
        return self.accelerator.resources.sleep_entry_latency_s

    @property
    def wake_latency_s(self) -> float:
        """Sleep-to-serving latency: peripheral wake plus array re-bias.

        The non-volatile arrays keep their conductances through sleep, so
        waking is the power state's exit latency plus one tile-VMM-scale
        re-bias settle (:meth:`~repro.core.batch_cost.BatchCostModel.wake_refresh_latency_s`)
        — *not* a maintenance reprogram, which is only needed when the
        stored state is suspect (chip repair).
        """
        resources = self.accelerator.resources
        refresh = self.batch_cost.wake_refresh_latency_s(self.accelerator.matmul_engine)
        return resources.wake_latency_s + refresh

    @property
    def wake_energy_j(self) -> float:
        """Energy of one sleep-to-serving transition."""
        resources = self.accelerator.resources
        refresh = self.batch_cost.wake_refresh_energy_j(self.accelerator.matmul_engine)
        return resources.wake_energy_j(self.seq_len) + refresh

    def _timing(self, batch_size: int, seq_len: int) -> tuple[float, float]:
        key = (self._fingerprint, batch_size, seq_len)
        cached = self.cache.get(key)
        if cached is None:
            workload = self._base_workload.with_seq_len(seq_len).with_batch(batch_size)
            timing = self.accelerator.request_timing(workload)
            cached = (timing.latency_s, timing.energy_j)
            self.cache.put(key, cached)
        return cached

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return self._timing(batch_size, seq_len)[0]

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return self._timing(batch_size, seq_len)[1]


class LinearServiceModel(WrappedCapabilities):
    """A service model priced as ``batch_size x single_request``.

    Wraps any base model and discards its batch amortisation — the
    pre-batching serving behaviour, kept as an explicit baseline so sweeps
    can show what batch-aware pricing buys at the same hardware.  Chip
    capabilities (idle/sleep power, repair and wake costs) forward to the
    wrapped model through :class:`WrappedCapabilities`.
    """

    def __init__(self, base: ServiceModel) -> None:
        self.base = base

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.base.batch_latency_s(1, seq_len)

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return batch_size * self.base.batch_energy_j(1, seq_len)


class TabulatedServiceModel:
    """A service model frozen into a plain ``(batch, seq_len) -> cost`` table.

    Built by :meth:`tabulate` from any other service model: every shape the
    batcher can dispatch is priced once, up front, into a dictionary of
    ``(batch_size, seq_len) -> (latency_s, energy_j)``.  The result is
    self-contained and cheap to pickle — no accelerator object, no cache —
    which is exactly what the sharded simulator ships to worker processes
    so no shard ever re-prices the workload.  Lookups of shapes outside
    the table raise ``KeyError`` loudly rather than silently re-pricing.
    """

    def __init__(
        self,
        table: dict[tuple[int, int], tuple[float, float]],
        idle_power_w: float = 0.0,
        reprogram_latency_s: float = 0.0,
        sleep_power_w: float | None = None,
        sleep_entry_latency_s: float = 0.0,
        wake_latency_s: float = 0.0,
        wake_energy_j: float = 0.0,
    ) -> None:
        if not table:
            raise ValueError("a tabulated service model needs at least one entry")
        self.table = dict(table)
        self.idle_power_w = float(idle_power_w)
        self.reprogram_latency_s = float(reprogram_latency_s)
        require_non_negative(self.idle_power_w, "idle_power_w")
        require_non_negative(self.reprogram_latency_s, "reprogram_latency_s")
        # None means "cannot sleep deeper than idle" — mirror idle power so
        # shipping a model through tabulation never invents a power state.
        self.sleep_power_w = (
            self.idle_power_w if sleep_power_w is None else float(sleep_power_w)
        )
        self.sleep_entry_latency_s = float(sleep_entry_latency_s)
        self.wake_latency_s = float(wake_latency_s)
        self.wake_energy_j = float(wake_energy_j)
        require_non_negative(self.sleep_power_w, "sleep_power_w")
        require_non_negative(self.sleep_entry_latency_s, "sleep_entry_latency_s")
        require_non_negative(self.wake_latency_s, "wake_latency_s")
        require_non_negative(self.wake_energy_j, "wake_energy_j")

    @classmethod
    def tabulate(
        cls,
        model: ServiceModel,
        batch_sizes: Sequence[int],
        seq_lens: Sequence[int],
    ) -> "TabulatedServiceModel":
        """Price every ``batch x seq_len`` shape of ``model`` into a table.

        ``batch_sizes`` should cover ``1 .. max_batch_size`` of the batcher
        in use and ``seq_lens`` every padded length the workload can
        produce; a dispatch outside the table fails loudly.
        """
        batch_sizes = sorted({int(b) for b in batch_sizes})
        seq_lens = sorted({int(s) for s in seq_lens})
        if not batch_sizes or not seq_lens:
            raise ValueError("batch_sizes and seq_lens must not be empty")
        for batch in batch_sizes:
            require_positive(batch, "batch size")
        for seq_len in seq_lens:
            require_positive(seq_len, "seq_len")
        table = {
            (batch, seq_len): (
                model.batch_latency_s(batch, seq_len),
                model.batch_energy_j(batch, seq_len),
            )
            for batch in batch_sizes
            for seq_len in seq_lens
        }
        return cls(
            table,
            idle_power_w=getattr(model, "idle_power_w", 0.0),
            reprogram_latency_s=getattr(model, "reprogram_latency_s", 0.0),
            sleep_power_w=getattr(model, "sleep_power_w", None),
            sleep_entry_latency_s=getattr(model, "sleep_entry_latency_s", 0.0),
            wake_latency_s=getattr(model, "wake_latency_s", 0.0),
            wake_energy_j=getattr(model, "wake_energy_j", 0.0),
        )

    def _entry(self, batch_size: int, seq_len: int) -> tuple[float, float]:
        try:
            return self.table[(batch_size, seq_len)]
        except KeyError:
            raise KeyError(
                f"shape (batch={batch_size}, seq_len={seq_len}) was not "
                f"tabulated; extend the batch_sizes/seq_lens grid"
            ) from None

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        return self._entry(batch_size, seq_len)[0]

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        return self._entry(batch_size, seq_len)[1]


class TieredServiceModel(WrappedCapabilities):
    """Sampled-dispatch routing between analytic and executed pricing.

    Wraps any ``base`` service model (a :class:`StarServiceModel`, or its
    shipped :class:`TabulatedServiceModel` form in sharded workers) and
    routes a seeded Bernoulli ``sample_fraction`` of
    :meth:`batch_latency_s` calls through the high-fidelity tier: a cached
    :class:`~repro.core.schedule_cache.ScheduleTemplate` resampled with
    per-layer lognormal jitter of width ``jitter_sigma``.  The remaining
    dispatches (and **every** energy query — energy is
    schedule-independent) delegate to ``base`` untouched, so
    ``sample_fraction = 0`` is bit-identical to the base model.

    After each latency call :attr:`last_tier` holds the tier that priced
    it (:data:`TIER_ANALYTIC` or :data:`TIER_EXECUTED`) — the simulator
    reads it into the report's per-batch ``tier`` column.  Templates come
    from ``templates`` (a prebuilt ``(batch, seq_len) -> template`` dict,
    the form :meth:`tabulated` / :meth:`ChipFleet.tabulated` produce for
    worker processes) or are cold-built on first use through
    ``template_cache`` from the base model's accelerator; a tabulated base
    with no prebuilt template fails loudly, mirroring
    :class:`TabulatedServiceModel`.

    ``seed`` accepts an int or a ``numpy.random.SeedSequence`` —
    :meth:`with_seed` re-seeds a copy, which is how the sharded simulator
    gives every shard an independent sampling stream off one spawn tree.
    """

    def __init__(
        self,
        base: ServiceModel,
        sample_fraction: float = 0.05,
        jitter_sigma: float = 0.1,
        seed=0,
        templates: dict | None = None,
        template_cache=None,
    ) -> None:
        import numpy as np

        if not 0.0 <= sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be within [0, 1], got {sample_fraction}"
            )
        require_non_negative(jitter_sigma, "jitter_sigma")
        self.base = base
        self.sample_fraction = float(sample_fraction)
        self.jitter_sigma = float(jitter_sigma)
        self.seed = seed
        self.templates = {} if templates is None else dict(templates)
        self._cache = template_cache
        self._rng = np.random.default_rng(seed)
        #: Tier of the most recent batch_latency_s call.
        self.last_tier = TIER_ANALYTIC
        #: Dispatches priced per tier (profiling counters).
        self.analytic_dispatches = 0
        self.executed_dispatches = 0
        #: Template lookups resolved locally vs cold-built/cache-fetched.
        self.template_hits = 0
        self.template_misses = 0

    # ------------------------------------------------------------------ #
    # seeding and shipping
    # ------------------------------------------------------------------ #
    def with_seed(self, seed) -> "TieredServiceModel":
        """A copy drawing its sampling stream from ``seed`` (fresh state).

        Base model and template dict are shared (they are read-only on the
        hot path); only the generator is new — the sharded simulator uses
        this to hand every shard an independent ``SeedSequence`` child.
        """
        return TieredServiceModel(
            self.base,
            sample_fraction=self.sample_fraction,
            jitter_sigma=self.jitter_sigma,
            seed=seed,
            templates=self.templates,
            template_cache=self._cache,
        )

    def reset(self) -> None:
        """Rewind the sampling stream (fresh runs replay the same tiers)."""
        import numpy as np

        self._rng = np.random.default_rng(self.seed)

    def build_templates(
        self, batch_sizes: Sequence[int], seq_lens: Sequence[int]
    ) -> "TieredServiceModel":
        """Cold-build every template of the shape grid into :attr:`templates`.

        Requires a base model carrying an accelerator (i.e. not yet
        tabulated).  Returns ``self`` for chaining.
        """
        for batch in sorted({int(b) for b in batch_sizes}):
            for seq_len in sorted({int(s) for s in seq_lens}):
                self._template(batch, seq_len)
        return self

    def tabulated(
        self, batch_sizes: Sequence[int], seq_lens: Sequence[int]
    ) -> "TieredServiceModel":
        """This model with base pricing frozen and all templates prebuilt.

        The returned copy wraps a :class:`TabulatedServiceModel` base and a
        complete template dict over the grid — plain picklable data, no
        accelerator objects — keeping the sampling seed, fraction and
        jitter width, so it prices dispatches identically to the original
        (templates and tabulated timings are exact copies of what the live
        model would compute).
        """
        self.build_templates(batch_sizes, seq_lens)
        base = self.base
        if not isinstance(base, TabulatedServiceModel):
            base = TabulatedServiceModel.tabulate(base, batch_sizes, seq_lens)
        return TieredServiceModel(
            base,
            sample_fraction=self.sample_fraction,
            jitter_sigma=self.jitter_sigma,
            seed=self.seed,
            templates=self.templates,
        )

    # ------------------------------------------------------------------ #
    # pricing
    # ------------------------------------------------------------------ #
    def _template(self, batch_size: int, seq_len: int):
        template = self.templates.get((batch_size, seq_len))
        if template is not None:
            self.template_hits += 1
            return template
        self.template_misses += 1
        accelerator = getattr(self.base, "accelerator", None)
        if accelerator is None:
            raise KeyError(
                f"no schedule template for shape (batch={batch_size}, "
                f"seq_len={seq_len}) and the base model carries no "
                f"accelerator to build one; prebuild with tabulated()/"
                f"build_templates() over a grid covering this shape"
            )
        from repro.core.schedule_cache import SHARED_TEMPLATE_CACHE
        from repro.nn.bert import BertWorkload

        cache = self._cache if self._cache is not None else SHARED_TEMPLATE_CACHE
        workload = BertWorkload(
            config=self.base.bert_config, seq_len=seq_len
        ).with_batch(batch_size)
        template = cache.get_or_build(accelerator, workload)
        self.templates[(batch_size, seq_len)] = template
        return template

    def batch_latency_s(self, batch_size: int, seq_len: int) -> float:
        if self.sample_fraction > 0.0 and (
            self.sample_fraction >= 1.0
            or self._rng.random() < self.sample_fraction
        ):
            self.last_tier = TIER_EXECUTED
            self.executed_dispatches += 1
            template = self._template(batch_size, seq_len)
            return template.resample(self._rng, self.jitter_sigma)
        self.last_tier = TIER_ANALYTIC
        self.analytic_dispatches += 1
        return self.base.batch_latency_s(batch_size, seq_len)

    def batch_energy_j(self, batch_size: int, seq_len: int) -> float:
        # energy is schedule-independent (serialized-equivalent conversion
        # rate), and this must never advance the sampling stream: the
        # simulator queries energy separately from the latency draw
        return self.base.batch_energy_j(batch_size, seq_len)


class ChipFleet:
    """``num_chips`` chips sharing one dispatch queue.

    Homogeneous fleets pass one ``service_model`` (replicated per chip);
    heterogeneous fleets pass ``service_models`` — one per chip, e.g.
    :class:`StarServiceModel` instances over different
    :class:`~repro.core.accelerator.ChipResources` tile counts.
    ``speedups`` additionally divides each chip's batch service time (and
    scales its energy down accordingly — a faster chip finishes the same
    work sooner at the same power).
    """

    def __init__(
        self,
        service_model: ServiceModel | None = None,
        num_chips: int = 1,
        speedups: Sequence[float] | None = None,
        service_models: Sequence[ServiceModel] | None = None,
    ) -> None:
        if (service_model is None) == (service_models is None):
            raise ValueError("pass exactly one of service_model or service_models")
        if service_models is not None:
            self.models: tuple[ServiceModel, ...] = tuple(service_models)
            if not self.models:
                raise ValueError("service_models must not be empty")
            if num_chips not in (1, len(self.models)):
                raise ValueError(
                    f"got {len(self.models)} service_models for {num_chips} chips"
                )
            num_chips = len(self.models)
        else:
            require_positive(num_chips, "num_chips")
            self.models = (service_model,) * num_chips
        self.num_chips = num_chips
        if speedups is None:
            speedups = (1.0,) * num_chips
        self.speedups = tuple(float(s) for s in speedups)
        if len(self.speedups) != num_chips:
            raise ValueError(
                f"got {len(self.speedups)} speedups for {num_chips} chips"
            )
        for speed in self.speedups:
            require_positive(speed, "chip speedup")

    @property
    def service_model(self) -> ServiceModel:
        """The first chip's service model (the whole fleet's when homogeneous)."""
        return self.models[0]

    def batch_latency_s(self, chip: int, batch_size: int, seq_len: int) -> float:
        """Service time of the batch on one specific chip."""
        return self.models[chip].batch_latency_s(batch_size, seq_len) / self.speedups[chip]

    def batch_energy_j(self, chip: int, batch_size: int, seq_len: int) -> float:
        """Energy of the batch on one specific chip."""
        return self.models[chip].batch_energy_j(batch_size, seq_len) / self.speedups[chip]

    def batch_tier(self, chip: int) -> int:
        """Fidelity tier of the chip's most recent batch pricing.

        Read by the simulator immediately after :meth:`batch_latency_s`;
        :data:`TIER_ANALYTIC` for models without tiering, so the report's
        tier column stays all-zero (and silent) on untiered fleets.
        """
        return getattr(self.models[chip], "last_tier", TIER_ANALYTIC)

    def idle_power_w(self, chip: int) -> float:
        """Standby power of one chip (0 for models that do not declare one)."""
        return getattr(self.models[chip], "idle_power_w", 0.0)

    def reprogram_latency_s(self, chip: int) -> float:
        """Full tile-bank rewrite time of one chip — its repair cost.

        Scaled by the chip's speed factor like any other work it performs;
        0 for service models that do not declare a reprogramming cost.
        """
        return (
            getattr(self.models[chip], "reprogram_latency_s", 0.0) / self.speedups[chip]
        )

    def sleep_power_w(self, chip: int) -> float:
        """Deep-sleep power of one parked chip.

        Falls back to the chip's idle power for service models that do not
        declare a power state — a chip that cannot sleep saves nothing by
        being parked, which keeps autoscaling energy accounting honest.
        """
        power = getattr(self.models[chip], "sleep_power_w", None)
        return self.idle_power_w(chip) if power is None else power

    def sleep_entry_latency_s(self, chip: int) -> float:
        """Drain-and-gate time before a parked chip reaches sleep power."""
        return getattr(self.models[chip], "sleep_entry_latency_s", 0.0)

    def wake_latency_s(self, chip: int) -> float:
        """Sleep-to-serving latency of one chip.

        Deliberately *not* divided by the chip's speedup: waking is analog
        supply ramp and re-bias settle, not compute, so a faster chip does
        not wake faster.
        """
        return getattr(self.models[chip], "wake_latency_s", 0.0)

    def wake_energy_j(self, chip: int) -> float:
        """Energy of one sleep-to-serving transition of one chip."""
        return getattr(self.models[chip], "wake_energy_j", 0.0)

    def tabulated(
        self, batch_sizes: Sequence[int], seq_lens: Sequence[int]
    ) -> "ChipFleet":
        """This fleet with every chip's pricing frozen into plain tables.

        Pre-warms the workload's whole shape grid once in the calling
        process and returns a fleet of :class:`TabulatedServiceModel`
        chips — compactly picklable, so the sharded simulator can compute
        timings in the parent and ship them to every worker.  Chips
        sharing one model object share one table (a homogeneous fleet
        prices the grid exactly once); speedups are preserved (the fleet
        applies them outside the model).
        """
        tables: dict[int, ServiceModel] = {}
        models: list[ServiceModel] = []
        for model in self.models:
            if isinstance(model, TabulatedServiceModel):
                models.append(model)
                continue
            cached = tables.get(id(model))
            if cached is None:
                if isinstance(model, TieredServiceModel):
                    # tiered models must NOT go through tabulate() — that
                    # would advance (and freeze) the sampling stream; the
                    # tiered wrapper tabulates its base and prebuilds the
                    # template grid instead
                    cached = model.tabulated(batch_sizes, seq_lens)
                else:
                    cached = TabulatedServiceModel.tabulate(
                        model, batch_sizes, seq_lens
                    )
                tables[id(model)] = cached
            models.append(cached)
        return ChipFleet(service_models=tuple(models), speedups=self.speedups)
