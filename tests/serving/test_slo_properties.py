"""SLO control-plane invariants: property tests over random scenarios.

The suite drives the EDF/FIFO control plane with randomly generated
tagged traffic and asserts what any correct deadline scheduler obeys:
per-class request conservation and Little's law, EDD optimality in the
single-chip batch-1 regime (where Jackson's rule makes EDF provably
best for maximum lateness), bounded priority inversion (a dispatched
request never overtakes a more urgent one that was already queued), and
wake causality (no batch runs on a chip while it is parked or still
ramping).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    Autoscaler,
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    NO_BATCHING,
    PoissonArrivals,
    ServingSimulator,
    SLOClass,
    SLOPolicy,
)

scenarios = st.fixed_dictionaries(
    {
        "num_requests": st.integers(min_value=1, max_value=120),
        "rate_rps": st.floats(min_value=10.0, max_value=5000.0),
        "service_s": st.floats(min_value=1e-5, max_value=5e-3),
        "num_chips": st.integers(min_value=1, max_value=5),
        "max_batch": st.integers(min_value=1, max_value=8),
        "max_wait_s": st.sampled_from([0.0, 1e-4, 2e-3]),
        "tight_deadline_s": st.floats(min_value=1e-3, max_value=0.05),
        "interactive_share": st.floats(min_value=0.1, max_value=0.9),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def tagged_requests(params):
    policy = SLOPolicy(
        (
            SLOClass("interactive", deadline_s=params["tight_deadline_s"]),
            SLOClass("batch", deadline_s=10.0 * params["tight_deadline_s"]),
        )
    )
    requests = PoissonArrivals(
        params["rate_rps"], seq_len=128, seed=params["seed"]
    ).generate(params["num_requests"])
    share = params["interactive_share"]
    return policy.tag_random(requests, weights=(share, 1.0 - share), seed=7)


def simulate_edf(params):
    requests = tagged_requests(params)
    fleet = ChipFleet(
        FixedServiceModel(params["service_s"], request_energy_j=1e-6),
        num_chips=params["num_chips"],
    )
    batcher = DynamicBatcher.edf(
        max_batch_size=params["max_batch"], max_wait_s=params["max_wait_s"]
    )
    return requests, ServingSimulator(fleet, batcher).run(requests)


class TestSLOProperties:
    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_per_class_conservation(self, params):
        """Every class's requests enter once and complete once, tags intact."""
        requests, report = simulate_edf(params)
        assert report.num_requests == len(requests)
        sent = {r.index: r for r in requests}
        for record in report.requests:
            assert record.slo_class == sent[record.index].slo_class
            assert record.deadline_s == sent[record.index].deadline_s
        for slo_class in report.slo_classes:
            expected = sum(1 for r in requests if r.slo_class == slo_class)
            assert report.num_in_class(int(slo_class)) == expected

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_per_class_littles_law(self, params):
        """L = lambda * W holds per class over the observation window."""
        requests, report = simulate_edf(params)
        if len(requests) < 30:
            return  # too short for a steady-state argument
        span = report.makespan_s
        for slo_class in report.slo_classes:
            slo_class = int(slo_class)
            mask = report.requests.slo_class == slo_class
            count = int(mask.sum())
            if count < 10:
                continue
            residence = (
                report.requests.completion_s[mask]
                - report.requests.arrival_s[mask]
            ).sum()
            time_average = residence / span
            implied = (count / span) * (residence / count)
            assert time_average == pytest.approx(implied, rel=1e-9)

    @given(scenarios)
    @settings(max_examples=60, deadline=None)
    def test_no_priority_inversion_beyond_batch_boundaries(self, params):
        """If b dispatched strictly before a while a was queued, b was at
        least as urgent (EDF key order) — starvation is bounded by the
        batch the scheduler was already committed to."""
        _, report = simulate_edf(params)
        records = sorted(report.requests, key=lambda r: r.dispatch_s)
        for a in records:
            key_a = (a.arrival_s + a.deadline_s, a.index)
            for b in records:
                if b.dispatch_s >= a.dispatch_s:
                    break
                if b.arrival_s <= a.arrival_s and b.dispatch_s > a.arrival_s:
                    key_b = (b.arrival_s + b.deadline_s, b.index)
                    assert key_b <= key_a

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_edf_minimizes_max_lateness_single_chip(self, count, seed):
        """Jackson's rule: single chip, batch 1, simultaneous release —
        EDF's maximum lateness is minimal, so FIFO can never beat it."""
        rng = np.random.default_rng(seed)
        deadlines = rng.uniform(1e-3, 0.05, size=count)
        service = 2e-3
        policy = SLOPolicy(
            tuple(SLOClass(f"c{i}", deadline_s=float(d)) for i, d in enumerate(deadlines))
        )
        # all requests arrive (essentially) together: a tiny stagger keeps
        # arrival order deterministic without giving FIFO extra information
        base = PoissonArrivals(1e6, seq_len=128, seed=seed).generate(count)
        tagged = [policy.tag(r, i) for i, r in enumerate(base)]
        model = FixedServiceModel(service)

        def max_lateness(batcher):
            report = ServingSimulator(
                ChipFleet(model, num_chips=1), batcher
            ).run(tagged)
            lateness = (
                report.requests.completion_s
                - report.requests.arrival_s
                - report.requests.deadline_s
            )
            return float(lateness.max())

        edf = max_lateness(DynamicBatcher.edf(max_batch_size=1, max_wait_s=0.0))
        fifo = max_lateness(DynamicBatcher(max_batch_size=1, max_wait_s=0.0))
        assert edf <= fifo + 1e-12

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_wake_causality(self, initial_chips, seed):
        """No batch dispatches on a chip between park decision and wake
        ready: parked chips are out of the pool until the ramp finishes."""
        requests = PoissonArrivals(2500.0, seq_len=128, seed=seed).generate(2000)
        model = FixedServiceModel(
            1e-3, sleep_entry_latency_s=1e-3, wake_latency_s=5e-3
        )
        scaler = Autoscaler(
            interval_s=0.02, scale_up_queue_depth=32, initial_chips=initial_chips
        )
        report = ServingSimulator(
            ChipFleet(model, num_chips=6),
            DynamicBatcher(max_batch_size=4, max_wait_s=1e-3),
            autoscaler=scaler,
        ).run(requests)
        # reconstruct each chip's offline windows: park decision -> wake
        # ready; chips beyond initial_chips start parked at time zero
        offline_since: dict[int, float] = {
            chip: 0.0 for chip in range(initial_chips, 6)
        }
        windows: list[tuple[int, float, float]] = []
        for event in report.scale_events:
            if event.action == "sleep":
                offline_since[event.chip] = event.time_s
            else:
                windows.append(
                    (event.chip, offline_since.pop(event.chip), event.ready_s)
                )
        closing = report.batches.completion_s.max() if len(report.batches) else 0.0
        windows.extend(
            (chip, start, closing + 1.0) for chip, start in offline_since.items()
        )
        for batch in report.batches:
            for chip, start, ready in windows:
                if batch.chip == chip:
                    assert not (start <= batch.dispatch_s < ready)

    @given(scenarios)
    @settings(max_examples=40, deadline=None)
    def test_fifo_and_edf_agree_on_untagged_traffic(self, params):
        """With one class everyone shares a relative deadline, so the EDF
        key is arrival order: both policies produce identical schedules."""
        requests = PoissonArrivals(
            params["rate_rps"], seq_len=128, seed=params["seed"]
        ).generate(params["num_requests"])
        fleet_args = dict(num_chips=params["num_chips"])
        model = FixedServiceModel(params["service_s"])
        fifo_report = ServingSimulator(
            ChipFleet(model, **fleet_args),
            DynamicBatcher(
                max_batch_size=params["max_batch"], max_wait_s=params["max_wait_s"]
            ),
        ).run(requests)
        edf_report = ServingSimulator(
            ChipFleet(model, **fleet_args),
            DynamicBatcher.edf(
                max_batch_size=params["max_batch"], max_wait_s=params["max_wait_s"]
            ),
        ).run(requests)
        np.testing.assert_array_equal(
            fifo_report.requests.index, edf_report.requests.index
        )
        np.testing.assert_allclose(
            fifo_report.requests.dispatch_s, edf_report.requests.dispatch_s
        )
        np.testing.assert_allclose(
            fifo_report.requests.completion_s, edf_report.requests.completion_s
        )
