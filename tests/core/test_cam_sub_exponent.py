"""Tests for the CAM/SUB crossbar and the exponential unit (Figs. 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cam_sub import CamSubCrossbar
from repro.core.config import SoftmaxEngineConfig
from repro.core.counter import CounterBank
from repro.core.divider import DividerUnit
from repro.core.exponent import ExponentialUnit
from repro.rram.lut import exponential_lut_entries
from repro.rram.noise import NoiseConfig
from repro.utils.fixed_point import CNEWS_FORMAT, COLA_FORMAT, MRPC_FORMAT, FixedPointFormat


class TestCamSub:
    def test_finds_maximum_of_quantised_scores(self, rng):
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        scores = rng.uniform(-30, 30, size=32)
        result = cam_sub.process(scores)
        expected_max = cam_sub.quantize_scores(scores).max()
        assert result.max_value == pytest.approx(expected_max)

    def test_differences_are_non_negative_and_exact(self, rng):
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        scores = rng.uniform(-30, 30, size=64)
        result = cam_sub.process(scores)
        quantised = cam_sub.quantize_scores(scores)
        np.testing.assert_allclose(result.differences, quantised.max() - quantised, atol=1e-12)
        assert np.all(result.differences >= 0)

    def test_difference_codes_match_differences(self, rng):
        fmt = MRPC_FORMAT
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=fmt))
        result = cam_sub.process(rng.uniform(-30, 30, size=16))
        np.testing.assert_allclose(result.difference_codes * fmt.resolution, result.differences)

    def test_fig1_toy_example_max_at_expected_row(self):
        # four inputs, the max must be found regardless of position
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=FixedPointFormat(3, 1)))
        scores = np.array([1.5, 3.0, -2.0, 0.5])
        result = cam_sub.process(scores)
        assert result.max_value == pytest.approx(3.0)
        np.testing.assert_allclose(result.differences, [1.5, 0.0, 5.0, 2.5])

    def test_negative_scores_only(self):
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        result = cam_sub.process(np.array([-5.0, -10.0, -1.25]))
        assert result.max_value == pytest.approx(-1.25)

    def test_clipping_beyond_format_range(self):
        fmt = COLA_FORMAT  # offset-binary signed range [-16, +15.75]
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=fmt))
        result = cam_sub.process(np.array([100.0, 0.0]))
        assert result.max_value == pytest.approx(fmt.signed_max_value)

    def test_max_row_is_first_merged_hit(self):
        cam_sub = CamSubCrossbar(SoftmaxEngineConfig(fmt=FixedPointFormat(3, 1)))
        result = cam_sub.process(np.array([0.0, 2.0]))
        # stored descending: row index of larger value is smaller
        other = cam_sub.process(np.array([0.0, 5.0]))
        assert other.max_row < result.max_row

    def test_empty_input_rejected(self):
        cam_sub = CamSubCrossbar()
        with pytest.raises(ValueError):
            cam_sub.process(np.array([]))

    def test_costs_scale_with_sequence_length(self):
        cam_sub = CamSubCrossbar()
        assert cam_sub.row_latency_s(256) > cam_sub.row_latency_s(128)
        assert cam_sub.row_energy_j(256) > cam_sub.row_energy_j(128)
        assert cam_sub.area_um2() > 0
        assert cam_sub.power_w() > 0
        with pytest.raises(ValueError):
            cam_sub.row_latency_s(0)


class TestExponentialUnit:
    def test_exponentials_match_lut_rule(self):
        config = SoftmaxEngineConfig(fmt=CNEWS_FORMAT)
        unit = ExponentialUnit(config)
        codes = np.array([0, 1, 4, 8])
        result = unit.process(codes)
        expected = exponential_lut_entries(-codes * CNEWS_FORMAT.resolution, config.lut_frac_bits)
        np.testing.assert_allclose(result.exponentials, expected)

    def test_out_of_range_codes_give_zero(self):
        config = SoftmaxEngineConfig(fmt=MRPC_FORMAT, exp_rows=256)
        unit = ExponentialUnit(config)
        result = unit.process(np.array([0, 300, 400]))
        assert result.exponentials[0] == pytest.approx(1.0)
        assert result.exponentials[1] == 0.0
        assert result.misses == 2

    def test_denominator_equals_sum_of_exponentials(self, rng):
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        codes = rng.integers(0, 40, size=64)
        result = unit.process(codes)
        assert result.denominator == pytest.approx(result.exponentials.sum())

    def test_histogram_counts_match_occurrences(self):
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        codes = np.array([0, 0, 1, 3, 3, 3])
        result = unit.process(codes)
        assert result.histogram[0] == 2
        assert result.histogram[1] == 1
        assert result.histogram[3] == 3

    def test_lut_zero_levels_do_not_need_counters(self):
        unit = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        # e^{-d} rounds to zero well before 256 levels at m = 4
        assert unit.counters.num_counters < 64
        # a code in the zero region contributes nothing to the denominator
        result = unit.process(np.array([0, 100]))
        assert result.denominator == pytest.approx(1.0)

    def test_noise_perturbs_outputs(self, rng):
        codes = rng.integers(0, 14, size=32)
        ideal = ExponentialUnit(SoftmaxEngineConfig(fmt=CNEWS_FORMAT)).process(codes)
        noisy_cfg = SoftmaxEngineConfig(
            fmt=CNEWS_FORMAT, noise=NoiseConfig(read_noise_sigma=0.05, seed=1)
        )
        noisy = ExponentialUnit(noisy_cfg).process(codes)
        assert not np.allclose(ideal.exponentials, noisy.exponentials)

    def test_invalid_codes(self):
        unit = ExponentialUnit()
        with pytest.raises(ValueError):
            unit.process(np.array([-1]))
        with pytest.raises(ValueError):
            unit.process(np.array([], dtype=np.int64))

    def test_costs(self):
        unit = ExponentialUnit()
        assert unit.area_um2() > 0
        assert unit.row_energy_j(128) > unit.row_energy_j(64)
        assert unit.row_latency_s(128) > unit.row_latency_s(64)
        assert unit.summation_latency_s() > 0
        assert unit.power_w() > 0


class TestCounterBank:
    def test_increment_and_reset(self):
        bank = CounterBank(num_counters=8, bits=4)
        bank.increment(3)
        bank.increment(3)
        assert bank.values[3] == 2
        bank.reset()
        assert bank.values.sum() == 0

    def test_saturation(self):
        bank = CounterBank(num_counters=2, bits=2)
        for _ in range(10):
            bank.increment(0)
        assert bank.values[0] == bank.max_count == 3

    def test_accumulate_histogram_skips_misses(self):
        bank = CounterBank(num_counters=4, bits=8)
        histogram = bank.accumulate_histogram(np.array([0, 1, 1, -1, 3]))
        assert histogram.tolist() == [1, 2, 0, 1]

    def test_invalid_indices(self):
        bank = CounterBank(num_counters=4, bits=8)
        with pytest.raises(ValueError):
            bank.increment(4)
        with pytest.raises(ValueError):
            bank.accumulate_histogram(np.array([5]))

    def test_costs(self):
        small = CounterBank(4, 8)
        large = CounterBank(64, 8)
        assert large.area_um2() > small.area_um2()
        assert small.increment_energy_j() > 0
        assert large.power_w() > small.power_w()


class TestDividerUnit:
    def test_divide_matches_numpy(self, rng):
        divider = DividerUnit(bits=16)
        numerators = rng.uniform(0, 1, size=16)
        np.testing.assert_allclose(divider.divide(numerators, 4.0), numerators / 4.0)

    def test_zero_denominator_gives_uniform(self):
        divider = DividerUnit()
        out = divider.divide(np.array([1.0, 2.0, 3.0, 4.0]), 0.0)
        np.testing.assert_allclose(out, 0.25)

    def test_quotient_truncation(self):
        divider = DividerUnit(quotient_frac_bits=2)
        out = divider.divide(np.array([1.0]), 3.0)
        assert out[0] == pytest.approx(0.25)  # floor(0.333 * 4) / 4

    def test_costs_and_counters(self):
        divider = DividerUnit(bits=16)
        divider.divide(np.ones(8), 2.0)
        assert divider.divide_count == 8
        assert divider.divide_latency_s() == pytest.approx(16e-9)
        assert divider.area_um2() > 0
        assert divider.divide_energy_j() > 0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            DividerUnit(bits=2)
        with pytest.raises(ValueError):
            DividerUnit(quotient_frac_bits=-1)
