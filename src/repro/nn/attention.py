"""Multi-head self-attention with pluggable softmax and compute backend.

Two pieces are interchangeable:

* the **softmax callable** — the accuracy experiments swap
  :class:`~repro.nn.softmax_models.ReferenceSoftmax` for
  :class:`~repro.nn.softmax_models.FixedPointSoftmax` (STAR's datapath) or
  :class:`~repro.nn.softmax_models.Base2Softmax` (Softermax) without
  touching the rest of the encoder, and the cycle-accurate
  :class:`~repro.core.softmax_engine.RRAMSoftmaxEngine` plugs in the same
  way: its ``__call__`` flattens the whole ``(batch, heads, seq, seq)``
  score tensor into one block for the vectorized batch backend;
* the **compute backend** — every GEMM of the block (the four projections
  plus the dynamic ``QK^T`` score and ``A V`` context products) runs on a
  :class:`~repro.nn.backend.ComputeBackend`.  With
  :class:`~repro.nn.backend.AnalogBackend` the attention scores are
  produced by crossbar GEMM tiles and can feed the RRAM softmax engine —
  the paper's full analog attention datapath.

The attention-score hooks expose the raw ``QK^T/sqrt(d)`` scores that the
bit-width analysis of Section II consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.nn.backend import IDEAL_BACKEND, ComputeBackend
from repro.nn.functional import softmax as exact_softmax
from repro.nn.layers import Linear

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.scheduler import AttentionExecutor, ExecutedSchedule

__all__ = ["MultiHeadAttention"]

SoftmaxFn = Callable[[np.ndarray], np.ndarray]


class MultiHeadAttention:
    """Standard BERT multi-head self-attention block (forward only)."""

    def __init__(
        self,
        hidden: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
        softmax_fn: SoftmaxFn | None = None,
        backend: ComputeBackend | None = None,
        executor: "AttentionExecutor | None" = None,
    ) -> None:
        if hidden < 1 or num_heads < 1:
            raise ValueError(
                f"hidden and num_heads must be positive, got {hidden}, {num_heads}"
            )
        if hidden % num_heads != 0:
            raise ValueError(
                f"hidden size {hidden} must be divisible by num_heads {num_heads}"
            )
        generator = rng if rng is not None else np.random.default_rng(0)
        self.hidden = hidden
        self.num_heads = num_heads
        self.head_dim = hidden // num_heads
        self.softmax_fn: SoftmaxFn = softmax_fn if softmax_fn is not None else exact_softmax
        self.backend: ComputeBackend = backend if backend is not None else IDEAL_BACKEND
        self.executor = executor
        self.last_schedule: "ExecutedSchedule | None" = None
        self.query_proj = Linear(hidden, hidden, rng=generator, backend=backend)
        self.key_proj = Linear(hidden, hidden, rng=generator, backend=backend)
        self.value_proj = Linear(hidden, hidden, rng=generator, backend=backend)
        self.output_proj = Linear(hidden, hidden, rng=generator, backend=backend)
        self.last_scores: np.ndarray | None = None
        self.last_weights: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        batch, seq_len, _ = x.shape
        x = x.reshape(batch, seq_len, self.num_heads, self.head_dim)
        return np.transpose(x, (0, 2, 1, 3))  # (batch, heads, seq, head_dim)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        batch, _, seq_len, _ = x.shape
        x = np.transpose(x, (0, 2, 1, 3))
        return x.reshape(batch, seq_len, self.hidden)

    def __call__(self, x: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """Forward pass; ``x`` is ``(batch, seq_len, hidden)``.

        The raw scores and the post-softmax weights of the call are kept on
        ``last_scores`` / ``last_weights`` for the analysis code.  The
        softmax callable receives the full 4-D score tensor, so engine-backed
        softmax implementations process all ``batch * heads * seq`` rows in
        one vectorized batch.  Both dynamic GEMMs (``QK^T`` and
        ``weights @ V``) run on the configured compute backend.

        With an ``executor`` attached, the whole
        ``score GEMM -> softmax -> context GEMM`` chain instead streams
        row by row through the event-driven schedule of
        :class:`~repro.core.scheduler.AttentionExecutor` (its MatMul engine
        and softmax-engine pool replace the backend/softmax callable for
        these three stages), and the measured
        :class:`~repro.core.scheduler.ExecutedSchedule` of the forward is
        kept on ``last_schedule``.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3 or x.shape[-1] != self.hidden:
            raise ValueError(
                f"input must be (batch, seq, {self.hidden}), got shape {x.shape}"
            )
        query = self._split_heads(self.query_proj(x))
        key = self._split_heads(self.key_proj(x))
        value = self._split_heads(self.value_proj(x))

        if self.executor is not None:
            executed = self.executor.run(
                query, key, value, scale=1.0 / np.sqrt(self.head_dim), mask=mask
            )
            self.last_scores = executed.scores
            self.last_weights = executed.weights
            self.last_schedule = executed.schedule
            return self.output_proj(self._merge_heads(executed.context))

        scores = self.backend.matmul(query, np.swapaxes(key, -1, -2)) / np.sqrt(self.head_dim)
        if mask is not None:
            scores = scores + np.asarray(mask, dtype=np.float64)
        self.last_scores = scores
        weights = self.softmax_fn(scores)
        self.last_weights = weights

        context = self.backend.matmul(weights, value)
        return self.output_proj(self._merge_heads(context))

    # ------------------------------------------------------------------ #
    # operation counting
    # ------------------------------------------------------------------ #
    def projection_flops(self, seq_len: int) -> int:
        """FLOPs of the four hidden x hidden projections for one sequence."""
        per_projection = 2 * seq_len * self.hidden * self.hidden
        return 4 * per_projection

    def score_flops(self, seq_len: int) -> int:
        """FLOPs of ``QK^T`` and ``weights @ V`` for one sequence."""
        qkt = 2 * self.num_heads * seq_len * seq_len * self.head_dim
        wv = 2 * self.num_heads * seq_len * seq_len * self.head_dim
        return qkt + wv

    def softmax_elements(self, seq_len: int) -> int:
        """Number of attention-score elements passed through softmax."""
        return self.num_heads * seq_len * seq_len

    def softmax_flops(self, seq_len: int) -> int:
        """Softmax FLOPs: max, subtract, exp, sum and divide per element (~5 ops)."""
        return 5 * self.softmax_elements(seq_len)
