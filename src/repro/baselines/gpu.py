"""GPU (NVIDIA Titan RTX) performance model for BERT-base attention inference.

The paper's two GPU-related claims are:

* the introduction's observation that the softmax share of BERT-base
  execution time grows with sequence length and exceeds the matrix
  multiplications at length 512 (59.20 % of total execution time);
* Fig. 3's computing-efficiency comparison, where the Titan RTX achieves
  roughly 1/30th of STAR's GOPs/s/W.

Neither is reproducible by measurement offline, so this module provides a
calibrated analytical model of batch-1 eager-mode transformer inference on a
Titan RTX:

* GEMMs run on tensor cores at an effective throughput well below peak
  (small batch-1 matrices cannot fill the machine), plus a fixed host/launch
  overhead per kernel — the known bottleneck of un-fused batch-1 inference;
* softmax runs as an un-fused sequence of FP32 elementwise/reduction kernels
  whose cost is memory-bandwidth-bound, again plus per-kernel overhead.

With the default calibration the model reproduces the paper's shape: the
softmax share crosses 50 % between sequence lengths 384 and 512 and the
whole-model efficiency lands in the tens of GOPs/s/W.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.report import CostReport
from repro.nn.bert import BertWorkload
from repro.utils.validation import require_positive

__all__ = ["GPUConfig", "TITAN_RTX", "GPUModel", "GPULatencyBreakdown"]


@dataclass(frozen=True)
class GPUConfig:
    """Calibration constants of the GPU inference model.

    Attributes
    ----------
    name:
        Device label.
    tensor_core_tflops:
        Peak FP16 tensor-core throughput.
    matmul_utilization:
        Fraction of peak achieved by batch-1 GEMMs (occupancy-limited).
    memory_bandwidth_gbs:
        Peak DRAM bandwidth.
    bandwidth_utilization:
        Fraction of peak bandwidth achieved by elementwise kernels.
    softmax_bytes_per_element:
        DRAM traffic per attention-score element across the un-fused
        max / subtract-exp / sum / divide passes (FP32 reads + writes).
    kernel_overhead_s:
        Host launch + scheduling gap per kernel in eager-mode inference.
    matmul_kernels_per_layer:
        GEMM kernel launches per encoder layer (4 projections, 2 batched
        attention GEMMs, 2 FFN GEMMs).
    softmax_kernels_per_layer:
        Kernel launches of the un-fused softmax per layer.
    board_power_w:
        Board power while busy (TDP).
    """

    name: str = "Titan RTX"
    tensor_core_tflops: float = 130.0
    matmul_utilization: float = 0.42
    memory_bandwidth_gbs: float = 672.0
    bandwidth_utilization: float = 0.75
    softmax_bytes_per_element: float = 52.0
    kernel_overhead_s: float = 22.0e-6
    matmul_kernels_per_layer: int = 8
    softmax_kernels_per_layer: int = 4
    board_power_w: float = 280.0

    def __post_init__(self) -> None:
        require_positive(self.tensor_core_tflops, "tensor_core_tflops")
        require_positive(self.matmul_utilization, "matmul_utilization")
        require_positive(self.memory_bandwidth_gbs, "memory_bandwidth_gbs")
        require_positive(self.bandwidth_utilization, "bandwidth_utilization")
        require_positive(self.softmax_bytes_per_element, "softmax_bytes_per_element")
        require_positive(self.kernel_overhead_s, "kernel_overhead_s")
        require_positive(self.board_power_w, "board_power_w")
        if self.matmul_kernels_per_layer < 1 or self.softmax_kernels_per_layer < 1:
            raise ValueError("kernel counts per layer must be >= 1")

    @property
    def effective_matmul_ops_per_s(self) -> float:
        """Achieved GEMM throughput in ops/s."""
        return self.tensor_core_tflops * 1e12 * self.matmul_utilization

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Achieved DRAM bandwidth in bytes/s."""
        return self.memory_bandwidth_gbs * 1e9 * self.bandwidth_utilization


TITAN_RTX = GPUConfig()


@dataclass(frozen=True)
class GPULatencyBreakdown:
    """Per-component latency of one BERT-base inference on the GPU."""

    seq_len: int
    matmul_s: float
    softmax_s: float

    @property
    def total_s(self) -> float:
        """Total execution time."""
        return self.matmul_s + self.softmax_s

    @property
    def softmax_share(self) -> float:
        """Fraction of execution time spent in softmax (the paper's 59.20 %)."""
        return self.softmax_s / self.total_s


class GPUModel:
    """Analytical latency / efficiency model of BERT-base inference on a GPU."""

    def __init__(self, config: GPUConfig = TITAN_RTX) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # latency components
    # ------------------------------------------------------------------ #
    def matmul_latency_s(self, workload: BertWorkload) -> float:
        """Time spent in GEMM kernels (compute + launch overhead)."""
        cfg = self.config
        compute = workload.matmul_ops() / cfg.effective_matmul_ops_per_s
        launches = workload.config.num_layers * cfg.matmul_kernels_per_layer
        return compute + launches * cfg.kernel_overhead_s

    def softmax_latency_s(self, workload: BertWorkload) -> float:
        """Time spent in the un-fused softmax kernels."""
        cfg = self.config
        traffic_bytes = workload.softmax_elements() * cfg.softmax_bytes_per_element
        transfer = traffic_bytes / cfg.effective_bandwidth_bytes_per_s
        launches = workload.config.num_layers * cfg.softmax_kernels_per_layer
        return transfer + launches * cfg.kernel_overhead_s

    def latency_breakdown(self, workload: BertWorkload) -> GPULatencyBreakdown:
        """Matmul vs softmax latency split for one inference."""
        return GPULatencyBreakdown(
            seq_len=workload.seq_len,
            matmul_s=self.matmul_latency_s(workload),
            softmax_s=self.softmax_latency_s(workload),
        )

    def total_latency_s(self, workload: BertWorkload) -> float:
        """End-to-end inference latency."""
        breakdown = self.latency_breakdown(workload)
        return breakdown.total_s

    # ------------------------------------------------------------------ #
    # Fig. 3 cost report
    # ------------------------------------------------------------------ #
    def cost_report(self, workload: BertWorkload, die_area_mm2: float = 754.0) -> CostReport:
        """Computing-efficiency report for Fig. 3 (GOPs/s/W at board power)."""
        latency = self.total_latency_s(workload)
        return CostReport(
            name=self.config.name,
            area_mm2=die_area_mm2,
            power_w=self.config.board_power_w,
            latency_s=latency,
            operations=float(workload.total_ops()),
        )
