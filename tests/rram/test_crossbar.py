"""Tests for the analog VMM crossbar (repro.rram.crossbar)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rram.crossbar import AnalogCrossbar, CrossbarAccessStats, CrossbarConfig
from repro.rram.noise import NoiseConfig


def make_crossbar(
    rows=16, cols=8, adc_bits=10, input_bits=8, differential=False, noise=None, bits_per_cell=2
):
    from repro.rram.device import RRAMDeviceConfig

    config = CrossbarConfig(
        rows=rows,
        cols=cols,
        adc_bits=adc_bits,
        input_bits=input_bits,
        differential=differential,
        noise=noise or NoiseConfig(),
        device=RRAMDeviceConfig(bits_per_cell=bits_per_cell),
    )
    return AnalogCrossbar(config)


class TestCrossbarConfig:
    def test_paper_tile_dimensions(self):
        config = CrossbarConfig(rows=128, cols=128, adc_bits=5)
        assert config.num_cells == 128 * 128
        assert config.input_cycles == 8  # 8-bit inputs through a 1-bit DAC

    def test_differential_doubles_columns(self):
        config = CrossbarConfig(rows=4, cols=4, differential=True)
        assert config.physical_cols == 8

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0)
        with pytest.raises(ValueError):
            CrossbarConfig(dac_bits=0)
        with pytest.raises(ValueError):
            CrossbarConfig(adc_share=0)


class TestProgramming:
    def test_requires_programming_before_matvec(self):
        crossbar = make_crossbar()
        with pytest.raises(RuntimeError):
            crossbar.matvec(np.ones(16))

    def test_rejects_wrong_shape(self):
        crossbar = make_crossbar(rows=4, cols=4)
        with pytest.raises(ValueError):
            crossbar.program(np.ones((4, 5)))

    def test_rejects_negative_weights_without_differential(self):
        crossbar = make_crossbar(rows=4, cols=4, differential=False)
        with pytest.raises(ValueError):
            crossbar.program(np.full((4, 4), -1.0))

    def test_differential_accepts_signed_weights(self, rng):
        crossbar = make_crossbar(rows=8, cols=4, differential=True)
        crossbar.program(rng.normal(size=(8, 4)))
        assert crossbar.is_programmed

    def test_weights_property_returns_copy(self, rng):
        crossbar = make_crossbar(rows=4, cols=4)
        weights = np.abs(rng.normal(size=(4, 4)))
        crossbar.program(weights)
        returned = crossbar.weights
        returned[0, 0] = 999.0
        assert crossbar.weights[0, 0] != 999.0


class TestMatvecAccuracy:
    def test_unsigned_matvec_tracks_ideal(self, rng):
        # 5 bits/cell keeps conductance-quantisation error small enough to
        # check the analog signal path itself
        crossbar = make_crossbar(rows=32, cols=16, adc_bits=12, bits_per_cell=5)
        weights = rng.uniform(0.1, 1.0, size=(32, 16))
        crossbar.program(weights)
        inputs = rng.uniform(0.0, 1.0, size=32)
        analog = crossbar.matvec(inputs)
        ideal = crossbar.ideal_matvec(inputs)
        relative = np.abs(analog - ideal) / np.max(np.abs(ideal))
        assert np.max(relative) < 0.05

    def test_differential_matvec_tracks_ideal(self, rng):
        crossbar = make_crossbar(
            rows=32, cols=16, adc_bits=12, differential=True, bits_per_cell=5
        )
        weights = rng.normal(0.0, 1.0, size=(32, 16))
        crossbar.program(weights)
        inputs = rng.uniform(0.0, 1.0, size=32)
        analog = crossbar.matvec(inputs)
        ideal = crossbar.ideal_matvec(inputs)
        relative = np.abs(analog - ideal) / np.max(np.abs(ideal))
        assert np.max(relative) < 0.08

    def test_more_bits_per_cell_improves_accuracy(self, rng):
        weights = rng.uniform(0.1, 1.0, size=(32, 8))
        inputs = rng.uniform(0.0, 1.0, size=32)
        errors = []
        for bits in (2, 4):
            crossbar = make_crossbar(rows=32, cols=8, adc_bits=12, bits_per_cell=bits)
            crossbar.program(weights)
            errors.append(np.max(np.abs(crossbar.matvec(inputs) - crossbar.ideal_matvec(inputs))))
        assert errors[1] < errors[0]

    def test_unquantized_output_is_more_accurate(self, rng):
        # with fine weight storage (5 bits/cell) the coarse 4-bit ADC is the
        # dominant error source, so bypassing it must reduce the error norm
        crossbar = make_crossbar(rows=32, cols=8, adc_bits=4, bits_per_cell=5)
        weights = rng.uniform(0.1, 1.0, size=(32, 8))
        crossbar.program(weights)
        inputs = rng.uniform(0.0, 1.0, size=32)
        ideal = crossbar.ideal_matvec(inputs)
        with_adc = np.linalg.norm(crossbar.matvec(inputs, quantize_output=True) - ideal)
        without_adc = np.linalg.norm(crossbar.matvec(inputs, quantize_output=False) - ideal)
        assert without_adc <= with_adc + 1e-9

    def test_zero_input_gives_zero_output(self, rng):
        crossbar = make_crossbar(rows=8, cols=4)
        crossbar.program(np.abs(rng.normal(size=(8, 4))))
        np.testing.assert_allclose(crossbar.matvec(np.zeros(8)), 0.0, atol=1e-12)

    def test_rejects_negative_inputs(self, rng):
        crossbar = make_crossbar(rows=8, cols=4)
        crossbar.program(np.abs(rng.normal(size=(8, 4))))
        with pytest.raises(ValueError):
            crossbar.matvec(np.array([-1.0] + [0.0] * 7))

    def test_read_noise_degrades_accuracy(self, rng):
        weights = rng.uniform(0.1, 1.0, size=(32, 8))
        inputs = rng.uniform(0.0, 1.0, size=32)
        clean = make_crossbar(rows=32, cols=8, adc_bits=12, bits_per_cell=5)
        noisy = make_crossbar(
            rows=32,
            cols=8,
            adc_bits=12,
            bits_per_cell=5,
            noise=NoiseConfig(read_noise_sigma=0.05, seed=1),
        )
        clean.program(weights)
        noisy.program(weights)
        ideal = clean.ideal_matvec(inputs)
        clean_err = np.max(np.abs(clean.matvec(inputs) - ideal))
        noisy_err = np.max(np.abs(noisy.matvec(inputs) - ideal))
        assert noisy_err > clean_err


class TestCostsAndStats:
    def test_stats_accumulate(self, rng):
        crossbar = make_crossbar(rows=8, cols=4, input_bits=4)
        crossbar.program(np.abs(rng.normal(size=(8, 4))))
        crossbar.matvec(np.abs(rng.uniform(size=8)))
        assert crossbar.stats.vmm_ops == 1
        assert crossbar.stats.array_activations == crossbar.config.input_cycles
        assert crossbar.stats.dac_conversions == 8 * crossbar.config.input_cycles

    def test_access_stats_merge(self):
        a = CrossbarAccessStats(vmm_ops=1, cell_reads=10)
        b = CrossbarAccessStats(vmm_ops=2, cell_reads=5, adc_conversions=3)
        a.merge(b)
        assert a.vmm_ops == 3
        assert a.cell_reads == 15
        assert a.adc_conversions == 3

    def test_latency_and_energy_positive_and_scale_with_cycles(self):
        fast = make_crossbar(input_bits=1)
        slow = make_crossbar(input_bits=8)
        assert slow.vmm_latency_s() == pytest.approx(8 * fast.vmm_latency_s())
        assert slow.vmm_energy_j() == pytest.approx(8 * fast.vmm_energy_j())
        assert fast.cycle_latency_s() > 0
        assert fast.programming_energy_j() > 0
        assert fast.programming_latency_s() > 0


class TestCrossbarProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_matvec_scales_linearly_with_input_scaling(self, seed):
        generator = np.random.default_rng(seed)
        crossbar = make_crossbar(rows=16, cols=4, adc_bits=12, bits_per_cell=5)
        weights = generator.uniform(0.1, 1.0, size=(16, 4))
        crossbar.program(weights)
        inputs = generator.uniform(0.1, 1.0, size=16)
        base = crossbar.matvec(inputs, quantize_output=False)
        doubled = crossbar.matvec(2.0 * inputs, quantize_output=False)
        np.testing.assert_allclose(doubled, 2.0 * base, rtol=0.02)
