"""The SLO-aware serving control plane: deadlines, closed loops, autoscaling.

Run with:  python examples/slo_autoscaling.py

Four things are demonstrated:

1. SLO tagging and EDF dispatch — one bursty (on/off MMPP) request
   stream is tagged with two service classes and served twice on the
   same fleet, FIFO vs earliest-deadline-first; only the drain order
   differs, and the per-class attainment shows what that order buys;
2. closed-loop clients — a think-time client population on a single
   exponential-service chip, cross-checked against the machine-repair
   M/M/1//N closed form;
3. diurnal autoscaling — a stylized day curve served with and without
   the hysteresis autoscaler, which parks idle chips into non-volatile
   deep sleep (weights persist in RRAM; waking is a supply ramp plus
   peripheral re-bias, not a reprogram) and the energy ledger shows the
   saving;
4. the e12 report — the full control-plane experiment table.
"""

from __future__ import annotations

from repro.analysis.serving import SLOServingAnalyzer, sleep_capable_star_model
from repro.serving import (
    Autoscaler,
    ChipFleet,
    ClosedLoopClients,
    DayCurveArrivals,
    DynamicBatcher,
    ExponentialServiceModel,
    MachineRepairQueue,
    MMPPArrivals,
    NO_BATCHING,
    ServingSimulator,
    SLOClass,
    SLOPolicy,
)


def main() -> None:
    star = sleep_capable_star_model(seq_len=128)

    # 1. two SLO classes on one bursty stream, FIFO vs EDF
    print("--- EDF vs FIFO on bursty two-class traffic (2 chips) ---")
    policy = SLOPolicy(
        (
            SLOClass("interactive", deadline_s=0.06),
            SLOClass("batch", deadline_s=1.0),
        )
    )
    arrivals = MMPPArrivals.on_off(
        burst_rate_rps=680.0, base_rate_rps=85.0, burst_s=0.2, duty=0.6, seed=0
    )
    requests = policy.tag_random(
        arrivals.generate(3000), weights=(0.5, 0.5), seed=1
    )
    for name, batcher in (
        ("fifo", DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)),
        ("edf", DynamicBatcher.edf(max_batch_size=8, max_wait_s=2e-3)),
    ):
        report = ServingSimulator(ChipFleet(star, num_chips=2), batcher).run(requests)
        print(
            f"{name:>5}: attainment {report.deadline_attainment():.3f} "
            f"(interactive {report.deadline_attainment(0):.3f}, "
            f"batch {report.deadline_attainment(1):.3f}), "
            f"p99 {report.p99_latency_s * 1e3:.1f} ms"
        )

    # 2. closed-loop clients vs the machine-repair closed form
    print()
    print("--- closed-loop clients vs M/M/1//N (8 clients, Z=10 ms, s=1 ms) ---")
    clients = ClosedLoopClients(num_clients=8, think_s=0.010, seed=2)
    model = ExponentialServiceModel(mean_s=0.001, seed=3)
    report = ServingSimulator(
        ChipFleet(model, num_chips=1), NO_BATCHING
    ).run_closed_loop(clients, 20000)
    theory = MachineRepairQueue(num_clients=8, think_s=0.010, service_s=0.001)
    print(
        f"throughput: simulated {report.throughput_rps:.1f} vs "
        f"theory {theory.throughput_rps:.1f} req/s"
    )
    print(
        f"response  : simulated {report.mean_latency_s * 1e3:.3f} vs "
        f"theory {theory.mean_latency_s * 1e3:.3f} ms"
    )

    # 3. diurnal autoscaling: park idle chips into non-volatile sleep
    print()
    print("--- diurnal autoscaling (4 chips, compressed day) ---")
    day = DayCurveArrivals(mean_rate_rps=500.0, period_s=12.0, seed=4)
    traffic = day.generate(6000)
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
    scaler = Autoscaler(
        interval_s=0.05,
        scale_up_above=0.85,
        scale_down_below=0.55,
        scale_up_queue_depth=64,
    )
    autoscaled = ServingSimulator(
        ChipFleet(star, num_chips=4), batcher, autoscaler=scaler
    ).run(traffic)
    always_on = ServingSimulator(ChipFleet(star, num_chips=4), batcher).run(traffic)
    print(
        f"always-on : {always_on.total_energy_j:.1f} J total "
        f"({always_on.idle_energy_j:.1f} J idle), "
        f"p99 {always_on.p99_latency_s * 1e3:.2f} ms"
    )
    print(
        f"autoscaled: {autoscaled.total_energy_j:.1f} J total "
        f"({autoscaled.idle_energy_j:.1f} J idle, "
        f"{autoscaled.sleep_energy_j:.1f} J sleep, "
        f"{autoscaled.wake_energy_j:.2f} J wake), "
        f"p99 {autoscaled.p99_latency_s * 1e3:.2f} ms"
    )
    print(
        f"mean awake chips {autoscaled.mean_awake_chips:.2f} of 4, "
        f"{autoscaled.num_scale_events} scale transitions, "
        f"{autoscaled.total_sleep_s:.1f} chip-seconds asleep"
    )

    # 4. the full e12 experiment
    print()
    print("--- e12: SLO-aware serving control plane ---")
    print(SLOServingAnalyzer().format_table())


if __name__ == "__main__":
    main()
