"""Cross-validation of the analytical batch formulas against executed schedules.

The same discipline PR 3 applied to the batch-1 attention pipeline, one
level up: for batch sizes 1 / 4 / 16 / 32 on BERT shapes, the event-driven
executions (tile-task GEMM schedules and the whole-model executed path)
must agree with the new closed-form batch pricing within 5% — and at batch
1 the default pricing must stay bit-identical to the pre-refactor goldens.
"""

from __future__ import annotations

import pytest

from repro.core.accelerator import STARAccelerator
from repro.core.batch_cost import BatchCostModel, BatchGEMMExecutor, DEFAULT_BATCH_COST
from repro.core.matmul_engine import GEMMShape
from repro.nn.bert import BertConfig, BertWorkload

BATCHES = (1, 4, 16, 32)

#: Pre-refactor whole-model goldens (float hex, recorded on the seed tree).
SEED_INFERENCE_HEX = {
    ("analytical", 64): "0x1.99d7abb0c4efcp-10",
    ("analytical", 128): "0x1.cbf43f148368ep-9",
    ("executed", 64): "0x1.9b91c6856dba1p-10",
    ("executed", 128): "0x1.cb2495b163acfp-9",
}
SEED_REQUEST_HEX = {
    "latency": "0x1.cbf43f148368ep-9",
    "energy": "0x1.2bf4b00fb09d4p-5",
}


class TestBatchOneGoldens:
    @pytest.mark.parametrize("schedule,seq_len", sorted(SEED_INFERENCE_HEX))
    def test_inference_latency_bit_identical_to_seed(self, schedule, seq_len):
        star = STARAccelerator(schedule=schedule)
        value = star.inference_latency_s(BertWorkload(seq_len=seq_len))
        assert value.hex() == SEED_INFERENCE_HEX[(schedule, seq_len)]

    def test_request_timing_bit_identical_to_seed(self):
        timing = STARAccelerator().request_timing(BertWorkload(seq_len=128))
        assert timing.latency_s.hex() == SEED_REQUEST_HEX["latency"]
        assert timing.energy_j.hex() == SEED_REQUEST_HEX["energy"]

    def test_legacy_model_is_bit_identical_at_every_batch_to_old_formula(self):
        # the legacy cost model IS the pre-refactor pricing: scaling the
        # per-request shape by the batch reproduces it exactly
        star = STARAccelerator(batch_cost=BatchCostModel.legacy())
        engine = star.matmul_engine
        for batch in BATCHES:
            workload = BertWorkload(seq_len=128, batch_size=batch)
            tokens = batch * 128
            old_projection = 4 * engine.gemm_latency_s(
                GEMMShape(m=tokens, k=768, n=768), cost_model=BatchCostModel.legacy()
            )
            breakdown = star.layer_latency_breakdown(workload)
            assert breakdown.projection_s == old_projection
            assert breakdown.programming_s == 0.0


class TestExecutedGEMMAgreesWithFormulas:
    @pytest.mark.parametrize("batch", BATCHES)
    @pytest.mark.parametrize(
        "dims", [(32, 768, 768), (32, 768, 3072), (32, 3072, 768)]
    )
    def test_bert_gemms_within_5_percent(self, dims, batch):
        shape = GEMMShape(*dims)
        for model in (DEFAULT_BATCH_COST, BatchCostModel.streamed()):
            star = STARAccelerator(batch_cost=model)
            executed = BatchGEMMExecutor(star.matmul_engine, model).execute(
                shape, batch_size=batch
            )
            analytic = star.matmul_engine.gemm_latency_s(
                shape, batch_size=batch, cost_model=model
            )
            assert executed.total_latency_s == pytest.approx(analytic, rel=0.05)

    @pytest.mark.parametrize("batch", BATCHES)
    def test_divisible_bert_gemms_exact(self, batch):
        # 36 tiles * 32 rows divide the 96-tile bank: the event-driven
        # schedule completes in full waves and lands exactly on the formula
        shape = GEMMShape(m=32, k=768, n=768)
        star = STARAccelerator(batch_cost=BatchCostModel.streamed())
        executed = BatchGEMMExecutor(star.matmul_engine, star.batch_cost).execute(
            shape, batch_size=batch
        )
        analytic = star.matmul_engine.gemm_latency_s(
            shape, batch_size=batch, cost_model=star.batch_cost
        )
        assert executed.total_latency_s == pytest.approx(analytic, rel=1e-12)


class TestExecutedModelAgreesWithAnalytical:
    @pytest.mark.parametrize("batch", BATCHES)
    def test_whole_model_within_5_percent(self, batch):
        config = BertConfig(num_layers=2)
        workload = BertWorkload(config=config, seq_len=64, batch_size=batch)
        for model in (DEFAULT_BATCH_COST, BatchCostModel.streamed()):
            analytical = STARAccelerator(batch_cost=model)
            executed = STARAccelerator(schedule="executed", batch_cost=model)
            a = analytical.inference_latency_s(workload)
            e = executed.inference_latency_s(workload)
            assert e == pytest.approx(a, rel=0.05)

    def test_executed_batch_service_is_sublinear(self):
        config = BertConfig(num_layers=2)
        star = STARAccelerator(schedule="executed", batch_cost=BatchCostModel.streamed())
        single = star.inference_latency_s(BertWorkload(config=config, seq_len=64))
        batched = star.inference_latency_s(
            BertWorkload(config=config, seq_len=64, batch_size=32)
        )
        assert batched <= 0.6 * 32 * single
