"""Ablation studies around STAR's design choices (experiments E7-E9).

Three ablations the paper's design decisions imply but do not tabulate:

* **pipeline granularity** (E7) — vector-grained vs operand-grained
  scheduling of the attention chain, across sequence lengths; each point
  is computed analytically *and* executed through the event-driven
  scheduler, cross-validating the closed-form model;
* **softmax precision** (E8) — how the engine's area/power and the softmax
  fidelity trade off as the fixed-point format is swept;
* **device non-idealities** (E9) — Monte-Carlo sweep of RRAM read noise /
  programming variation / stuck-at faults against softmax output fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import STARAccelerator
from repro.core.config import SoftmaxEngineConfig, STARConfig
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.bert import BertWorkload
from repro.nn.functional import softmax as exact_softmax
from repro.rram.noise import NoiseConfig
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.stats import kl_divergence
from repro.workloads.scores import AttentionScoreGenerator, ScoreProfile

__all__ = [
    "PipelineAblationRow",
    "PrecisionAblationRow",
    "NoiseAblationRow",
    "AblationSuite",
]


@dataclass(frozen=True)
class PipelineAblationRow:
    """Vector- vs operand-grained latency at one sequence length.

    Each schedule is evaluated twice: with the closed-form analytical
    formulas (``vector_latency_s`` / ``operand_latency_s``) and by the
    event-driven executor running the same rows through discrete stream and
    engine resources (``executed_*``).  The executed numbers cross-validate
    the formulas — ``speedup_deviation`` is the E7 acceptance metric.
    """

    seq_len: int
    vector_latency_s: float
    operand_latency_s: float
    executed_vector_latency_s: float
    executed_operand_latency_s: float

    @property
    def speedup(self) -> float:
        """Analytical speedup of the vector-grained pipeline."""
        return self.operand_latency_s / self.vector_latency_s

    @property
    def executed_speedup(self) -> float:
        """Executed (event-driven) speedup of the vector-grained pipeline."""
        return self.executed_operand_latency_s / self.executed_vector_latency_s

    @property
    def speedup_deviation(self) -> float:
        """Relative deviation of the executed speedup from the analytical one."""
        return abs(self.executed_speedup - self.speedup) / self.speedup


@dataclass(frozen=True)
class PrecisionAblationRow:
    """Engine cost and softmax fidelity at one fixed-point format."""

    integer_bits: int
    frac_bits: int
    area_um2: float
    power_w: float
    mean_kl: float

    @property
    def total_bits(self) -> int:
        """Total bits of the format."""
        return self.integer_bits + self.frac_bits


@dataclass(frozen=True)
class NoiseAblationRow:
    """Softmax fidelity under one RRAM non-ideality configuration."""

    label: str
    read_noise_sigma: float
    programming_sigma: float
    stuck_fraction: float
    mean_kl: float
    max_abs_error: float


class AblationSuite:
    """Runs the E7 / E8 / E9 ablations."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def accelerator(self) -> STARAccelerator:
        """The accelerator configuration every E7 point runs on."""
        return STARAccelerator()

    # ------------------------------------------------------------------ #
    # E7: pipeline granularity
    # ------------------------------------------------------------------ #
    def pipeline_ablation(
        self, seq_lens: list[int] | tuple[int, ...] = (128, 256, 512)
    ) -> list[PipelineAblationRow]:
        """Attention-chain latency under both schedules, per sequence length.

        Every (granularity, seq_len) point is computed both analytically and
        by executing the rows through the event-driven scheduler with the
        accelerator's discrete head-streams and softmax-engine pool.
        """
        accelerator = self.accelerator()
        rows = []
        for seq_len in seq_lens:
            workload = BertWorkload(seq_len=seq_len)
            timing = accelerator.attention_stage_timing(workload)
            vector = accelerator.pipeline.vector_grained_latency(timing).total_latency_s
            operand = accelerator.pipeline.operand_grained_latency(timing).total_latency_s
            executed_vector = accelerator.executed_attention_schedule(
                workload, granularity="vector"
            ).total_latency_s
            executed_operand = accelerator.executed_attention_schedule(
                workload, granularity="operand"
            ).total_latency_s
            rows.append(
                PipelineAblationRow(
                    seq_len=seq_len,
                    vector_latency_s=vector,
                    operand_latency_s=operand,
                    executed_vector_latency_s=executed_vector,
                    executed_operand_latency_s=executed_operand,
                )
            )
        return rows

    # ------------------------------------------------------------------ #
    # E8: softmax precision sweep
    # ------------------------------------------------------------------ #
    def precision_ablation(
        self,
        profile: ScoreProfile,
        formats: list[tuple[int, int]] | tuple[tuple[int, int], ...] = (
            (5, 1),
            (5, 2),
            (6, 2),
            (6, 3),
        ),
        num_rows: int = 256,
        seq_len: int = 256,
    ) -> list[PrecisionAblationRow]:
        """Engine cost and softmax fidelity across fixed-point formats.

        Runs the cycle-accurate engine itself (not the functional model) at
        every format; the batched backend keeps the sweep fast even at
        BERT-scale row counts.
        """
        generator = AttentionScoreGenerator(profile, seed=self.seed)
        scores = generator.rows(num_rows, seq_len)
        exact = exact_softmax(scores)
        rows = []
        for integer_bits, frac_bits in formats:
            fmt = FixedPointFormat(integer_bits, frac_bits)
            engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=fmt))
            approx = engine.softmax(scores)
            kls = [kl_divergence(exact[i], approx[i]) for i in range(scores.shape[0])]
            rows.append(
                PrecisionAblationRow(
                    integer_bits=integer_bits,
                    frac_bits=frac_bits,
                    area_um2=engine.area_um2(),
                    power_w=engine.power_w(seq_len),
                    mean_kl=float(np.mean(kls)),
                )
            )
        return rows

    # ------------------------------------------------------------------ #
    # E9: device non-idealities
    # ------------------------------------------------------------------ #
    def noise_ablation(
        self,
        profile: ScoreProfile,
        fmt: FixedPointFormat,
        noise_points: list[tuple[str, NoiseConfig]] | None = None,
        num_rows: int = 128,
        seq_len: int = 256,
    ) -> list[NoiseAblationRow]:
        """Softmax fidelity under increasing RRAM non-ideality levels.

        The engine's batched backend draws the analog perturbations for a
        whole score block at once, so the Monte-Carlo corners run at full
        scale.
        """
        if noise_points is None:
            noise_points = [
                ("ideal", NoiseConfig()),
                ("typical", NoiseConfig(programming_sigma=0.02, read_noise_sigma=0.01, seed=self.seed)),
                (
                    "aggressive",
                    NoiseConfig(
                        programming_sigma=0.05,
                        read_noise_sigma=0.03,
                        stuck_on_fraction=0.005,
                        stuck_off_fraction=0.005,
                        seed=self.seed,
                    ),
                ),
            ]
        generator = AttentionScoreGenerator(profile, seed=self.seed)
        scores = generator.rows(num_rows, seq_len)
        exact = exact_softmax(scores)
        rows = []
        for label, noise in noise_points:
            engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=fmt, noise=noise))
            approx = engine.softmax(scores)
            errors = np.abs(approx - exact)
            kls = [kl_divergence(exact[i], approx[i]) for i in range(scores.shape[0])]
            rows.append(
                NoiseAblationRow(
                    label=label,
                    read_noise_sigma=noise.read_noise_sigma,
                    programming_sigma=noise.programming_sigma,
                    stuck_fraction=noise.stuck_on_fraction + noise.stuck_off_fraction,
                    mean_kl=float(np.mean(kls)),
                    max_abs_error=float(np.max(errors)),
                )
            )
        return rows
