"""E7 (ablation) — vector-grained vs operand-grained attention pipeline.

The paper's vector-grained pipeline is one of the two ingredients of STAR's
gain over ReTransformer; this ablation quantifies it in isolation across
sequence lengths.  Since the event-driven scheduler landed, every point is
also *executed* (discrete head-streams and softmax engines instead of the
closed-form rate model) and the two are gated to agree within 5 % — the
E7 acceptance criterion.
"""

from __future__ import annotations

import pytest

from repro.analysis.ablation import AblationSuite
from repro.analysis.breakdown import StarScheduleAnalyzer

from conftest import record

SEQ_LENS = (128, 256, 512)


@pytest.mark.smoke
def test_bench_pipeline_granularity_ablation(benchmark):
    """Attention-chain latency under both schedules for several lengths."""
    suite = AblationSuite()

    rows = benchmark(suite.pipeline_ablation, SEQ_LENS)

    record(
        benchmark,
        speedups={row.seq_len: round(row.speedup, 3) for row in rows},
        executed_speedups={row.seq_len: round(row.executed_speedup, 3) for row in rows},
        vector_latency_us={row.seq_len: round(row.vector_latency_s * 1e6, 2) for row in rows},
        operand_latency_us={row.seq_len: round(row.operand_latency_s * 1e6, 2) for row in rows},
        max_speedup_deviation_pct=round(
            max(row.speedup_deviation for row in rows) * 100, 3
        ),
    )
    assert all(row.speedup > 1.0 for row in rows)
    assert all(row.executed_speedup > 1.0 for row in rows)
    # E7 acceptance gate: execution reproduces the analytical speedup to 5%
    assert all(row.speedup_deviation < 0.05 for row in rows)


@pytest.mark.smoke
def test_bench_executed_schedule_cross_validation(benchmark):
    """Event-driven executed latency vs the closed-form prediction."""
    analyzer = StarScheduleAnalyzer(sweep=SEQ_LENS)

    rows = benchmark(analyzer.sweep_rows)

    record(
        benchmark,
        executed_us={row.seq_len: round(row.executed_s * 1e6, 2) for row in rows},
        analytical_us={row.seq_len: round(row.analytical_s * 1e6, 2) for row in rows},
        deviation_pct={row.seq_len: round(row.deviation * 100, 3) for row in rows},
        softmax_utilization={
            row.seq_len: round(row.softmax_utilization, 4) for row in rows
        },
    )
    assert all(row.deviation < 0.05 for row in rows)
    # the softmax pool is the bottleneck stage at these lengths: it should
    # be near-saturated while the schedule hides its latency
    assert all(row.softmax_utilization > 0.9 for row in rows)


def test_bench_star_vs_operand_scheduled_star(benchmark):
    """Whole-accelerator effect of the pipeline granularity at seq 128."""
    from repro.core.accelerator import STARAccelerator
    from repro.core.config import PipelineConfig, STARConfig
    from repro.nn.bert import BertWorkload

    workload = BertWorkload(seq_len=128)
    vector_star = STARAccelerator()
    operand_star = STARAccelerator(STARConfig(pipeline=PipelineConfig(granularity="operand")))

    def both():
        return (
            vector_star.inference_latency_s(workload),
            operand_star.inference_latency_s(workload),
        )

    vector_latency, operand_latency = benchmark(both)

    record(
        benchmark,
        vector_ms=round(vector_latency * 1e3, 3),
        operand_ms=round(operand_latency * 1e3, 3),
        end_to_end_speedup=round(operand_latency / vector_latency, 3),
    )
    assert vector_latency < operand_latency
