"""RRAM content-addressable memory (CAM) crossbar.

A CAM crossbar stores one binary codeword per row using complementary cell
pairs (two RRAM cells per bit, as in a resistive TCAM).  A search applies the
query bits and their complements to the search lines; only the row whose
stored word matches the query keeps its matchline current below the sense
threshold, so the matchline sense amplifiers output a one-hot match vector.

STAR uses CAM crossbars in two places:

* the **CAM/SUB crossbar** (512 x 18) that locates ``x_max`` among the input
  scores before subtraction (Fig. 1 of the paper);
* the **CAM crossbar of the exponential unit** (256 x 18) that maps each
  ``x_i - x_max`` magnitude to a row index whose LUT entry is the
  pre-computed exponential (Fig. 2).

Both store *every representable fixed-point level* rather than arbitrary
data, which is why exact-match search is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.converters import SenseAmplifier
from repro.rram.device import RRAMDeviceConfig
from repro.utils.validation import require_in_range, require_positive

__all__ = ["CAMConfig", "CAMCrossbar"]


@dataclass(frozen=True)
class CAMConfig:
    """Geometry and behaviour of a CAM crossbar.

    Attributes
    ----------
    rows:
        Number of stored codewords (one per wordline / matchline).
    bits:
        Width of each codeword; each bit occupies two complementary cells,
        so the physical column count is ``2 * bits``.
    device:
        RRAM cell parameters (used for energy accounting).
    search_error_rate:
        Probability that a search of one row flips its match decision,
        modelling sense-margin failures under device noise.  0 disables it.
    matchline_capacitance_f:
        Capacitance of one matchline (wire plus the drains of its cells);
        every search precharges all matchlines, which dominates CAM search
        energy.
    seed:
        Seed for the error-injection random stream.
    """

    rows: int = 256
    bits: int = 9
    device: RRAMDeviceConfig = field(default_factory=RRAMDeviceConfig)
    search_error_rate: float = 0.0
    matchline_capacitance_f: float = 50.0e-15
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError(f"rows must be >= 1, got {self.rows}")
        if not 1 <= self.bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {self.bits}")
        require_in_range(self.search_error_rate, 0.0, 1.0, "search_error_rate")
        require_positive(self.matchline_capacitance_f, "matchline_capacitance_f")

    @property
    def physical_cols(self) -> int:
        """Physical bitlines: two complementary cells per stored bit."""
        return 2 * self.bits

    @property
    def num_cells(self) -> int:
        """Total RRAM cells in the CAM array."""
        return self.rows * self.physical_cols

    @property
    def capacity(self) -> int:
        """Number of distinct codewords the width can represent."""
        return 1 << self.bits


class CAMCrossbar:
    """Exact-match CAM built from complementary RRAM cell pairs."""

    def __init__(self, config: CAMConfig | None = None) -> None:
        self.config = config or CAMConfig()
        self.sense_amp = SenseAmplifier()
        self._rng = np.random.default_rng(self.config.seed)
        self._stored_codes: np.ndarray | None = None
        self._stored_bits: np.ndarray | None = None
        self.search_count = 0

    # ------------------------------------------------------------------ #
    # programming
    # ------------------------------------------------------------------ #
    @property
    def is_programmed(self) -> bool:
        """Whether codewords have been written."""
        return self._stored_codes is not None

    @property
    def stored_codes(self) -> np.ndarray:
        """The integer codewords stored per row (top to bottom)."""
        if self._stored_codes is None:
            raise RuntimeError("CAM has not been programmed yet")
        return self._stored_codes.copy()

    def program_codes(self, codes: np.ndarray) -> None:
        """Store one integer codeword per row.

        Parameters
        ----------
        codes:
            Array of length ``<= rows`` holding non-negative integers below
            ``2 ** bits``.  Rows beyond ``len(codes)`` are left unused and
            never match.
        """
        arr = np.asarray(codes, dtype=np.int64).ravel()
        cfg = self.config
        if arr.size > cfg.rows:
            raise ValueError(f"{arr.size} codewords exceed the {cfg.rows} CAM rows")
        if arr.size == 0:
            raise ValueError("cannot program an empty codeword list")
        if np.any(arr < 0) or np.any(arr >= cfg.capacity):
            raise ValueError(f"codewords must lie in [0, {cfg.capacity - 1}]")
        self._stored_codes = arr.copy()
        # expand to a bits matrix once so searches are cheap
        bit_positions = np.arange(cfg.bits, dtype=np.int64)
        self._stored_bits = ((arr[:, None] >> bit_positions[None, :]) & 1).astype(np.int8)

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def search(self, query: int) -> np.ndarray:
        """Search one query codeword; returns the 0/1 match vector per row."""
        if not self.is_programmed:
            raise RuntimeError("CAM must be programmed before searching")
        cfg = self.config
        if not 0 <= query < cfg.capacity:
            raise ValueError(f"query {query} outside [0, {cfg.capacity - 1}]")
        matches = (self._stored_codes == query).astype(np.int64)
        matches = self._inject_errors(matches)
        self.search_count += 1
        return matches

    def search_many(self, queries: np.ndarray) -> np.ndarray:
        """Search a batch of queries; returns a ``len(queries) x rows`` matrix.

        All wordlines are searched in parallel for each query, as in Fig. 1
        of the paper; queries themselves are applied sequentially.
        """
        if not self.is_programmed:
            raise RuntimeError("CAM must be programmed before searching")
        arr = np.asarray(queries, dtype=np.int64).ravel()
        cfg = self.config
        if np.any(arr < 0) or np.any(arr >= cfg.capacity):
            raise ValueError(f"queries must lie in [0, {cfg.capacity - 1}]")
        matches = (arr[:, None] == self._stored_codes[None, :]).astype(np.int64)
        matches = self._inject_errors(matches)
        self.search_count += arr.size
        return matches

    def match_index(self, query: int) -> int:
        """Row index storing ``query``; -1 when no row matches."""
        matches = self.search(query)
        hits = np.flatnonzero(matches)
        return int(hits[0]) if hits.size else -1

    def _inject_errors(self, matches: np.ndarray) -> np.ndarray:
        rate = self.config.search_error_rate
        if rate <= 0.0:
            return matches
        flips = self._rng.random(size=matches.shape) < rate
        return np.where(flips, 1 - matches, matches)

    # ------------------------------------------------------------------ #
    # per-access costs
    # ------------------------------------------------------------------ #
    def search_latency_s(self) -> float:
        """Latency of one parallel search: precharge + discharge + sense."""
        precharge = 0.5e-9
        discharge = self.config.device.read_pulse_s
        return precharge + discharge + self.sense_amp.latency_s

    def search_energy_j(self) -> float:
        """Energy of one parallel search over all rows.

        Three contributions: precharging every matchline, the discharge
        current through (on average half) the cells while the search lines
        are driven, and the matchline sense amplifiers.
        """
        cfg = self.config
        v = cfg.device.read_voltage_v
        precharge_energy = cfg.rows * cfg.matchline_capacitance_f * v * v
        # on average half the cells conduct during a search
        g_mid = 0.5 * (1.0 / cfg.device.r_on_ohm + 1.0 / cfg.device.r_off_ohm)
        cell_energy = 0.5 * cfg.num_cells * v * v * g_mid * cfg.device.read_pulse_s
        sense_energy = cfg.rows * self.sense_amp.energy_per_sense_j
        return precharge_energy + cell_energy + sense_energy

    def area_um2(self, cell_area_um2: float = 0.2) -> float:
        """Array area: cells plus one sense amplifier per matchline."""
        require_positive(cell_area_um2, "cell_area_um2")
        return self.config.num_cells * cell_area_um2 + self.config.rows * self.sense_amp.area_um2
