"""Tests for repro.utils.units and repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.units import GIGA, NS, PJ, format_si, to_giga_ops_per_watt
from repro.utils.validation import (
    as_1d_float_array,
    as_2d_float_array,
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
)


class TestUnits:
    def test_constants(self):
        assert NS == 1e-9
        assert PJ == 1e-12
        assert GIGA == 1e9

    def test_to_giga_ops_per_watt(self):
        # 1e12 ops in 1 s at 10 W -> 100 GOPs/s/W
        assert to_giga_ops_per_watt(1e12, 1.0, 10.0) == pytest.approx(100.0)

    def test_to_giga_ops_per_watt_matches_paper_style_numbers(self):
        # STAR: 612.66 GOPs/s/W means 612.66e9 ops per joule
        ops = 612.66e9
        assert to_giga_ops_per_watt(ops, 1.0, 1.0) == pytest.approx(612.66)

    def test_to_giga_ops_per_watt_rejects_non_positive(self):
        with pytest.raises(ValueError):
            to_giga_ops_per_watt(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            to_giga_ops_per_watt(1.0, 1.0, -1.0)

    def test_format_si(self):
        assert format_si(2.5e-9, "s") == "2.5 ns"
        assert format_si(3.2e9, "OPs") == "3.2 GOPs"
        assert format_si(0, "W") == "0 W"
        assert "m" in format_si(5e-3, "W")


class TestValidation:
    def test_require_positive(self):
        assert require_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError, match="x"):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            require_non_negative(-1e-9, "x")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0.0, 1.0, "x") == 0.5
        with pytest.raises(ValueError):
            require_in_range(1.5, 0.0, 1.0, "x")

    def test_require_power_of_two(self):
        assert require_power_of_two(128, "x") == 128
        for bad in (0, -2, 3, 48):
            with pytest.raises(ValueError):
                require_power_of_two(bad, "x")

    def test_as_1d_float_array(self):
        out = as_1d_float_array([1, 2, 3], "v")
        assert out.dtype == np.float64
        assert out.shape == (3,)
        assert as_1d_float_array(5.0, "v").shape == (1,)
        with pytest.raises(ValueError):
            as_1d_float_array(np.zeros((2, 2)), "v")

    def test_as_2d_float_array(self):
        out = as_2d_float_array([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)
        assert as_2d_float_array([1, 2, 3], "m").shape == (1, 3)
        with pytest.raises(ValueError):
            as_2d_float_array(np.zeros((2, 2, 2)), "m")
