"""Fidelity-tiering invariants: template exactness, jitter bounds, sharding.

Three property families pin the tiered-fidelity serving path
(:mod:`repro.core.schedule_cache` + ``TieredServiceModel``):

* a jitter-free :class:`ScheduleTemplate` reproduces the cold
  ``executed_model_schedule`` latency **bit-exactly** — the template is a
  cache of the executed run, not an approximation of it;
* every jittered resample is bounded below by the jitter-free critical
  path (speedups are absorbed by sibling stages, slowdowns add), so the
  executed tier can only lengthen the tail, never shorten it;
* the sharded simulator's per-shard sampling streams reproduce the
  serial (``parallel=False``) run bit-exactly — tier assignment and
  latencies — for the same seed, as with every other random stream in
  :mod:`repro.serving.sharded`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule_cache import (
    NUM_STAGES,
    ScheduleTemplate,
    build_schedule_template,
)
from repro.nn.bert import BertConfig, BertWorkload
from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FixedServiceModel,
    PoissonArrivals,
    ShardedServingSimulator,
    TieredServiceModel,
)

# tiny-but-varied executed workloads: small enough that the event-driven
# executor runs in milliseconds, varied enough to exercise the template
tiny_workloads = st.fixed_dictionaries(
    {
        "num_layers": st.integers(min_value=1, max_value=3),
        "num_heads": st.sampled_from([1, 2]),
        "head_dim": st.sampled_from([8, 16]),
        "intermediate": st.sampled_from([32, 64]),
        "seq_len": st.sampled_from([8, 16, 32]),
        "batch": st.integers(min_value=1, max_value=3),
    }
)

# synthetic templates: the resampling math is pure arithmetic, so its
# bound properties hold for any positive steady intervals, not just ones
# an accelerator produced
synthetic_templates = st.builds(
    ScheduleTemplate,
    batch_size=st.integers(min_value=1, max_value=8),
    seq_len=st.integers(min_value=8, max_value=512),
    num_layers=st.integers(min_value=1, max_value=24),
    num_rows=st.integers(min_value=2, max_value=100000),
    base_latency_s=st.floats(min_value=1e-6, max_value=1.0),
    energy_j=st.floats(min_value=0.0, max_value=1.0),
    steady_row_s=st.tuples(
        *[st.floats(min_value=1e-12, max_value=1e-6)] * NUM_STAGES
    ),
)


def _workload(params) -> BertWorkload:
    config = BertConfig(
        num_layers=params["num_layers"],
        hidden=params["num_heads"] * params["head_dim"],
        num_heads=params["num_heads"],
        intermediate=params["intermediate"],
    )
    return BertWorkload(config=config, seq_len=params["seq_len"]).with_batch(
        params["batch"]
    )


class TestTemplateExactness:
    @given(tiny_workloads)
    @settings(max_examples=15, deadline=None)
    def test_jitter_free_template_matches_cold_executed_run(self, params):
        """Template base latency == executed_model_schedule, bit-exact."""
        from repro.core.accelerator import STARAccelerator

        workload = _workload(params)
        accelerator = STARAccelerator(schedule="executed")
        template = build_schedule_template(accelerator, workload)
        cold = accelerator.executed_model_schedule(workload).total_latency_s
        assert template.base_latency_s == cold

    @given(tiny_workloads)
    @settings(max_examples=10, deadline=None)
    def test_analytic_source_accelerator_builds_identical_template(self, params):
        """Templates ignore the source schedule: analytic and executed agree."""
        from repro.core.accelerator import STARAccelerator

        workload = _workload(params)
        from_analytic = build_schedule_template(STARAccelerator(), workload)
        from_executed = build_schedule_template(
            STARAccelerator(schedule="executed"), workload
        )
        assert from_analytic.base_latency_s == from_executed.base_latency_s
        assert from_analytic.steady_row_s == from_executed.steady_row_s


class TestJitterBounds:
    @given(synthetic_templates, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=100, deadline=None)
    def test_unit_factors_reproduce_base_exactly(self, template, seed):
        factors = np.ones((template.num_layers, NUM_STAGES))
        assert template.sample_latency_s(factors) == template.base_latency_s

    @given(
        synthetic_templates,
        st.floats(min_value=1e-3, max_value=1.0),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_jittered_draws_bounded_below_by_critical_path(
        self, template, sigma, seed
    ):
        """Resampled latency >= the jitter-free critical path, always."""
        rng = np.random.default_rng(seed)
        for _ in range(5):
            assert template.resample(rng, sigma) >= template.base_latency_s

    @given(synthetic_templates, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=50, deadline=None)
    def test_sigma_zero_is_exact_and_leaves_generator_untouched(
        self, template, seed
    ):
        rng = np.random.default_rng(seed)
        before = rng.bit_generator.state
        assert template.resample(rng, 0.0) == template.base_latency_s
        assert rng.bit_generator.state == before

    @given(synthetic_templates)
    @settings(max_examples=50, deadline=None)
    def test_template_survives_pickling(self, template):
        import pickle

        clone = pickle.loads(pickle.dumps(template))
        assert clone.base_latency_s == template.base_latency_s
        assert clone.steady_row_s == template.steady_row_s
        factors = np.full((template.num_layers, NUM_STAGES), 1.25)
        assert clone.sample_latency_s(factors) == template.sample_latency_s(factors)


def _synthetic_template(batch: int, seq_len: int) -> ScheduleTemplate:
    return ScheduleTemplate(
        batch_size=batch,
        seq_len=seq_len,
        num_layers=2,
        num_rows=max(2, 4 * batch),
        base_latency_s=1e-3 * batch,
        energy_j=1e-6 * batch,
        steady_row_s=(1e-8, 3e-8, 1e-8),
    )


sharded_scenarios = st.fixed_dictionaries(
    {
        "num_requests": st.integers(min_value=20, max_value=80),
        "rate_rps": st.floats(min_value=100.0, max_value=2000.0),
        "sample_fraction": st.sampled_from([0.1, 0.5, 1.0]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


class TestShardedTierDeterminism:
    @given(sharded_scenarios)
    @settings(max_examples=5, deadline=None)
    def test_serial_and_parallel_shards_agree_bit_exactly(self, params):
        """Same seed => same tier assignment and latencies, any worker mode."""
        max_batch = 4
        templates = {
            (batch, 128): _synthetic_template(batch, 128)
            for batch in range(1, max_batch + 1)
        }

        def run(parallel):
            model = TieredServiceModel(
                FixedServiceModel(1e-3, request_energy_j=1e-6),
                sample_fraction=params["sample_fraction"],
                jitter_sigma=0.2,
                seed=params["seed"],
                templates=templates,
            )
            fleet = ChipFleet(model, num_chips=2)
            simulator = ShardedServingSimulator(
                fleet,
                DynamicBatcher(max_batch_size=max_batch, max_wait_s=1e-3),
                num_shards=2,
                parallel=parallel,
            )
            return simulator.run_poisson(
                PoissonArrivals(
                    params["rate_rps"], seq_len=128, seed=params["seed"]
                ),
                params["num_requests"],
            )

        serial = run(False)
        parallel = run(True)
        assert np.array_equal(serial.batches.tier, parallel.batches.tier)
        assert np.array_equal(
            serial.requests.completion_s, parallel.requests.completion_s
        )
        assert np.array_equal(serial.requests.index, parallel.requests.index)
        assert serial.format_table() == parallel.format_table()
