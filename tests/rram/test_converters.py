"""Tests for repro.rram.converters (ADC, DAC, sense amp, sample & hold)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram.converters import ADC, DAC, SampleAndHold, SenseAmplifier


class TestADC:
    def test_paper_adc_is_5_bit(self):
        adc = ADC(bits=5)
        assert adc.num_levels == 32

    def test_area_power_scale_with_bits(self):
        small = ADC(bits=5)
        large = ADC(bits=8)
        assert large.area_um2 == pytest.approx(small.area_um2 * 8)
        assert large.power_w == pytest.approx(small.power_w * 8)

    def test_quantize_saturates_and_rounds(self):
        adc = ADC(bits=4)
        codes = adc.quantize(np.array([-1.0, 0.0, 0.5, 1.0, 2.0]), full_scale=1.0)
        assert codes[0] == 0
        assert codes[-1] == adc.num_levels - 1
        assert codes[2] == round(0.5 * 15)

    def test_convert_error_bounded_by_half_lsb(self, rng):
        adc = ADC(bits=6)
        values = rng.uniform(0, 1, size=1000)
        recovered = adc.convert(values, full_scale=1.0)
        lsb = 1.0 / (adc.num_levels - 1)
        assert np.max(np.abs(recovered - values)) <= lsb / 2 + 1e-12

    def test_convert_handles_nd_blocks(self, rng):
        """Whole (cycles, batch, cols) current tensors convert in one call."""
        adc = ADC(bits=5)
        block = rng.uniform(0, 1, size=(4, 6, 8))
        converted = adc.convert(block, full_scale=1.0)
        assert converted.shape == block.shape
        np.testing.assert_array_equal(
            converted[2], adc.convert(block[2], full_scale=1.0)
        )

    def test_convert_signed_matches_sign_magnitude_sequence(self, rng):
        adc = ADC(bits=5)
        values = rng.normal(size=(3, 16))
        fused = adc.convert_signed(values, full_scale=1.0)
        explicit = np.sign(values) * adc.convert(np.abs(values), full_scale=1.0)
        np.testing.assert_array_equal(fused, explicit)

    def test_convert_out_parameter_is_in_place(self, rng):
        adc = ADC(bits=4)
        values = rng.uniform(0, 1, size=32)
        expected = adc.convert(values, full_scale=1.0)
        buffer = values.copy()
        result = adc.convert(buffer, full_scale=1.0, out=buffer)
        assert result is buffer
        np.testing.assert_array_equal(result, expected)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ADC(bits=0)
        with pytest.raises(ValueError):
            ADC(bits=20)

    def test_quantize_requires_positive_full_scale(self):
        with pytest.raises(ValueError):
            ADC().quantize(np.ones(3), full_scale=0.0)


class TestDAC:
    def test_one_bit_dac_is_binary(self):
        dac = DAC(bits=1)
        voltages = dac.drive(np.array([0, 1]), v_read=0.3)
        np.testing.assert_allclose(voltages, [0.0, 0.3])

    def test_multibit_dac_is_linear(self):
        dac = DAC(bits=3)
        codes = np.arange(dac.num_levels)
        voltages = dac.drive(codes, v_read=0.7)
        np.testing.assert_allclose(np.diff(voltages), 0.7 / 7)

    def test_drive_clips_out_of_range_codes(self):
        dac = DAC(bits=2)
        voltages = dac.drive(np.array([-5, 100]), v_read=1.0)
        assert voltages[0] == 0.0
        assert voltages[1] == 1.0

    def test_costs_scale_with_bits(self):
        assert DAC(bits=4).area_um2 == pytest.approx(4 * DAC(bits=1).area_um2)
        assert DAC(bits=4).power_w > DAC(bits=1).power_w

    def test_energy_per_conversion(self):
        dac = DAC(bits=2)
        assert dac.energy_per_conversion_j == pytest.approx(dac.power_w * dac.latency_s)


class TestSenseAmplifierAndSampleHold:
    def test_sense_thresholding(self):
        sa = SenseAmplifier(threshold_a=1e-6)
        out = sa.sense(np.array([0.0, 5e-7, 1e-6, 2e-6]))
        assert out.tolist() == [0, 0, 1, 1]

    def test_sense_energy_positive(self):
        sa = SenseAmplifier()
        assert sa.energy_per_sense_j > 0

    def test_sample_hold_energy(self):
        sh = SampleAndHold()
        assert sh.energy_per_sample_j == pytest.approx(sh.power_w * sh.latency_s)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SenseAmplifier(area_um2=0)
        with pytest.raises(ValueError):
            SampleAndHold(latency_s=-1)
