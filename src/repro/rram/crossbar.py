"""Analog RRAM crossbar performing in-situ vector-matrix multiplication (VMM).

This is the workhorse substrate of every RRAM PIM accelerator: a matrix is
programmed into cell conductances, an input vector is applied as wordline
voltages and, by Kirchhoff's law, each bitline current is the dot product of
the input vector with the corresponding matrix column.

The model is behavioural but captures the effects that matter at
architecture level:

* conductance quantisation to the device's programmable levels;
* bit-serial streaming of multi-bit inputs through low-resolution DACs
  (the ISAAC / ReTransformer operating mode), with shift-and-add
  accumulation of the per-cycle ADC outputs;
* differential (positive/negative column pair) encoding of signed weights;
* programming variation, read noise and stuck-at faults via
  :class:`~repro.rram.noise.NoiseModel`;
* ADC quantisation of bitline currents, with the full-scale range set by the
  worst-case column current;
* per-access energy and latency accounting that the architecture-level cost
  model aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rram.converters import ADC, DAC, SampleAndHold
from repro.rram.device import RRAMDevice, RRAMDeviceConfig
from repro.rram.noise import IDEAL_NOISE, NoiseConfig, NoiseModel
from repro.utils.validation import as_1d_float_array, as_2d_float_array

__all__ = ["CrossbarConfig", "AccessStats", "AnalogCrossbar"]


@dataclass(frozen=True)
class CrossbarConfig:
    """Dimensions and peripheral configuration of one crossbar array.

    Attributes
    ----------
    rows / cols:
        Array dimensions (wordlines x bitlines).  STAR uses 128x128 for the
        MatMul engine and 256x18 / 512x18 arrays inside the Softmax engine.
    device:
        RRAM cell parameters.
    noise:
        Non-ideality configuration.
    adc_bits:
        Resolution of the column ADCs (5 for the MatMul engine, following
        ReTransformer).
    dac_bits:
        Resolution of the wordline DACs (1 = bit-serial input streaming).
    input_bits:
        Precision at which input vectors are quantised before being streamed
        through the DACs, ``ceil(input_bits / dac_bits)`` cycles per VMM.
    differential:
        Encode signed weights on positive/negative column pairs.
    adc_share:
        How many columns share one ADC through a sample-and-hold mux
        (8 is the ISAAC/ReTransformer assumption).
    wire_resistance_ohm:
        Interconnect resistance of one wordline/bitline segment between
        adjacent cells.  0 (default) disables the IR-drop model; a typical
        value for scaled metal is 1-5 ohm per segment.  Cells far from the
        drivers see a lower effective voltage, which the first-order model
        captures as a per-position attenuation of the cell conductance.
    """

    rows: int = 128
    cols: int = 128
    device: RRAMDeviceConfig = field(default_factory=RRAMDeviceConfig)
    noise: NoiseConfig = field(default_factory=lambda: IDEAL_NOISE)
    adc_bits: int = 5
    dac_bits: int = 1
    input_bits: int = 8
    differential: bool = False
    adc_share: int = 8
    wire_resistance_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(
                f"crossbar dimensions must be positive, got {self.rows}x{self.cols}"
            )
        if not 1 <= self.dac_bits <= 16:
            raise ValueError(f"dac_bits must be in [1, 16], got {self.dac_bits}")
        if not 1 <= self.input_bits <= 32:
            raise ValueError(f"input_bits must be in [1, 32], got {self.input_bits}")
        if self.adc_share < 1:
            raise ValueError(f"adc_share must be >= 1, got {self.adc_share}")
        if self.wire_resistance_ohm < 0:
            raise ValueError(
                f"wire_resistance_ohm must be >= 0, got {self.wire_resistance_ohm}"
            )

    @property
    def physical_cols(self) -> int:
        """Number of physical bitlines after differential expansion."""
        return self.cols * 2 if self.differential else self.cols

    @property
    def num_cells(self) -> int:
        """Total number of RRAM cells in the array."""
        return self.rows * self.physical_cols

    @property
    def num_adcs(self) -> int:
        """Number of ADC instances (columns / adc_share, at least one)."""
        return max(1, self.physical_cols // self.adc_share)

    @property
    def input_cycles(self) -> int:
        """Number of bit-serial cycles needed to stream one input vector."""
        return -(-self.input_bits // self.dac_bits)  # ceil division


@dataclass
class AccessStats:
    """Cumulative access counters used for energy/latency accounting."""

    vmm_ops: int = 0
    array_activations: int = 0
    cell_reads: int = 0
    adc_conversions: int = 0
    dac_conversions: int = 0
    programming_pulses: int = 0

    def merge(self, other: "AccessStats") -> None:
        """Accumulate another counter set into this one."""
        self.vmm_ops += other.vmm_ops
        self.array_activations += other.array_activations
        self.cell_reads += other.cell_reads
        self.adc_conversions += other.adc_conversions
        self.dac_conversions += other.dac_conversions
        self.programming_pulses += other.programming_pulses


class AnalogCrossbar:
    """A programmable RRAM crossbar with analog VMM readout."""

    def __init__(self, config: CrossbarConfig | None = None) -> None:
        self.config = config or CrossbarConfig()
        self.device = RRAMDevice(self.config.device)
        self.noise = NoiseModel(self.config.noise)
        self.adc = ADC(bits=self.config.adc_bits)
        self.dac = DAC(bits=self.config.dac_bits)
        self.sample_hold = SampleAndHold()
        self.stats = AccessStats()
        self._weights: np.ndarray | None = None
        self._conductance_pos: np.ndarray | None = None
        self._conductance_neg: np.ndarray | None = None
        self._weight_scale: float = 1.0
        self._ir_drop_factors = self._build_ir_drop_factors()

    def _build_ir_drop_factors(self) -> np.ndarray | None:
        """Per-cell attenuation from wordline/bitline IR drop (first order).

        A cell at row ``r`` and column ``c`` sees its read voltage divided
        across the wire segments between it and the drivers/sense node:
        ``factor = 1 / (1 + g_cell_max * r_wire * (distance_to_driver +
        distance_to_sense))`` — the standard first-order approximation used
        by behavioural PIM simulators.  Returns ``None`` when disabled.
        """
        r_wire = self.config.wire_resistance_ohm
        if r_wire <= 0.0:
            return None
        g_max = self.device.config.g_max_s
        rows = np.arange(self.config.rows)[:, None]
        cols = np.arange(self.config.cols)[None, :]
        # wordline drivers sit at column 0, bitline sense amplifiers at row 0
        distance = cols + (self.config.rows - 1 - rows)
        return 1.0 / (1.0 + g_max * r_wire * distance)

    # ------------------------------------------------------------------ #
    # programming
    # ------------------------------------------------------------------ #
    @property
    def is_programmed(self) -> bool:
        """Whether a weight matrix has been written into the array."""
        return self._conductance_pos is not None

    @property
    def weights(self) -> np.ndarray:
        """The logical weight matrix most recently programmed."""
        if self._weights is None:
            raise RuntimeError("crossbar has not been programmed yet")
        return self._weights.copy()

    @property
    def weight_scale(self) -> float:
        """Scale factor mapping normalised weights back to logical values."""
        return self._weight_scale

    def program(self, weights: np.ndarray) -> None:
        """Write a logical ``rows x cols`` weight matrix into the array.

        Weights are linearly mapped onto the conductance window.  With
        ``differential=True`` negative weights go to the negative column of
        each pair; otherwise weights must be non-negative.
        """
        matrix = as_2d_float_array(weights, "weights")
        cfg = self.config
        if matrix.shape != (cfg.rows, cfg.cols):
            raise ValueError(
                f"weight matrix shape {matrix.shape} does not match crossbar "
                f"{cfg.rows}x{cfg.cols}"
            )
        if not cfg.differential and np.any(matrix < 0):
            raise ValueError(
                "negative weights require a differential crossbar (config.differential=True)"
            )

        max_abs = float(np.max(np.abs(matrix)))
        self._weight_scale = max_abs if max_abs > 0 else 1.0
        normalized = matrix / self._weight_scale  # in [-1, 1]

        g_min = self.device.config.g_min_s
        g_max = self.device.config.g_max_s
        span = g_max - g_min

        pos = np.clip(normalized, 0.0, 1.0)
        neg = np.clip(-normalized, 0.0, 1.0)

        target_pos = g_min + pos * span
        target_neg = g_min + neg * span

        # quantise to programmable levels, then apply programming variation
        target_pos = self.device.level_to_conductance(
            self.device.conductance_to_level(target_pos)
        )
        target_neg = self.device.level_to_conductance(
            self.device.conductance_to_level(target_neg)
        )
        self._conductance_pos = self.noise.apply_programming(target_pos, g_min, g_max)
        self._conductance_neg = (
            self.noise.apply_programming(target_neg, g_min, g_max)
            if cfg.differential
            else None
        )
        self._weights = matrix.copy()
        self.stats.programming_pulses += int(matrix.size) * (2 if cfg.differential else 1)

    # ------------------------------------------------------------------ #
    # compute
    # ------------------------------------------------------------------ #
    def matvec(self, inputs: np.ndarray, quantize_output: bool = True) -> np.ndarray:
        """In-situ VMM: returns an estimate of ``inputs @ W``.

        The input vector is quantised to ``input_bits`` and streamed through
        the DACs in ``input_cycles`` bit-serial slices; per-cycle bitline
        currents pass through the column ADCs and are accumulated with the
        appropriate binary weight — exactly the shift-and-add dataflow of
        ISAAC-style PIM tiles.

        Parameters
        ----------
        inputs:
            Length-``rows`` non-negative vector in logical units.
        quantize_output:
            When ``True`` (default) the per-cycle currents pass through the
            ADCs, adding quantisation error exactly as the hardware would.
            ``False`` gives the noiseless analog result (useful to isolate
            error sources in tests).
        """
        if not self.is_programmed:
            raise RuntimeError("crossbar must be programmed before matvec")
        vector = as_1d_float_array(inputs, "inputs")
        cfg = self.config
        if vector.shape[0] != cfg.rows:
            raise ValueError(
                f"input length {vector.shape[0]} does not match crossbar rows {cfg.rows}"
            )
        if np.any(vector < 0):
            raise ValueError("wordline inputs must be non-negative voltages/counts")

        v_read = self.device.config.read_voltage_v
        g_min = self.device.config.g_min_s
        g_max = self.device.config.g_max_s
        span = g_max - g_min

        in_max = float(np.max(vector))
        in_scale = in_max if in_max > 0 else 1.0
        max_input_code = (1 << cfg.input_bits) - 1
        input_codes = np.rint(vector / in_scale * max_input_code).astype(np.int64)

        dac_levels = self.dac.num_levels
        dac_max = dac_levels - 1
        full_scale = cfg.rows * v_read * span

        accumulated = np.zeros(cfg.cols, dtype=np.float64)
        remaining = input_codes.copy()
        cycle_weight = 1
        for _ in range(cfg.input_cycles):
            slice_codes = remaining % dac_levels
            remaining //= dac_levels
            voltages = self.dac.drive(slice_codes, v_read)

            g_pos = self.noise.apply_read(self._conductance_pos)
            if self._ir_drop_factors is not None:
                g_pos = g_pos * self._ir_drop_factors
            currents = voltages @ g_pos
            if cfg.differential:
                g_neg = self.noise.apply_read(self._conductance_neg)
                if self._ir_drop_factors is not None:
                    g_neg = g_neg * self._ir_drop_factors
                currents = currents - voltages @ g_neg
            else:
                currents = currents - float(np.sum(voltages)) * g_min
            currents = self.noise.perturb_current(currents)

            if quantize_output:
                if cfg.differential:
                    signs = np.sign(currents)
                    currents = signs * self.adc.convert(np.abs(currents), full_scale)
                else:
                    currents = self.adc.convert(np.clip(currents, 0.0, None), full_scale)

            accumulated += currents * cycle_weight
            cycle_weight *= dac_levels
            self._record_cycle_access()

        self.stats.vmm_ops += 1

        # Convert accumulated currents back to logical units.
        #   per-cycle current = sum_r (code_r / dac_max * v_read) * (w_rc / w_scale) * span
        #   shift-and-add over cycles reconstructs code_r = x_r / in_scale * max_input_code
        # hence logical = accumulated * dac_max * in_scale * w_scale
        #                 / (v_read * span * max_input_code)
        logical = (
            accumulated
            * dac_max
            * in_scale
            * self._weight_scale
            / (v_read * span * max_input_code)
        )
        return logical

    def ideal_matvec(self, inputs: np.ndarray) -> np.ndarray:
        """The mathematically exact ``inputs @ W`` for comparison in tests."""
        vector = as_1d_float_array(inputs, "inputs")
        return vector @ self.weights

    def _record_cycle_access(self) -> None:
        cfg = self.config
        self.stats.array_activations += 1
        self.stats.cell_reads += cfg.num_cells
        self.stats.adc_conversions += cfg.physical_cols
        self.stats.dac_conversions += cfg.rows

    # ------------------------------------------------------------------ #
    # per-access costs (aggregated by repro.arch)
    # ------------------------------------------------------------------ #
    def cycle_latency_s(self) -> float:
        """Latency of one bit-serial cycle: DAC drive + settle + muxed ADC."""
        cfg = self.config
        array_settle = self.device.read_latency_s()
        adc_time = self.adc.latency_s * cfg.adc_share  # columns muxed onto shared ADCs
        return self.dac.latency_s + array_settle + self.sample_hold.latency_s + adc_time

    def vmm_latency_s(self) -> float:
        """Latency of one full VMM (all bit-serial input cycles)."""
        return self.cycle_latency_s() * self.config.input_cycles

    def cycle_energy_j(self) -> float:
        """Energy of one bit-serial cycle (array + DACs + ADCs + S&H)."""
        cfg = self.config
        g_mid = 0.5 * (self.device.config.g_min_s + self.device.config.g_max_s)
        array_energy = float(
            np.sum(self.device.read_energy_j(np.full(cfg.num_cells, g_mid)))
        )
        dac_energy = cfg.rows * self.dac.energy_per_conversion_j
        adc_energy = cfg.physical_cols * self.adc.energy_per_conversion_j
        sh_energy = cfg.physical_cols * self.sample_hold.energy_per_sample_j
        return array_energy + dac_energy + adc_energy + sh_energy

    def vmm_energy_j(self) -> float:
        """Energy of one full VMM (all bit-serial input cycles)."""
        return self.cycle_energy_j() * self.config.input_cycles

    def programming_latency_s(self) -> float:
        """Latency of programming the full array (row-parallel writes)."""
        return self.device.write_latency_s() * self.config.rows

    def programming_energy_j(self) -> float:
        """Energy of programming the full array once."""
        return self.device.write_energy_j() * self.config.num_cells
