"""Request arrival processes for the serving simulator.

A *request* is one inference query: a sequence of ``seq_len`` tokens that
arrives at ``arrival_s`` and wants a full encoder forward pass.  Two
arrival processes cover the standard serving-evaluation methodology:

* :class:`PoissonArrivals` — the open-loop memoryless arrival stream used
  by queueing-theory cross-validation and load sweeps (exponential
  inter-arrival gaps at a configured offered rate);
* :class:`TraceArrivals` — replay of an explicit timestamp trace, for
  production traces or adversarial patterns (bursts, on/off phases) that
  no closed-form process expresses.

Both support fixed or per-request sequence lengths, so a heterogeneous
length mix can flow through the dynamic batcher (a batch pads to its
longest member).

Generation is fully vectorized: timestamps come from one cumulative sum
over exponential draws, validation runs once over the whole arrays, and
the :class:`Request` objects are then built through a trusted fast path
that skips per-instance re-validation — bit-identical to constructing
each request individually, an order of magnitude cheaper at millions of
requests.  :meth:`PoissonArrivals.shards` splits a stream into
statistically exact per-shard Poisson streams (rate ``lambda / k`` each,
seeded from one ``SeedSequence.spawn`` tree) for the sharded simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.validation import (
    require_finite,
    require_finite_array,
    require_non_negative,
    require_positive,
)

__all__ = ["Request", "PoissonArrivals", "TraceArrivals"]


@dataclass(frozen=True, slots=True)
class Request:
    """One inference query entering the serving system."""

    index: int
    arrival_s: float
    seq_len: int

    def __post_init__(self) -> None:
        require_finite(self.arrival_s, "arrival_s")
        require_non_negative(self.arrival_s, "arrival_s")
        require_finite(self.seq_len, "seq_len")
        require_positive(self.seq_len, "seq_len")


def requests_from_arrays(
    times: np.ndarray,
    lens: np.ndarray,
    indices: Sequence[int] | None = None,
) -> list[Request]:
    """Build a request list from timestamp/length arrays, validated once.

    The arrays are validated in one vectorized pass (finite, non-negative
    times; positive lengths) and the :class:`Request` objects are then
    assembled through ``object.__setattr__`` — exactly what the frozen
    dataclass's own ``__init__`` does, minus the per-instance validation
    the array pass already performed.  Output is bit-identical to calling
    ``Request(i, float(times[i]), int(lens[i]))`` in a loop.

    ``indices`` overrides the default ``0 .. n-1`` request indices, which
    shard splitters use to preserve the original stream's identities.
    """
    require_finite_array(times, "arrival timestamps")
    if times.size and times.min() < 0:
        index = int(np.argmin(times >= 0))
        raise ValueError(
            f"arrival timestamps must be non-negative, got {times[index]} "
            f"at index {index}"
        )
    if lens.size and lens.min() < 1:
        index = int(np.argmin(lens >= 1))
        raise ValueError(
            f"sequence lengths must be positive, got {lens[index]} at index {index}"
        )
    if lens.shape != times.shape:
        raise ValueError(f"got {lens.size} sequence lengths for {times.size} arrivals")
    index_list = range(times.size) if indices is None else indices
    new = Request.__new__
    set_field = object.__setattr__
    out: list[Request] = []
    append = out.append
    for i, t, length in zip(index_list, times.tolist(), lens.tolist()):
        request = new(Request)
        set_field(request, "index", i)
        set_field(request, "arrival_s", t)
        set_field(request, "seq_len", length)
        append(request)
    return out


def _draw_seq_lens(
    seq_len: int | Sequence[int], count: int, rng: np.random.Generator
) -> np.ndarray:
    """Fixed length, or a uniform draw over the given choices, per request."""
    if isinstance(seq_len, (int, np.integer)):
        require_positive(int(seq_len), "seq_len")
        return np.full(count, int(seq_len), dtype=np.int64)
    choices = np.asarray(list(seq_len), dtype=np.int64)
    if choices.size == 0:
        raise ValueError("seq_len choices must not be empty")
    if choices.min() < 1:
        raise ValueError(f"sequence lengths must be positive, got {choices.min()}")
    return rng.choice(choices, size=count)


class PoissonArrivals:
    """Open-loop Poisson arrival stream at a fixed offered rate.

    ``seq_len`` is either one length for every request or a sequence of
    lengths sampled uniformly per request.  The stream is seeded and
    therefore reproducible; the same process object always generates the
    same trace for the same ``num_requests``.  ``seed`` may be an integer
    or a :class:`numpy.random.SeedSequence` (which :meth:`shards` uses to
    derive independent sub-streams).
    """

    def __init__(
        self,
        rate_rps: float,
        seq_len: int | Sequence[int] = 128,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        require_finite(rate_rps, "rate_rps")
        require_positive(rate_rps, "rate_rps")
        self.rate_rps = float(rate_rps)
        self.seq_len = seq_len
        self.seed = seed

    def generate(self, num_requests: int, index_offset: int = 0) -> list[Request]:
        """The first ``num_requests`` arrivals of the stream.

        ``index_offset`` shifts the request indices (``offset .. offset +
        n - 1``) without touching any draw — the sharded simulator uses it
        to keep indices globally unique across per-shard streams.
        """
        require_positive(num_requests, "num_requests")
        require_non_negative(index_offset, "index_offset")
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(1.0 / self.rate_rps, size=num_requests)
        times = np.cumsum(gaps)
        lens = _draw_seq_lens(self.seq_len, num_requests, rng)
        indices = None if index_offset == 0 else range(index_offset, index_offset + num_requests)
        return requests_from_arrays(times, lens, indices)

    def shards(self, num_shards: int) -> list["PoissonArrivals"]:
        """Split into ``num_shards`` independent rate-``lambda/k`` streams.

        This is Poisson splitting done exactly: the superposition of ``k``
        independent Poisson processes at rate ``lambda / k`` is a Poisson
        process at rate ``lambda``, so each shard's stream has precisely
        the statistics the unsharded stream would deliver to it under
        random thinning.  Every shard's generator (gap draws *and* length
        draws) comes from one ``SeedSequence.spawn`` tree rooted at this
        stream's seed, so results are reproducible for any shard count and
        shards never share draws.
        """
        require_positive(num_shards, "num_shards")
        root = (
            self.seed
            if isinstance(self.seed, np.random.SeedSequence)
            else np.random.SeedSequence(self.seed)
        )
        return [
            PoissonArrivals(self.rate_rps / num_shards, seq_len=self.seq_len, seed=child)
            for child in root.spawn(num_shards)
        ]


class TraceArrivals:
    """Replay of an explicit arrival-timestamp trace.

    ``times_s`` must be non-decreasing.  ``seq_len`` is one fixed length, a
    per-request sequence matching the trace, or a set of choices sampled
    uniformly (seeded).
    """

    def __init__(
        self,
        times_s: Sequence[float],
        seq_len: int | Sequence[int] = 128,
        seed: int = 0,
        per_request_lens: Sequence[int] | None = None,
    ) -> None:
        times = np.asarray(list(times_s), dtype=np.float64)
        if times.size == 0:
            raise ValueError("an arrival trace needs at least one timestamp")
        require_finite_array(times, "arrival timestamps")
        if times.min() < 0:
            index = int(np.argmin(times >= 0))
            raise ValueError(
                f"arrival timestamps must be non-negative, got {times[index]} "
                f"at index {index}"
            )
        decreasing = np.diff(times) < 0
        if decreasing.any():
            index = int(np.argmax(decreasing)) + 1
            raise ValueError(
                f"arrival timestamps must be non-decreasing, got {times[index]} "
                f"after {times[index - 1]} at index {index}"
            )
        if per_request_lens is not None:
            if len(per_request_lens) != times.size:
                raise ValueError(
                    f"per_request_lens has {len(per_request_lens)} entries for "
                    f"{times.size} arrivals"
                )
            lens = np.asarray(list(per_request_lens), dtype=np.float64)
            require_finite_array(lens, "per_request_lens")
            if lens.min() < 1:
                index = int(np.argmin(lens >= 1))
                raise ValueError(
                    f"per_request_lens must be positive, got {lens[index]} "
                    f"at index {index}"
                )
        self.times_s = times
        self.seq_len = seq_len
        self.seed = seed
        self.per_request_lens = (
            None if per_request_lens is None else np.asarray(per_request_lens, dtype=np.int64)
        )

    def generate(self, num_requests: int | None = None) -> list[Request]:
        """The trace's requests (optionally truncated to ``num_requests``)."""
        count = self.times_s.size if num_requests is None else min(num_requests, self.times_s.size)
        require_positive(count, "num_requests")
        if self.per_request_lens is not None:
            lens = self.per_request_lens[:count]
        else:
            rng = np.random.default_rng(self.seed)
            lens = _draw_seq_lens(self.seq_len, count, rng)
        return requests_from_arrays(self.times_s[:count], lens)
