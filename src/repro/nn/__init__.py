"""NumPy attention-model substrate: layers, softmax variants, compute backends, BERT-base."""

from repro.nn.attention import MultiHeadAttention
from repro.nn.backend import AnalogBackend, ComputeBackend, IdealBackend
from repro.nn.bert import BERT_BASE, BertConfig, BertEncoderModel, BertWorkload
from repro.nn.encoder import TransformerEncoder, TransformerEncoderLayer
from repro.nn.functional import (
    gelu,
    layer_norm,
    log_softmax,
    relu,
    scaled_dot_product_attention,
    softmax,
)
from repro.nn.layers import Embedding, FeedForward, LayerNorm, Linear
from repro.nn.quantization import (
    QuantizationSpec,
    dequantize_tensor,
    fake_quantize,
    quantize_tensor,
)
from repro.nn.softmax_models import Base2Softmax, FixedPointSoftmax, ReferenceSoftmax

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "layer_norm",
    "scaled_dot_product_attention",
    "Linear",
    "LayerNorm",
    "FeedForward",
    "Embedding",
    "MultiHeadAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "BertConfig",
    "BERT_BASE",
    "BertEncoderModel",
    "BertWorkload",
    "ReferenceSoftmax",
    "FixedPointSoftmax",
    "Base2Softmax",
    "ComputeBackend",
    "IdealBackend",
    "AnalogBackend",
    "QuantizationSpec",
    "quantize_tensor",
    "dequantize_tensor",
    "fake_quantize",
]
