"""Argument-validation helpers used across the package.

Keeping these in one place gives consistent error messages and keeps the
simulation code free of repetitive boilerplate.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_power_of_two",
    "require_finite",
    "require_finite_array",
    "as_1d_float_array",
    "as_2d_float_array",
]


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def require_finite(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number.

    Comparison-based checks silently pass NaN (every comparison against NaN
    is false), so validators that gate on ``value < 0`` or ``value > 0``
    need this companion to reject NaN/inf explicitly.
    """
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    return value


def require_finite_array(values: np.ndarray, name: str) -> np.ndarray:
    """Raise ``ValueError`` naming the first offending index unless all finite."""
    finite = np.isfinite(values)
    if not finite.all():
        index = int(np.argmin(finite))
        raise ValueError(
            f"{name} must be finite, got {values.flat[index]} at index {index}"
        )
    return values


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def require_power_of_two(value: int, name: str) -> int:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value


def as_1d_float_array(values: Any, name: str) -> np.ndarray:
    """Coerce ``values`` to a 1-D float64 array, raising on higher rank."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def as_2d_float_array(values: Any, name: str) -> np.ndarray:
    """Coerce ``values`` to a 2-D float64 array, raising on other ranks."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be two-dimensional, got shape {arr.shape}")
    return arr
