"""Tests for repro.nn layers, attention, encoder, BERT workload and quantisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention
from repro.nn.bert import BERT_BASE, BertConfig, BertEncoderModel, BertWorkload
from repro.nn.encoder import TransformerEncoder, TransformerEncoderLayer
from repro.nn.layers import Embedding, FeedForward, LayerNorm, Linear
from repro.nn.quantization import QuantizationSpec, dequantize_tensor, fake_quantize, quantize_tensor
from repro.nn.softmax_models import FixedPointSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT


class TestLayers:
    def test_linear_shapes_and_flops(self, rng):
        layer = Linear(16, 8, rng=rng)
        out = layer(rng.normal(size=(2, 5, 16)))
        assert out.shape == (2, 5, 8)
        assert layer.flops(10) == 2 * 10 * 16 * 8

    def test_linear_rejects_wrong_input_size(self, rng):
        with pytest.raises(ValueError):
            Linear(16, 8)(rng.normal(size=(2, 5, 15)))

    def test_linear_no_bias(self, rng):
        layer = Linear(4, 4, rng=rng, bias=False)
        assert layer.bias is None
        assert layer(np.zeros((1, 4))).max() == 0.0

    def test_layernorm(self, rng):
        norm = LayerNorm(32)
        out = norm(rng.normal(2, 3, size=(4, 32)))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-9)
        with pytest.raises(ValueError):
            norm(rng.normal(size=(4, 31)))

    def test_feed_forward(self, rng):
        ffn = FeedForward(16, 64, rng=rng)
        assert ffn(rng.normal(size=(2, 3, 16))).shape == (2, 3, 16)
        assert ffn.flops(5) == 2 * 5 * 16 * 64 * 2

    def test_embedding(self, rng):
        emb = Embedding(vocab_size=100, max_positions=16, hidden=8, rng=rng)
        ids = rng.integers(0, 100, size=(2, 10))
        assert emb(ids).shape == (2, 10, 8)
        with pytest.raises(ValueError):
            emb(np.full((1, 20), 1))  # too long
        with pytest.raises(ValueError):
            emb(np.array([[100]]))  # out of vocab


class TestAttention:
    def test_output_shape(self, rng):
        mha = MultiHeadAttention(hidden=32, num_heads=4, rng=rng)
        out = mha(rng.normal(size=(2, 6, 32)))
        assert out.shape == (2, 6, 32)
        assert mha.last_scores.shape == (2, 4, 6, 6)
        np.testing.assert_allclose(mha.last_weights.sum(axis=-1), 1.0)

    def test_requires_divisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(hidden=30, num_heads=4)

    def test_custom_softmax_is_used(self, rng):
        x = rng.normal(size=(1, 5, 32)) * 3
        exact = MultiHeadAttention(hidden=32, num_heads=4, rng=np.random.default_rng(0))
        quantised = MultiHeadAttention(
            hidden=32,
            num_heads=4,
            rng=np.random.default_rng(0),
            softmax_fn=FixedPointSoftmax(CNEWS_FORMAT),
        )
        out_exact = exact(x)
        out_quant = quantised(x)
        assert not np.allclose(out_exact, out_quant)
        assert np.max(np.abs(out_exact - out_quant)) < 0.5

    def test_flop_counts(self):
        mha = MultiHeadAttention(hidden=64, num_heads=8)
        seq = 16
        assert mha.projection_flops(seq) == 4 * 2 * seq * 64 * 64
        assert mha.score_flops(seq) == 2 * 2 * 8 * seq * seq * 8
        assert mha.softmax_elements(seq) == 8 * seq * seq

    def test_mask_applied(self, rng):
        mha = MultiHeadAttention(hidden=16, num_heads=2, rng=rng)
        mask = np.zeros((4, 4))
        mask[:, 0] = -1e9
        mha(rng.normal(size=(1, 4, 16)), mask=mask)
        np.testing.assert_allclose(mha.last_weights[..., 0], 0.0, atol=1e-9)


class TestEncoder:
    def test_layer_and_stack_shapes(self, rng):
        layer = TransformerEncoderLayer(32, 4, 64, rng=rng)
        x = rng.normal(size=(2, 6, 32))
        assert layer(x).shape == x.shape
        encoder = TransformerEncoder(3, 32, 4, 64, rng=rng)
        assert encoder(x).shape == x.shape
        assert len(encoder.collect_attention_scores()) == 3

    def test_flops_aggregate_over_layers(self):
        encoder = TransformerEncoder(2, 32, 4, 64)
        layer_flops = TransformerEncoderLayer(32, 4, 64).flops(10)
        total = encoder.flops(10)
        for key, value in layer_flops.items():
            assert total[key] == 2 * value

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            TransformerEncoder(0, 32, 4, 64)


class TestBert:
    def test_bert_base_topology(self):
        assert BERT_BASE.num_layers == 12
        assert BERT_BASE.hidden == 768
        assert BERT_BASE.num_heads == 12
        assert BERT_BASE.intermediate == 3072
        assert BERT_BASE.head_dim == 64

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BertConfig(hidden=100, num_heads=12)
        with pytest.raises(ValueError):
            BertConfig(num_layers=0)

    def test_small_model_forward(self, rng):
        config = BertConfig(num_layers=2, hidden=32, num_heads=4, intermediate=64, vocab_size=50, max_positions=16)
        model = BertEncoderModel(config, seed=0)
        ids = rng.integers(0, 50, size=(2, 8))
        out = model(ids)
        assert out.shape == (2, 8, 32)
        assert len(model.attention_scores()) == 2

    def test_workload_counts_scale_quadratically_in_seq_for_softmax(self):
        short = BertWorkload(seq_len=128)
        long = BertWorkload(seq_len=256)
        assert long.softmax_elements() == 4 * short.softmax_elements()
        assert long.softmax_vectors() == 2 * short.softmax_vectors()

    def test_workload_matmul_breakdown_consistency(self):
        workload = BertWorkload(seq_len=128)
        breakdown = workload.breakdown()
        assert sum(breakdown.values()) == workload.total_ops()
        assert breakdown["softmax"] == workload.softmax_ops()
        assert (
            breakdown["qkv_projections"] + breakdown["attention_matmuls"] + breakdown["ffn"]
            == workload.matmul_ops()
        )

    def test_workload_known_values(self):
        # one layer, seq 128: 4 projections of 768x768 = 4*2*128*768*768 ops
        workload = BertWorkload(seq_len=128)
        assert workload.qkv_projection_ops_per_layer() == 4 * 2 * 128 * 768 * 768
        assert workload.softmax_elements_per_layer() == 12 * 128 * 128
        assert workload.attention_matmul_ops_per_layer() == 12 * 2 * 2 * 128 * 128 * 64

    def test_workload_batch_scaling(self):
        single = BertWorkload(seq_len=64, batch_size=1)
        batch = BertWorkload(seq_len=64, batch_size=4)
        assert batch.total_ops() == 4 * single.total_ops()

    def test_invalid_workload(self):
        with pytest.raises(ValueError):
            BertWorkload(seq_len=0)


class TestQuantization:
    def test_round_trip_error_bounded(self, rng):
        spec = QuantizationSpec(bits=8)
        tensor = rng.normal(size=(16, 16))
        codes, scales = quantize_tensor(tensor, spec)
        recovered = dequantize_tensor(codes, scales)
        assert np.max(np.abs(recovered - tensor)) <= float(scales) / 2 + 1e-12
        assert np.max(np.abs(codes)) <= spec.q_max

    def test_per_channel_scales(self, rng):
        spec = QuantizationSpec(bits=8, per_channel_axis=1)
        tensor = rng.normal(size=(4, 3)) * np.array([1.0, 10.0, 100.0])
        scales = spec.scales_for(tensor)
        assert scales.shape == (1, 3)
        assert scales[0, 2] > scales[0, 0]

    def test_fake_quantize_more_bits_less_error(self, rng):
        tensor = rng.normal(size=(32, 32))
        err4 = np.abs(fake_quantize(tensor, QuantizationSpec(bits=4)) - tensor).mean()
        err8 = np.abs(fake_quantize(tensor, QuantizationSpec(bits=8)) - tensor).mean()
        assert err8 < err4

    def test_zero_tensor(self):
        spec = QuantizationSpec(bits=8)
        codes, scales = quantize_tensor(np.zeros((3, 3)), spec)
        assert np.all(codes == 0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizationSpec(bits=1)
