"""Tests for repro.nn.functional and the softmax variants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    gelu,
    layer_norm,
    log_softmax,
    relu,
    scaled_dot_product_attention,
    softmax,
)
from repro.nn.softmax_models import Base2Softmax, FixedPointSoftmax, ReferenceSoftmax
from repro.utils.fixed_point import CNEWS_FORMAT, MRPC_FORMAT, FixedPointFormat


class TestFunctional:
    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(0, 5, size=(4, 7, 13))
        probs = softmax(x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_is_shift_invariant(self, rng):
        x = rng.normal(size=(3, 9))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_softmax_handles_large_values(self):
        x = np.array([[1000.0, 1000.0, -1000.0]])
        probs = softmax(x)
        assert np.all(np.isfinite(probs))
        np.testing.assert_allclose(probs[0, :2], 0.5, atol=1e-12)

    def test_softmax_axis(self, rng):
        x = rng.normal(size=(5, 6))
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0), 1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(4, 8))
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), atol=1e-10)

    def test_relu_and_gelu(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(relu(x), [0.0, 0.0, 3.0])
        g = gelu(x)
        assert g[0] < 0 and abs(g[0]) < 0.2
        assert g[1] == 0.0
        assert g[2] == pytest.approx(3.0, abs=0.01)

    def test_layer_norm_zero_mean_unit_variance(self, rng):
        x = rng.normal(3, 5, size=(2, 4, 64))
        normed = layer_norm(x)
        np.testing.assert_allclose(normed.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(normed.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_affine(self, rng):
        x = rng.normal(size=(2, 8))
        gamma = np.full(8, 2.0)
        beta = np.ones(8)
        np.testing.assert_allclose(layer_norm(x, gamma, beta), 2.0 * layer_norm(x) + 1.0)

    def test_attention_output_shape_and_weights(self, rng):
        q = rng.normal(size=(2, 5, 8))
        k = rng.normal(size=(2, 5, 8))
        v = rng.normal(size=(2, 5, 8))
        out, weights = scaled_dot_product_attention(q, k, v)
        assert out.shape == (2, 5, 8)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0)

    def test_attention_mask(self, rng):
        q = rng.normal(size=(1, 4, 8))
        mask = np.zeros((4, 4))
        mask[:, -1] = -1e9
        _, weights = scaled_dot_product_attention(q, q, q, mask=mask)
        np.testing.assert_allclose(weights[..., -1], 0.0, atol=1e-9)

    def test_attention_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            scaled_dot_product_attention(
                rng.normal(size=(1, 4, 8)), rng.normal(size=(1, 4, 7)), rng.normal(size=(1, 4, 7))
            )


class TestFixedPointSoftmax:
    def test_output_is_probability_distribution(self, score_rows):
        probs = FixedPointSoftmax(CNEWS_FORMAT)(score_rows)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    def test_close_to_exact_softmax_on_profile_scores(self, score_rows):
        probs = FixedPointSoftmax(CNEWS_FORMAT)(score_rows)
        exact = softmax(score_rows)
        assert np.max(np.abs(probs - exact)) < 0.05

    def test_more_frac_bits_is_more_accurate(self, score_rows):
        exact = softmax(score_rows)
        coarse = FixedPointSoftmax(FixedPointFormat(6, 1), lut_frac_bits=10)(score_rows)
        fine = FixedPointSoftmax(FixedPointFormat(6, 4), lut_frac_bits=10)(score_rows)
        assert np.abs(fine - exact).mean() < np.abs(coarse - exact).mean()

    def test_mrpc_format_resolution(self, score_rows):
        # 9-bit MRPC format has finer resolution than 8-bit CNEWS format
        exact = softmax(score_rows)
        err_cnews = np.abs(FixedPointSoftmax(CNEWS_FORMAT, lut_frac_bits=10)(score_rows) - exact).mean()
        err_mrpc = np.abs(FixedPointSoftmax(MRPC_FORMAT, lut_frac_bits=10)(score_rows) - exact).mean()
        assert err_mrpc <= err_cnews + 1e-12

    def test_handles_axis_argument(self, rng):
        x = rng.normal(0, 5, size=(6, 4))
        fp = FixedPointSoftmax(CNEWS_FORMAT)
        np.testing.assert_allclose(fp(x, axis=0).sum(axis=0), 1.0, atol=1e-9)

    def test_uniform_fallback_when_all_exponentials_round_to_zero(self):
        # craft a row whose non-max entries all land far below the max and
        # whose max is clipped: LUT still gives 1 for the max, so use a case
        # with quotient truncation instead
        fp = FixedPointSoftmax(CNEWS_FORMAT, quotient_bits=2)
        probs = fp(np.array([[0.0, -60.0, -60.0]]))
        assert np.all(probs >= 0)

    def test_quotient_truncation_reduces_precision(self, score_rows):
        full = FixedPointSoftmax(CNEWS_FORMAT)(score_rows)
        truncated = FixedPointSoftmax(CNEWS_FORMAT, quotient_bits=4)(score_rows)
        assert np.all(truncated <= full + 1e-12)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FixedPointSoftmax(CNEWS_FORMAT, lut_frac_bits=0)
        with pytest.raises(ValueError):
            FixedPointSoftmax(CNEWS_FORMAT, quotient_bits=-1)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_distribution_property(self, seed):
        generator = np.random.default_rng(seed)
        x = generator.normal(0, 10, size=(3, 17))
        probs = FixedPointSoftmax(CNEWS_FORMAT)(x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert np.all(probs >= 0) and np.all(probs <= 1 + 1e-12)


class TestBase2AndReference:
    def test_reference_wrapper_equals_functional(self, rng):
        x = rng.normal(size=(4, 9))
        np.testing.assert_allclose(ReferenceSoftmax()(x), softmax(x))

    def test_base2_with_scale_correction_approximates_softmax(self, score_rows):
        approx = Base2Softmax(correct_scale=True)(score_rows)
        exact = softmax(score_rows)
        assert np.max(np.abs(approx - exact)) < 0.06

    def test_base2_without_correction_differs(self, score_rows):
        corrected = Base2Softmax(correct_scale=True)(score_rows)
        raw = Base2Softmax(correct_scale=False)(score_rows)
        assert np.max(np.abs(corrected - raw)) > 1e-3

    def test_base2_outputs_distribution(self, rng):
        x = rng.normal(0, 5, size=(5, 11))
        probs = Base2Softmax()(x)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    def test_base2_invalid_bits(self):
        with pytest.raises(ValueError):
            Base2Softmax(input_bits=1)
        with pytest.raises(ValueError):
            Base2Softmax(term_bits=0)
