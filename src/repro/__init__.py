"""STAR reproduction: an RRAM-crossbar softmax engine and attention accelerator simulator.

The package reproduces "STAR: An Efficient Softmax Engine for Attention
Model with RRAM Crossbar" (DATE 2023).  Subpackages:

* :mod:`repro.core` — the paper's contribution: the RRAM softmax engine
  (CAM/SUB crossbar, CAM+LUT+VMM exponential unit, counters, divider), the
  ReTransformer-style MatMul engine, the vector-grained pipeline and the
  STAR accelerator top level.
* :mod:`repro.rram` — RRAM device, crossbar, CAM and LUT behavioural models.
* :mod:`repro.circuits` — CMOS digital-component cost models.
* :mod:`repro.arch` — area models, cost reports and design comparisons.
* :mod:`repro.nn` — NumPy BERT-base substrate with swappable softmax.
* :mod:`repro.workloads` — synthetic dataset score profiles and tasks.
* :mod:`repro.baselines` — GPU, PipeLayer, ReTransformer, Softermax and
  CMOS-softmax comparison models.
* :mod:`repro.analysis` — bit-width, accuracy, efficiency and latency
  breakdown analyses behind each table and figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
