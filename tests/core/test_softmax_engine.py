"""Tests for the full RRAM softmax engine (the paper's core contribution)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SoftmaxEngineConfig
from repro.core.softmax_engine import RRAMSoftmaxEngine
from repro.nn.functional import softmax as exact_softmax
from repro.nn.softmax_models import FixedPointSoftmax
from repro.rram.noise import NoiseConfig
from repro.utils.fixed_point import CNEWS_FORMAT, COLA_FORMAT, MRPC_FORMAT


class TestEngineNumerics:
    def test_row_output_is_distribution(self, cnews_engine, score_rows):
        probs = cnews_engine.softmax_row(score_rows[0])
        assert probs.shape == score_rows[0].shape
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(probs >= 0)

    def test_matches_functional_fixed_point_model_exactly(self, dataset_format, score_rows):
        """The crossbar-level engine and the functional model must agree bit-for-bit."""
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=dataset_format))
        functional = FixedPointSoftmax(dataset_format)
        np.testing.assert_array_equal(engine.softmax(score_rows), functional(score_rows))

    def test_close_to_exact_softmax(self, cnews_engine, score_rows):
        approx = cnews_engine.softmax(score_rows)
        exact = exact_softmax(score_rows)
        assert np.max(np.abs(approx - exact)) < 0.05

    def test_trace_intermediates_are_consistent(self, cnews_engine, score_rows):
        trace = cnews_engine.softmax_row_trace(score_rows[0])
        assert trace.max_value == pytest.approx(trace.quantized_scores.max())
        np.testing.assert_allclose(
            trace.differences, trace.max_value - trace.quantized_scores, atol=1e-12
        )
        assert trace.denominator == pytest.approx(trace.exponentials.sum())
        np.testing.assert_allclose(
            trace.probabilities, trace.exponentials / trace.denominator, atol=1e-12
        )

    def test_callable_interface_for_attention(self, cnews_engine, rng):
        scores = rng.normal(0, 5, size=(2, 3, 8))
        probs = cnews_engine(scores)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)

    def test_axis_argument(self, cnews_engine, rng):
        scores = rng.normal(0, 5, size=(6, 4))
        probs = cnews_engine.softmax(scores, axis=0)
        np.testing.assert_allclose(probs.sum(axis=0), 1.0, atol=1e-9)

    def test_invariant_to_constant_shift_within_range(self, cnews_engine):
        scores = np.array([3.0, 1.0, -2.0, 0.5])
        base = cnews_engine.softmax_row(scores)
        shifted = cnews_engine.softmax_row(scores + 8.0)
        np.testing.assert_allclose(base, shifted, atol=1e-12)

    def test_rows_processed_counter(self, cnews_engine, score_rows):
        before = cnews_engine.rows_processed
        cnews_engine.softmax(score_rows)
        assert cnews_engine.rows_processed == before + score_rows.shape[0]

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=2, max_value=24))
    @settings(max_examples=20, deadline=None)
    def test_distribution_property_random_rows(self, seed, length):
        generator = np.random.default_rng(seed)
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        scores = generator.uniform(-30, 30, size=length)
        probs = engine.softmax_row(scores)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all((probs >= 0) & (probs <= 1 + 1e-12))

    def test_argmax_preserved_when_gap_exceeds_resolution(self, rng):
        engine = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        for _ in range(10):
            scores = rng.uniform(-20, 20, size=16)
            scores[3] = scores.max() + 1.0  # gap far above the 0.25 resolution
            probs = engine.softmax_row(scores)
            assert int(np.argmax(probs)) == 3


class TestEngineWithNoise:
    def test_noise_changes_output_but_keeps_distribution(self, score_rows):
        noisy = RRAMSoftmaxEngine(
            SoftmaxEngineConfig(
                fmt=CNEWS_FORMAT, noise=NoiseConfig(read_noise_sigma=0.05, seed=3)
            )
        )
        ideal = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=CNEWS_FORMAT))
        noisy_out = noisy.softmax(score_rows)
        ideal_out = ideal.softmax(score_rows)
        assert not np.allclose(noisy_out, ideal_out)
        # analog noise perturbs numerator and denominator independently, so
        # rows only sum to one approximately
        np.testing.assert_allclose(noisy_out.sum(axis=-1), 1.0, atol=0.2)

    def test_softmax_is_noise_tolerant(self, score_rows):
        """The paper's premise: softmax tolerates analog imprecision."""
        noisy = RRAMSoftmaxEngine(
            SoftmaxEngineConfig(
                fmt=CNEWS_FORMAT,
                noise=NoiseConfig(read_noise_sigma=0.02, programming_sigma=0.02, seed=5),
            )
        )
        exact = exact_softmax(score_rows)
        assert np.max(np.abs(noisy.softmax(score_rows) - exact)) < 0.1


class TestEngineCosts:
    def test_area_much_smaller_than_a_millimetre(self, cnews_engine):
        assert cnews_engine.area_mm2() < 0.1
        assert cnews_engine.area_um2() == pytest.approx(cnews_engine.area_mm2() * 1e6)

    def test_latency_energy_scale_with_row_length(self, cnews_engine):
        assert cnews_engine.row_latency_s(256) > cnews_engine.row_latency_s(128)
        assert cnews_engine.row_energy_j(256) > cnews_engine.row_energy_j(128)
        with pytest.raises(ValueError):
            cnews_engine.row_latency_s(0)

    def test_power_is_milliwatt_scale(self, cnews_engine):
        power = cnews_engine.power_w(128)
        assert 1e-5 < power < 0.05

    def test_mrpc_format_engine_is_larger_than_cola(self):
        large = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=MRPC_FORMAT))
        small = RRAMSoftmaxEngine(SoftmaxEngineConfig(fmt=COLA_FORMAT, cam_sub_rows=128, exp_rows=128))
        assert large.area_um2() > small.area_um2()

    def test_row_ledger_components(self, cnews_engine):
        ledger = cnews_engine.row_ledger(128)
        names = {entry.name for entry in ledger}
        assert "CAM/SUB crossbar" in names
        assert any("exponential" in name for name in names)
        assert "divider" in names
        assert ledger.total_energy_j == pytest.approx(
            cnews_engine.row_energy_j(128), rel=0.35
        )

    def test_throughput(self, cnews_engine):
        assert cnews_engine.throughput_rows_per_s(128) == pytest.approx(
            1.0 / cnews_engine.row_latency_s(128)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SoftmaxEngineConfig(fmt=MRPC_FORMAT, cam_sub_rows=256)  # needs 512 levels
        with pytest.raises(ValueError):
            SoftmaxEngineConfig(lut_frac_bits=0)
        with pytest.raises(ValueError):
            SoftmaxEngineConfig(counter_bits=2)
