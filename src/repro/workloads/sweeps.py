"""Parameter-sweep descriptors used by the benchmark harness.

Each experiment in the paper is a sweep over one axis (sequence length for
the latency-breakdown observation, bit-width for the precision analysis,
design for the efficiency comparison).  The descriptors here keep the sweep
points in one place so examples, tests and benchmarks report the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "SequenceLengthSweep",
    "BitwidthSweep",
    "INTRO_SEQUENCE_SWEEP",
    "PRECISION_SWEEP",
]


@dataclass(frozen=True)
class SequenceLengthSweep:
    """Sweep over input sequence lengths for a fixed model."""

    lengths: tuple[int, ...] = (64, 128, 256, 384, 512, 768, 1024)
    batch_size: int = 1

    def __post_init__(self) -> None:
        if not self.lengths:
            raise ValueError("a sequence-length sweep needs at least one point")
        if any(length < 1 for length in self.lengths):
            raise ValueError(f"sequence lengths must be positive, got {self.lengths}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")

    def __iter__(self) -> Iterator[int]:
        return iter(self.lengths)

    def __len__(self) -> int:
        return len(self.lengths)


@dataclass(frozen=True)
class BitwidthSweep:
    """Sweep over softmax fixed-point bit-widths (integer, fractional) pairs."""

    formats: tuple[tuple[int, int], ...] = (
        (4, 1),
        (5, 1),
        (5, 2),
        (6, 2),
        (6, 3),
        (6, 4),
        (7, 4),
    )

    def __post_init__(self) -> None:
        if not self.formats:
            raise ValueError("a bit-width sweep needs at least one point")
        for integer_bits, frac_bits in self.formats:
            if integer_bits < 1 or frac_bits < 0:
                raise ValueError(
                    f"invalid format ({integer_bits}, {frac_bits}) in bit-width sweep"
                )

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.formats)

    def __len__(self) -> int:
        return len(self.formats)

    def total_bits(self) -> tuple[int, ...]:
        """Total bit count of each sweep point."""
        return tuple(integer + frac for integer, frac in self.formats)


# The sweep the intro observation (E1) uses: softmax share vs sequence length.
INTRO_SEQUENCE_SWEEP = SequenceLengthSweep()

# The sweep the precision ablation (E8) uses.
PRECISION_SWEEP = BitwidthSweep()
