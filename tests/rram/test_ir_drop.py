"""Tests for the crossbar's first-order IR-drop model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rram.crossbar import AnalogCrossbar, CrossbarConfig
from repro.rram.device import RRAMDeviceConfig


def build(wire_resistance_ohm=0.0, rows=32, cols=16):
    config = CrossbarConfig(
        rows=rows,
        cols=cols,
        adc_bits=12,
        device=RRAMDeviceConfig(bits_per_cell=5),
        wire_resistance_ohm=wire_resistance_ohm,
    )
    return AnalogCrossbar(config)


class TestIRDrop:
    def test_disabled_by_default(self):
        crossbar = build()
        assert crossbar._ir_drop_factors is None

    def test_factors_shape_and_range(self):
        crossbar = build(wire_resistance_ohm=5.0)
        factors = crossbar._ir_drop_factors
        assert factors.shape == (32, 16)
        assert np.all(factors > 0) and np.all(factors <= 1.0)

    def test_far_cells_are_attenuated_more(self):
        crossbar = build(wire_resistance_ohm=5.0)
        factors = crossbar._ir_drop_factors
        # the cell closest to both driver and sense node suffers the least
        assert factors.max() == factors[-1, 0]
        # the farthest cell suffers the most
        assert factors.min() == factors[0, -1]

    def test_ir_drop_reduces_output_magnitude(self, rng):
        weights = rng.uniform(0.1, 1.0, size=(32, 16))
        inputs = rng.uniform(0.1, 1.0, size=32)
        clean = build(wire_resistance_ohm=0.0)
        droopy = build(wire_resistance_ohm=10.0)
        clean.program(weights)
        droopy.program(weights)
        out_clean = clean.matvec(inputs, quantize_output=False)
        out_droopy = droopy.matvec(inputs, quantize_output=False)
        assert np.all(out_droopy <= out_clean + 1e-12)
        assert out_droopy.sum() < out_clean.sum()

    def test_error_grows_with_wire_resistance(self, rng):
        weights = rng.uniform(0.1, 1.0, size=(32, 16))
        inputs = rng.uniform(0.1, 1.0, size=32)
        errors = []
        for r_wire in (1.0, 20.0):
            crossbar = build(wire_resistance_ohm=r_wire)
            crossbar.program(weights)
            ideal = crossbar.ideal_matvec(inputs)
            out = crossbar.matvec(inputs, quantize_output=False)
            errors.append(np.linalg.norm(out - ideal))
        assert errors[1] > errors[0]

    def test_small_wire_resistance_keeps_result_accurate(self, rng):
        crossbar = build(wire_resistance_ohm=1.0)
        weights = rng.uniform(0.1, 1.0, size=(32, 16))
        crossbar.program(weights)
        inputs = rng.uniform(0.1, 1.0, size=32)
        ideal = crossbar.ideal_matvec(inputs)
        out = crossbar.matvec(inputs, quantize_output=False)
        relative = np.abs(out - ideal) / np.max(np.abs(ideal))
        assert np.max(relative) < 0.1

    def test_negative_wire_resistance_rejected(self):
        with pytest.raises(ValueError):
            CrossbarConfig(wire_resistance_ohm=-1.0)
