"""E1 — Section I observation: softmax share of BERT-base GPU latency.

Regenerates the sequence-length sweep behind the paper's claim that the
softmax latency exceeds the matrix multiplications at sequence length 512,
where it reaches 59.20 % of execution time.
"""

from __future__ import annotations

from repro.analysis.breakdown import LatencyBreakdownAnalyzer
from repro.nn.bert import BertWorkload

from conftest import record


def test_bench_softmax_share_sweep(benchmark, paper_values):
    """Softmax share of GPU execution time across sequence lengths."""
    analyzer = LatencyBreakdownAnalyzer()

    rows = benchmark(analyzer.sweep_rows)

    shares = {row.seq_len: row.softmax_share for row in rows}
    record(
        benchmark,
        softmax_share_by_seq_len={k: round(v, 4) for k, v in shares.items()},
        crossover_length=analyzer.crossover_length(),
        paper_share_at_512=paper_values["softmax_share_at_512"],
        measured_share_at_512=round(shares[512], 4),
    )
    # shape checks: monotone growth and a crossover at 512
    ordered = [shares[k] for k in sorted(shares)]
    assert ordered == sorted(ordered)
    assert shares[512] > 0.5
    assert shares[384] < 0.5


def test_bench_gpu_latency_at_512(benchmark):
    """Absolute GPU latency model evaluation at the paper's crossover length."""
    workload = BertWorkload(seq_len=512)
    analyzer = LatencyBreakdownAnalyzer()

    row = benchmark(analyzer.row_for, 512)

    record(
        benchmark,
        matmul_ms=round(row.matmul_s * 1e3, 3),
        softmax_ms=round(row.softmax_s * 1e3, 3),
        total_ms=round(row.total_s * 1e3, 3),
        softmax_share=round(row.softmax_share, 4),
        workload_total_gops=round(workload.total_ops() / 1e9, 2),
    )
    assert row.softmax_s > row.matmul_s
