"""The sharded simulator: splitting, seeding, merging and their invariants.

Covers the three legs the scale-out stands on: the front-end splitters
partition traffic without loss or duplication, per-shard seeding is one
``SeedSequence.spawn`` tree (same seed + shard count ⇒ identical merged
report, serial or parallel), and :meth:`ServingReport.merge` is exact —
pooled latency samples, summed ledgers, offset chip/batch ids — plus
order-insensitive on every scalar metric and Little's-law consistent
(the hypothesis property leg).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    FaultInjector,
    FixedServiceModel,
    PoissonArrivals,
    Profiler,
    RetryPolicy,
    ServingReport,
    ServingSimulator,
    ShardedServingSimulator,
    SPLIT_POLICIES,
    TabulatedServiceModel,
)
from repro.serving.sharded import _simulate_shard
from repro.utils.stats import percentile


def small_fleet(num_chips: int = 4, service_s: float = 1e-3) -> ChipFleet:
    return ChipFleet(
        FixedServiceModel(service_s, request_energy_j=1e-5, idle_power_w=0.1),
        num_chips=num_chips,
    )


def sharded(num_chips: int = 4, num_shards: int = 4, **kwargs) -> ShardedServingSimulator:
    kwargs.setdefault("parallel", False)  # serial in-process: same results, coverable
    return ShardedServingSimulator(small_fleet(num_chips), num_shards=num_shards, **kwargs)


class TestSplitters:
    def test_round_robin_partitions_without_loss(self):
        requests = PoissonArrivals(2000.0, seed=1).generate(101)
        report = sharded().run(requests, policy="round_robin")
        assert report.num_requests == 101
        assert sorted(report.requests.index.tolist()) == [r.index for r in requests]

    def test_round_robin_interleaves(self):
        requests = PoissonArrivals(2000.0, seed=1).generate(40)
        simulator = sharded(num_shards=4)
        simulator.run(requests, policy="round_robin")
        for shard, shard_report in enumerate(simulator.last_reports):
            assert shard_report.requests.index.tolist() == list(range(shard, 40, 4))

    def test_seq_hash_is_sticky_per_length(self):
        requests = PoissonArrivals(2000.0, seq_len=[64, 128, 256, 512], seed=2).generate(200)
        simulator = sharded(num_shards=2)
        simulator.run(requests, policy="seq_hash")
        shard_of_len: dict[int, int] = {}
        for shard, shard_report in enumerate(simulator.last_reports):
            for seq_len in shard_report.requests.seq_len.tolist():
                assert shard_of_len.setdefault(seq_len, shard) == shard

    def test_random_split_partitions_without_loss(self):
        requests = PoissonArrivals(2000.0, seed=3).generate(97)
        report = sharded(num_shards=3, num_chips=3).run(requests, policy="random", seed=11)
        assert sorted(report.requests.index.tolist()) == [r.index for r in requests]

    def test_unknown_policy_rejected(self):
        requests = PoissonArrivals(2000.0, seed=1).generate(8)
        with pytest.raises(ValueError, match="policy"):
            sharded().run(requests, policy="by-vibes")
        assert set(SPLIT_POLICIES) == {"round_robin", "seq_hash", "random"}

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty request stream"):
            sharded().run([])

    def test_empty_shard_still_counts_its_chips(self):
        # 3 requests round-robin over 4 shards: shard 3 serves nothing but
        # its chip must still appear in the merged fleet
        requests = PoissonArrivals(2000.0, seed=1).generate(3)
        report = sharded().run(requests, policy="round_robin")
        assert report.num_requests == 3
        assert report.num_chips == 4
        assert len(report.chip_busy_s) == 4


class TestShardValidation:
    def test_more_shards_than_chips_rejected(self):
        with pytest.raises(ValueError, match="at least one chip per shard"):
            ShardedServingSimulator(small_fleet(2), num_shards=3)

    def test_fewer_requests_than_shards_rejected(self):
        with pytest.raises(ValueError, match="split"):
            sharded().run_poisson(PoissonArrivals(100.0, seed=0), 3)

    def test_uneven_chip_partition(self):
        simulator = sharded(num_chips=7, num_shards=3)
        sizes = [s.stop - s.start for s in simulator._chip_slices()]
        assert sizes == [3, 2, 2]
        report = simulator.run_poisson(PoissonArrivals(3000.0, seed=5), 300)
        assert report.num_chips == 7


class TestDeterminism:
    def test_same_seed_same_merged_report(self):
        arrivals = PoissonArrivals(3000.0, seq_len=[64, 128], seed=42)
        first = sharded().run_poisson(arrivals, 2000)
        second = sharded().run_poisson(arrivals, 2000)
        assert first.requests == second.requests
        assert first.batches == second.batches
        assert first.chip_busy_s == second.chip_busy_s

    def test_serial_matches_parallel(self):
        arrivals = PoissonArrivals(3000.0, seq_len=[64, 128], seed=7)
        serial = sharded(parallel=False).run_poisson(arrivals, 1000)
        parallel = sharded(parallel=True).run_poisson(arrivals, 1000)
        assert serial.requests == parallel.requests
        assert serial.batches == parallel.batches

    def test_shard_streams_are_independent(self):
        # distinct spawn children: no two shards may replay the same gaps
        streams = PoissonArrivals(1000.0, seed=0).shards(4)
        traces = [tuple(r.arrival_s for r in s.generate(50)) for s in streams]
        assert len(set(traces)) == 4

    def test_poisson_indices_globally_unique(self):
        report = sharded().run_poisson(PoissonArrivals(2000.0, seed=9), 1003)
        indices = report.requests.index.tolist()
        assert sorted(indices) == list(range(1003))

    def test_fault_aware_sharded_reproducible(self):
        simulator = sharded(
            num_shards=2,
            num_chips=4,
            faults=FaultInjector(mtbf_s=0.2, detection_s=1e-3, repair_s=1e-3, seed=3),
            retry=RetryPolicy(max_attempts=3),
        )
        arrivals = PoissonArrivals(3000.0, seed=1)
        first = simulator.run_poisson(arrivals, 1500)
        second = simulator.run_poisson(arrivals, 1500)
        assert first.requests == second.requests
        assert first.num_failures == second.num_failures
        assert first.faults_enabled

    def test_fault_seeds_differ_across_shards(self):
        simulator = sharded(
            num_shards=2, faults=FaultInjector(mtbf_s=0.5, seed=3)
        )
        injectors = simulator._shard_faults()
        rngs = [np.random.default_rng(i.seed) for i in injectors]
        assert rngs[0].exponential(1.0) != rngs[1].exponential(1.0)


class TestMerge:
    def shard_reports(self, num_shards: int = 3, seed: int = 0) -> list[ServingReport]:
        simulator = sharded(num_shards=num_shards, num_chips=num_shards)
        simulator.run_poisson(PoissonArrivals(2000.0, seq_len=[64, 128], seed=seed), 900)
        return simulator.last_reports

    def test_merged_percentiles_match_pooled_samples(self):
        reports = self.shard_reports()
        merged = ServingReport.merge(reports)
        pooled = np.concatenate([r.requests.latency_s for r in reports])
        for q in (50.0, 95.0, 99.0):
            assert merged.latency_percentile_s(q) == pytest.approx(
                float(percentile(pooled, q)), rel=1e-12
            )

    def test_ledgers_sum_exactly(self):
        reports = self.shard_reports()
        merged = ServingReport.merge(reports)
        assert merged.num_requests == sum(r.num_requests for r in reports)
        assert merged.num_batches == sum(r.num_batches for r in reports)
        assert merged.energy_j == pytest.approx(
            sum(r.energy_j for r in reports), rel=1e-12
        )
        assert merged.chip_busy_s == tuple(
            busy for r in reports for busy in r.chip_busy_s
        )
        assert merged.queue_peak == max(r.queue_peak for r in reports)
        assert merged.num_shards == len(reports)

    def test_chip_and_batch_ids_are_offset(self):
        reports = self.shard_reports(num_shards=2)
        merged = ServingReport.merge(reports)
        first_chips = set(merged.requests.chip[: reports[0].num_requests].tolist())
        assert first_chips <= set(range(reports[0].num_chips))
        second_chips = set(merged.requests.chip[reports[0].num_requests :].tolist())
        assert second_chips <= {
            reports[0].num_chips + c for c in range(reports[1].num_chips)
        }
        # batch indices stay consistent between the request and batch tables
        for record in merged.requests:
            batch = merged.batches[record.batch_index]
            assert batch.chip == record.chip
            assert batch.dispatch_s == record.dispatch_s

    def test_merge_single_report_is_identity(self):
        report = self.shard_reports(num_shards=1, seed=4)[0]
        merged = ServingReport.merge([report])
        assert merged.requests == report.requests
        assert merged.num_chips == report.num_chips

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError, match="empty sequence"):
            ServingReport.merge([])

    def test_merge_mixed_deadlines_rejected(self):
        reports = self.shard_reports(num_shards=2)
        from dataclasses import replace

        with pytest.raises(ValueError, match="deadline"):
            ServingReport.merge([reports[0], replace(reports[1], deadline_s=0.5)])


class TestMergeProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_shards=st.integers(min_value=2, max_value=4),
        order_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_merge_is_order_insensitive(self, seed, num_shards, order_seed):
        simulator = sharded(num_shards=num_shards, num_chips=num_shards)
        simulator.run_poisson(
            PoissonArrivals(2000.0, seq_len=[64, 256], seed=seed), 60 * num_shards
        )
        reports = simulator.last_reports
        shuffled = list(reports)
        np.random.default_rng(order_seed).shuffle(shuffled)
        merged = ServingReport.merge(reports)
        remerged = ServingReport.merge(shuffled)
        for metric in (
            "num_requests",
            "num_batches",
            "throughput_rps",
            "p50_latency_s",
            "p99_latency_s",
            "mean_latency_s",
            "mean_utilization",
            "energy_j",
            "queue_peak",
        ):
            assert getattr(merged, metric) == pytest.approx(
                getattr(remerged, metric), rel=1e-9
            ), metric

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        num_shards=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_littles_law_holds_on_merged_report(self, seed, num_shards):
        simulator = sharded(num_shards=num_shards, num_chips=num_shards)
        merged = simulator.run_poisson(
            PoissonArrivals(1500.0, seed=seed), 80 * num_shards
        )
        # L = lambda * W over the observation window, by construction of
        # the time-averaged occupancy metrics
        expected = merged.throughput_rps * merged.mean_latency_s
        assert merged.mean_in_system == pytest.approx(expected, rel=1e-9)


class TestTabulatedPricing:
    def test_table_matches_base_model(self):
        base = FixedServiceModel(2e-3, request_energy_j=3e-5)
        table = TabulatedServiceModel.tabulate(base, [1, 2, 4], [64, 128])
        for batch in (1, 2, 4):
            for seq_len in (64, 128):
                assert table.batch_latency_s(batch, seq_len) == base.batch_latency_s(
                    batch, seq_len
                )
                assert table.batch_energy_j(batch, seq_len) == base.batch_energy_j(
                    batch, seq_len
                )

    def test_missing_shape_fails_loudly(self):
        table = TabulatedServiceModel.tabulate(FixedServiceModel(1e-3), [1], [128])
        with pytest.raises(KeyError, match="not.*tabulated"):
            table.batch_latency_s(2, 128)

    def test_homogeneous_fleet_shares_one_table(self):
        fleet = small_fleet(4).tabulated([1, 2], [128])
        assert len({id(m) for m in fleet.models}) == 1
        assert isinstance(fleet.service_model, TabulatedServiceModel)

    def test_prewarmed_sharded_run_matches_unwarmed(self):
        arrivals = PoissonArrivals(2000.0, seed=6)
        plain = sharded().run_poisson(arrivals, 600)
        warmed = sharded().prewarm([1], [128]).run_poisson(arrivals, 600)
        assert plain.requests == warmed.requests
        assert plain.batches == warmed.batches

    def test_sharded_matches_single_process_on_same_partition(self):
        # the correctness anchor: simulating the shards in-process with
        # plain ServingSimulators reproduces the sharded run bit for bit
        arrivals = PoissonArrivals(3000.0, seq_len=[64, 128], seed=8)
        simulator = sharded(num_shards=4)
        merged = simulator.run_poisson(arrivals, 1200)
        reports = []
        for stream, count, offset in zip(
            arrivals.shards(4), (300, 300, 300, 300), (0, 300, 600, 900)
        ):
            single = ServingSimulator(small_fleet(1))
            reports.append(single.run(stream.generate(count, offset)))
        by_hand = ServingReport.merge(reports)
        assert merged.requests == by_hand.requests
        assert merged.batches == by_hand.batches


class TestProfiling:
    def test_last_profile_populated(self):
        simulator = ServingSimulator(small_fleet(1))
        report = simulator.run(PoissonArrivals(500.0, seed=0).generate(50), label="unit")
        profile = simulator.last_profile
        assert profile is not None and profile.label == "unit"
        assert profile.num_requests == report.num_requests
        assert profile.events_popped == profile.events_scheduled > 0
        assert profile.dispatch_calls > 0
        assert profile.wall_s > 0
        assert profile.requests_per_s > 0

    def test_sharded_collects_shard_profiles(self):
        simulator = sharded(num_shards=2, num_chips=2)
        simulator.run_poisson(PoissonArrivals(1000.0, seed=1), 200)
        assert len(simulator.last_profiles) == 2
        assert {p.label for p in simulator.last_profiles} == {"shard 0/2", "shard 1/2"}

    def test_profiler_gating_and_table(self):
        profiler = Profiler()
        simulator = ServingSimulator(small_fleet(1))
        requests = PoissonArrivals(500.0, seed=0).generate(20)
        simulator.run(requests)
        profiler.record(simulator.last_profile)  # disabled: dropped
        assert profiler.runs == []
        assert "no runs" in profiler.format_table()
        profiler.enabled = True
        simulator.run(requests)
        profiler.record(simulator.last_profile)
        assert len(profiler.runs) == 1
        assert "serving" in profiler.format_table()
        profiler.clear()
        assert profiler.runs == []

    def test_worker_entry_point_runs_standalone(self):
        # the function a pool pickles must work when called directly
        from repro.serving.sharded import _ShardTask

        task = _ShardTask(
            shard=0,
            num_shards=1,
            models=(FixedServiceModel(1e-3),),
            speedups=(1.0,),
            batcher=DynamicBatcher(max_batch_size=2, max_wait_s=1e-3),
            faults=None,
            retry=None,
            admission=None,
            arrivals=PoissonArrivals(1000.0, seed=0),
            num_requests=100,
        )
        report, profile = _simulate_shard(task)
        assert report.num_requests == 100
        assert profile is not None and profile.label == "shard 0/1"
