"""Computing-efficiency comparison across designs (the paper's Fig. 3).

Builds the four designs the paper compares — the Titan RTX GPU, PipeLayer,
ReTransformer and STAR — runs the same BERT-base workload through each of
their cost models and assembles a :class:`repro.arch.report.ComparisonTable`
whose efficiency ratios are the bars of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.report import ComparisonTable, CostReport
from repro.baselines.gpu import GPUModel
from repro.baselines.pipelayer import PipeLayerModel
from repro.baselines.retransformer import ReTransformerModel
from repro.core.accelerator import STARAccelerator
from repro.nn.bert import BertWorkload

__all__ = ["EfficiencyComparison", "Figure3Results"]


@dataclass(frozen=True)
class Figure3Results:
    """The quantities Fig. 3 reports."""

    table: ComparisonTable
    star_efficiency: float
    gain_over_gpu: float
    gain_over_pipelayer: float
    gain_over_retransformer: float

    def summary(self) -> dict[str, float]:
        """Flat dictionary used by the benchmark harness."""
        return {
            "star_gops_per_watt": self.star_efficiency,
            "gain_over_gpu": self.gain_over_gpu,
            "gain_over_pipelayer": self.gain_over_pipelayer,
            "gain_over_retransformer": self.gain_over_retransformer,
        }


class EfficiencyComparison:
    """Runs the Fig. 3 comparison on a configurable workload."""

    def __init__(
        self,
        workload: BertWorkload | None = None,
        gpu: GPUModel | None = None,
        pipelayer: PipeLayerModel | None = None,
        retransformer: ReTransformerModel | None = None,
        star: STARAccelerator | None = None,
    ) -> None:
        self.workload = workload or BertWorkload(seq_len=128)
        self.gpu = gpu or GPUModel()
        self.pipelayer = pipelayer or PipeLayerModel()
        self.retransformer = retransformer or ReTransformerModel()
        self.star = star or STARAccelerator()

    def reports(self) -> list[CostReport]:
        """Cost reports of all four designs on the shared workload."""
        return [
            self.gpu.cost_report(self.workload),
            self.pipelayer.cost_report(self.workload),
            self.retransformer.cost_report(self.workload),
            self.star.cost_report(self.workload),
        ]

    def run(self) -> Figure3Results:
        """Execute the comparison and compute the Fig. 3 ratios."""
        table = ComparisonTable(self.reports())
        star_name = self.star.name
        return Figure3Results(
            table=table,
            star_efficiency=table.get(star_name).computing_efficiency_gops_per_watt,
            gain_over_gpu=table.efficiency_gain(star_name, self.gpu.config.name),
            gain_over_pipelayer=table.efficiency_gain(star_name, self.pipelayer.name),
            gain_over_retransformer=table.efficiency_gain(star_name, self.retransformer.name),
        )
