"""Digital divider performing the final softmax normalisation.

The divider is the only non-crossbar arithmetic in STAR's softmax engine:
it divides every LUT output ``e^{x_i - x_max}`` by the denominator produced
by the VMM crossbar.  It is modelled as a sequential (one-quotient-bit-per-
cycle) divider whose cost comes from
:class:`~repro.circuits.components.Divider`.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.components import Divider
from repro.circuits.technology import DEFAULT_TECHNOLOGY, TechnologyNode
from repro.utils.validation import as_1d_float_array

__all__ = ["DividerUnit"]


class DividerUnit:
    """Fixed-point divider with configurable quotient precision."""

    def __init__(
        self,
        bits: int = 16,
        quotient_frac_bits: int = 0,
        tech: TechnologyNode = DEFAULT_TECHNOLOGY,
    ) -> None:
        if bits < 4:
            raise ValueError(f"divider width must be >= 4 bits, got {bits}")
        if quotient_frac_bits < 0:
            raise ValueError(
                f"quotient_frac_bits must be >= 0, got {quotient_frac_bits}"
            )
        self.bits = bits
        self.quotient_frac_bits = quotient_frac_bits
        self._cost = Divider.cost(bits, tech)
        self.divide_count = 0

    # ------------------------------------------------------------------ #
    # functional behaviour
    # ------------------------------------------------------------------ #
    def divide(self, numerators: np.ndarray, denominator: float) -> np.ndarray:
        """Quotients ``numerators / denominator``.

        With ``quotient_frac_bits == 0`` the quotient keeps full precision;
        otherwise it is truncated to that many fractional bits, modelling a
        narrow hardware quotient.  A zero (or non-positive) denominator
        saturates to a uniform distribution, mirroring what the hardware's
        saturation logic would emit.
        """
        values = as_1d_float_array(numerators, "numerators")
        self.divide_count += values.size
        if denominator <= 0.0:
            return np.full_like(values, 1.0 / values.size)
        quotients = values / denominator
        return self._truncate(quotients)

    def divide_batch(
        self,
        numerators: np.ndarray,
        denominators: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Row-wise quotients of a ``(num_rows, n)`` block.

        Vectorized counterpart of :meth:`divide`: each row of ``numerators``
        is divided by its entry of ``denominators``; rows with a zero (or
        non-positive) denominator saturate to the uniform distribution.
        Bit-identical to calling :meth:`divide` row by row.  ``out`` (which
        may alias ``numerators``) receives the quotients when every
        denominator is positive and no truncation is configured; callers own
        the aliasing trade-off.
        """
        block = np.asarray(numerators, dtype=np.float64)
        if block.ndim != 2:
            raise ValueError(
                f"numerators must be a 2D (num_rows, n) block, got shape {block.shape}"
            )
        denoms = np.asarray(denominators, dtype=np.float64).ravel()
        if denoms.size != block.shape[0]:
            raise ValueError(
                f"expected {block.shape[0]} denominators, got {denoms.size}"
            )
        if block.shape[0] > 0 and block.shape[1] < 1:
            raise ValueError("numerator rows must not be empty")
        self.divide_count += block.size
        if block.size == 0:
            return block.copy()
        positive = denoms > 0.0
        if positive.all():
            if out is not None and self.quotient_frac_bits == 0:
                return np.divide(block, denoms[:, None], out=out)
            return self._truncate(block / denoms[:, None])
        safe = np.where(positive, denoms, 1.0)
        quotients = self._truncate(block / safe[:, None])
        # the saturated uniform output is not truncated, exactly as divide()
        return np.where(positive[:, None], quotients, 1.0 / block.shape[1])

    def _truncate(self, quotients: np.ndarray) -> np.ndarray:
        if self.quotient_frac_bits > 0:
            scale = float(1 << self.quotient_frac_bits)
            quotients = np.floor(quotients * scale) / scale
        return quotients

    # ------------------------------------------------------------------ #
    # costs
    # ------------------------------------------------------------------ #
    def area_um2(self) -> float:
        """Divider area."""
        return self._cost.area_um2

    def power_w(self) -> float:
        """Divider power while active."""
        return self._cost.power_w

    def divide_latency_s(self) -> float:
        """Latency of one division (``bits`` cycles for the sequential divider)."""
        return self._cost.latency_s

    def divide_energy_j(self) -> float:
        """Energy of one division."""
        return self._cost.energy_per_op_j
