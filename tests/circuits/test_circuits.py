"""Tests for repro.circuits: components, technology scaling and the energy ledger."""

from __future__ import annotations

import pytest

from repro.circuits.components import (
    Adder,
    Comparator,
    Counter,
    Divider,
    ExponentialUnit,
    MaxComparatorTree,
    Multiplier,
    OrGateArray,
    Register,
    SRAMBuffer,
    Subtractor,
)
from repro.circuits.energy import EnergyLedger
from repro.circuits.technology import DEFAULT_TECHNOLOGY, REFERENCE_NODE_NM, TechnologyNode


class TestTechnology:
    def test_reference_node_is_identity(self):
        tech = TechnologyNode(feature_nm=REFERENCE_NODE_NM)
        assert tech.area_scale == pytest.approx(1.0)
        assert tech.power_scale == pytest.approx(1.0)
        assert tech.scale_area_um2(100.0) == pytest.approx(100.0)

    def test_smaller_node_shrinks_area_quadratically(self):
        tech = TechnologyNode(feature_nm=16.0)
        assert tech.area_scale == pytest.approx(0.25)
        assert tech.power_scale == pytest.approx(0.5)

    def test_cycle_time(self):
        assert TechnologyNode(clock_hz=2e9).cycle_time_s == pytest.approx(0.5e-9)

    def test_invalid_node(self):
        with pytest.raises(ValueError):
            TechnologyNode(feature_nm=0)


class TestComponents:
    @pytest.mark.parametrize(
        "component",
        [Adder, Subtractor, Comparator, Register, Counter, Divider],
    )
    def test_linear_components_scale_with_bits(self, component):
        small = component.cost(8)
        large = component.cost(16)
        assert large.area_um2 == pytest.approx(2 * small.area_um2)
        assert large.power_w == pytest.approx(2 * small.power_w)
        assert small.area_um2 > 0 and small.power_w > 0

    def test_divider_latency_is_bit_serial(self):
        assert Divider.cost(16).latency_s == pytest.approx(16 * DEFAULT_TECHNOLOGY.cycle_time_s)

    def test_multiplier_scales_with_product_of_widths(self):
        base = Multiplier.cost(8, 8)
        wide = Multiplier.cost(16, 8)
        square = Multiplier.cost(16, 16)
        assert wide.area_um2 == pytest.approx(2 * base.area_um2)
        assert square.area_um2 == pytest.approx(4 * base.area_um2)

    def test_exponential_unit_is_much_bigger_than_adder(self):
        exp = ExponentialUnit.cost(16)
        add = Adder.cost(16)
        assert exp.area_um2 > 10 * add.area_um2
        assert exp.power_w > add.power_w

    def test_max_tree_uses_n_minus_one_comparators(self):
        tree_4 = MaxComparatorTree.cost(4, 8)
        tree_8 = MaxComparatorTree.cost(8, 8)
        assert tree_8.area_um2 / tree_4.area_um2 == pytest.approx(7 / 3)

    def test_max_tree_latency_is_logarithmic(self):
        cycle = DEFAULT_TECHNOLOGY.cycle_time_s
        assert MaxComparatorTree.cost(128, 8).latency_s == pytest.approx(7 * cycle)

    def test_or_gate_array(self):
        cost = OrGateArray.cost(512)
        assert cost.area_um2 > 0
        with pytest.raises(ValueError):
            OrGateArray.cost(0)

    def test_sram_scales_with_bits(self):
        small = SRAMBuffer.cost(1024)
        large = SRAMBuffer.cost(4096)
        assert large.area_um2 > 3 * small.area_um2

    def test_scaled_multiplies_area_and_power_not_latency(self):
        base = Adder.cost(8)
        scaled = base.scaled(4)
        assert scaled.area_um2 == pytest.approx(4 * base.area_um2)
        assert scaled.power_w == pytest.approx(4 * base.power_w)
        assert scaled.latency_s == base.latency_s
        with pytest.raises(ValueError):
            base.scaled(0)

    def test_invalid_widths_raise(self):
        with pytest.raises(ValueError):
            Adder.cost(0)
        with pytest.raises(ValueError):
            Multiplier.cost(0, 4)
        with pytest.raises(ValueError):
            MaxComparatorTree.cost(1, 8)


class TestEnergyLedger:
    def test_record_and_totals(self):
        ledger = EnergyLedger()
        ledger.record("a", energy_j=1e-9, latency_s=1e-6)
        ledger.record("a", energy_j=1e-9, latency_s=1e-6)
        ledger.record("b", energy_j=5e-10, latency_s=2e-6)
        assert ledger.total_energy_j == pytest.approx(2.5e-9)
        assert ledger.total_latency_s == pytest.approx(4e-6)
        assert len(ledger) == 2

    def test_area_is_idempotent_per_component(self):
        ledger = EnergyLedger()
        ledger.record_area("block", 100.0)
        ledger.record_area("block", 100.0)
        assert ledger.total_area_um2 == pytest.approx(100.0)

    def test_average_power(self):
        ledger = EnergyLedger()
        ledger.record("x", energy_j=2e-6, latency_s=1e-3)
        assert ledger.average_power_w() == pytest.approx(2e-3)

    def test_average_power_requires_latency(self):
        ledger = EnergyLedger()
        ledger.record("x", energy_j=1e-9)
        with pytest.raises(ValueError):
            ledger.average_power_w()

    def test_merge(self):
        a = EnergyLedger()
        a.record("x", energy_j=1.0)
        b = EnergyLedger()
        b.record("x", energy_j=2.0)
        b.record("y", energy_j=3.0)
        b.record_area("y", 50.0)
        a.merge(b)
        assert a.total_energy_j == pytest.approx(6.0)
        assert a.entries["y"].area_um2 == pytest.approx(50.0)

    def test_breakdown_sorted_by_energy(self):
        ledger = EnergyLedger()
        ledger.record("small", energy_j=1.0)
        ledger.record("big", energy_j=10.0)
        rows = ledger.breakdown()
        assert rows[0][0] == "big"

    def test_format_table_contains_total(self):
        ledger = EnergyLedger()
        ledger.record("x", energy_j=1e-9, latency_s=1e-9)
        table = ledger.format_table()
        assert "TOTAL" in table
        assert "x" in table
