"""Tiered-fidelity serving: executed schedules priced at fleet throughput.

Run with:  python examples/tiered_fidelity_serving.py

The analytic STAR cost model prices a dispatch in microseconds but
assumes a perfectly steady pipeline; the executed scheduler replays the
real row-by-row pipeline (and can jitter its stage timings) but costs
milliseconds per call — far too slow to price every dispatch of a
100k-request fleet simulation.  This script shows the middle path: a
:class:`ScheduleTemplate` caches one jitter-free executed run per
``(batch, seq_len, chip config)`` and reprices jittered dispatches with a
single vectorized Gaussian draw, and a :class:`TieredServiceModel` routes
a seeded Bernoulli fraction of dispatches through those templates while
the rest stay analytic.  The result: executed-fidelity tail latencies at
analytic-simulation throughput, with a ``sample_fraction`` dial from 0
(pure analytic, bit-identical to the unwrapped model) to 1 (every
dispatch executed).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.serving import TieredServingAnalyzer
from repro.core.accelerator import STARAccelerator
from repro.core.schedule_cache import build_schedule_template
from repro.nn.bert import BERT_BASE, BertWorkload
from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    PoissonArrivals,
    ShardedServingSimulator,
    StarServiceModel,
    TieredServiceModel,
)


def main() -> None:
    # 1. the template itself: one cold executed run, then microsecond draws
    accelerator = STARAccelerator(schedule="executed")
    workload = BertWorkload(config=BERT_BASE, seq_len=128).with_batch(8)
    start = time.perf_counter()
    template = build_schedule_template(accelerator, workload)
    cold = time.perf_counter() - start
    rng = np.random.default_rng(0)
    start = time.perf_counter()
    draws = [template.resample(rng, 0.3) for _ in range(1000)]
    warm = (time.perf_counter() - start) / 1000
    print(f"cold executed schedule: {cold * 1e3:.1f} ms; "
          f"cached resample: {warm * 1e6:.1f} us ({cold / warm:.0f}x)")
    print(f"jitter-free base {template.base_latency_s * 1e3:.2f} ms, "
          f"sigma=0.3 p99 draw {np.percentile(draws, 99) * 1e3:.2f} ms\n")

    # 2. a tiered fleet: 5% of dispatches priced off the executed template
    base = StarServiceModel(seq_len=128)
    tiered = TieredServiceModel(
        base, sample_fraction=0.05, jitter_sigma=0.3, seed=0
    )
    fleet = ChipFleet(tiered, num_chips=4)
    batcher = DynamicBatcher(max_batch_size=8, max_wait_s=2e-3)
    capacity = 4 * 8 / base.batch_latency_s(8, 128)
    simulator = ShardedServingSimulator(fleet, batcher, num_shards=4).prewarm(
        batch_sizes=range(1, 9), seq_lens=[128]
    )
    report = simulator.run_poisson(
        PoissonArrivals(0.6 * capacity, seq_len=128, seed=1), 100_000
    )
    print("100k requests, 4-chip STAR fleet, 5% executed sampling:")
    print(report.format_table(), "\n")

    # 3. the fidelity dial: p99 vs sampled fraction (E13's table)
    print("fidelity sweep — sampled executed fraction vs tail latency:")
    print(TieredServingAnalyzer().format_table())
    print("\n(reproduce under the experiment runner: "
          "python -m repro.experiments e13)")


if __name__ == "__main__":
    main()
