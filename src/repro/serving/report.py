"""The serving report: what a load test of the simulated fleet produces.

Everything a capacity planner asks of a serving system in one frozen
result object — sustained throughput, mean/tail latency (p50/p95/p99 via
:func:`repro.utils.stats.percentile`), queueing behaviour, per-chip
utilization, batching efficacy and energy per query — plus the raw
per-request and per-batch records the property tests and Little's-law
cross-checks consume.

Fault-injected runs (:mod:`repro.serving.faults`) extend the report with
an availability ledger: chip failures and their downtime, retries, shed
and abandoned requests, goodput against offered traffic, and the wasted
energy of batches lost mid-service.  All fault fields default to empty,
so healthy-path reports are bit-identical to the pre-fault format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.stats import percentile

__all__ = [
    "RequestRecord",
    "BatchRecord",
    "DropRecord",
    "RetryRecord",
    "FailureRecord",
    "ServingReport",
]


@dataclass(frozen=True)
class RequestRecord:
    """Timestamps of one request's trip through the serving system.

    ``attempts`` counts failed service attempts before the completing one:
    0 for every request of a healthy run.
    """

    index: int
    arrival_s: float
    dispatch_s: float
    completion_s: float
    chip: int
    batch_index: int
    batch_size: int
    seq_len: int
    attempts: int = 0

    @property
    def wait_s(self) -> float:
        """Time spent queued before a chip started the request's batch."""
        return self.dispatch_s - self.arrival_s

    @property
    def latency_s(self) -> float:
        """End-to-end request latency (arrival to completion)."""
        return self.completion_s - self.arrival_s


@dataclass(frozen=True)
class BatchRecord:
    """One dispatched batch and what serving it cost."""

    index: int
    chip: int
    dispatch_s: float
    completion_s: float
    size: int
    seq_len: int
    energy_j: float

    @property
    def service_s(self) -> float:
        """Chip occupancy of the batch."""
        return self.completion_s - self.dispatch_s


#: Reasons a request can leave the system without completing.
DROP_REASONS = ("queue_full", "deadline", "retries_exhausted")


@dataclass(frozen=True)
class DropRecord:
    """One request leaving the system unserved (shed or abandoned).

    ``reason`` is one of :data:`DROP_REASONS` — ``"queue_full"`` (bounded
    queue rejected the arrival), ``"deadline"`` (expired before service or
    before a viable retry) or ``"retries_exhausted"`` (lost its last
    allowed attempt to a chip failure).
    """

    index: int
    time_s: float
    reason: str
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.reason not in DROP_REASONS:
            raise ValueError(
                f"reason must be one of {DROP_REASONS}, got {self.reason!r}"
            )


@dataclass(frozen=True)
class RetryRecord:
    """One lost request re-entering the queue after a chip failure."""

    index: int
    attempt: int
    failure_s: float
    reenqueue_s: float

    @property
    def backoff_s(self) -> float:
        """Back-off the request spent outside the queue."""
        return self.reenqueue_s - self.failure_s


@dataclass(frozen=True)
class FailureRecord:
    """One chip failure–repair cycle and what it cost.

    ``repaired_s`` is when the chip re-entered service (failure time plus
    detection and the tile-bank reprogramming); ``lost_requests`` is the
    size of the in-flight batch the failure killed (0 if the chip was
    idle) and ``wasted_energy_j`` the energy that batch had already burned.
    """

    chip: int
    fail_s: float
    repaired_s: float
    lost_requests: int = 0
    wasted_energy_j: float = 0.0

    @property
    def down_s(self) -> float:
        """Downtime of this failure–repair cycle."""
        return self.repaired_s - self.fail_s


@dataclass(frozen=True)
class ServingReport:
    """Result of one serving simulation run.

    ``chip_idle_power_w`` is each chip's standby power; the report charges
    it over the chip's un-occupied share of the makespan, so
    :attr:`energy_per_query_j` stays honest at low load (a nearly idle
    fleet still burns leakage).  The active-only figure survives as
    :attr:`active_energy_per_query_j`.  An empty tuple (the default) means
    no idle power was modelled.
    """

    num_chips: int
    requests: tuple[RequestRecord, ...]
    batches: tuple[BatchRecord, ...]
    chip_busy_s: tuple[float, ...]
    queue_peak: int
    chip_idle_power_w: tuple[float, ...] = ()
    shed: tuple[DropRecord, ...] = ()
    abandoned: tuple[DropRecord, ...] = ()
    retries: tuple[RetryRecord, ...] = ()
    failures: tuple[FailureRecord, ...] = ()
    deadline_s: float | None = None
    faults_enabled: bool = False

    # ------------------------------------------------------------------ #
    # volume and rates
    # ------------------------------------------------------------------ #
    @property
    def num_requests(self) -> int:
        """Requests that completed service."""
        return len(self.requests)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion."""
        if not self.requests:
            return 0.0
        start = min(r.arrival_s for r in self.requests)
        end = max(r.completion_s for r in self.requests)
        return end - start

    @property
    def offered_rate_rps(self) -> float:
        """Mean arrival rate observed over the run."""
        if len(self.requests) < 2:
            return 0.0
        arrivals = sorted(r.arrival_s for r in self.requests)
        span = arrivals[-1] - arrivals[0]
        return (len(arrivals) - 1) / span if span > 0 else float("inf")

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of makespan."""
        span = self.makespan_s
        return self.num_requests / span if span > 0 else float("inf")

    # ------------------------------------------------------------------ #
    # latency and queueing
    # ------------------------------------------------------------------ #
    def latency_percentile_s(self, q: float) -> float:
        """Interpolated end-to-end latency percentile.

        Computed over *completed* requests — under load shedding this is
        the completion-conditional percentile (NaN with no completions).
        """
        if not self.requests:
            return float("nan")
        return float(percentile([r.latency_s for r in self.requests], q))

    @property
    def p50_latency_s(self) -> float:
        """Median end-to-end latency."""
        return self.latency_percentile_s(50.0)

    @property
    def p95_latency_s(self) -> float:
        """95th-percentile end-to-end latency."""
        return self.latency_percentile_s(95.0)

    @property
    def p99_latency_s(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.latency_percentile_s(99.0)

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency (completed requests; NaN with none)."""
        if not self.requests:
            return float("nan")
        return float(np.mean([r.latency_s for r in self.requests]))

    @property
    def mean_wait_s(self) -> float:
        """Mean queueing delay before dispatch (completed requests)."""
        if not self.requests:
            return float("nan")
        return float(np.mean([r.wait_s for r in self.requests]))

    @property
    def mean_queue_depth(self) -> float:
        """Time-averaged number of queued (not yet dispatched) requests.

        By Little's law applied to the waiting room this is the summed
        waiting time divided by the observation window.
        """
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(r.wait_s for r in self.requests) / span

    @property
    def mean_in_system(self) -> float:
        """Time-averaged number of requests in the system (queued or running)."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(r.latency_s for r in self.requests) / span

    # ------------------------------------------------------------------ #
    # batching, occupancy and energy
    # ------------------------------------------------------------------ #
    @property
    def num_batches(self) -> int:
        """Batches dispatched over the run."""
        return len(self.batches)

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per dispatched batch."""
        if not self.batches:
            return 0.0
        return self.num_requests / self.num_batches

    def chip_utilization(self, chip: int) -> float:
        """Busy fraction of one chip over the makespan."""
        span = self.makespan_s
        return self.chip_busy_s[chip] / span if span > 0 else 0.0

    @property
    def mean_utilization(self) -> float:
        """Mean busy fraction across the fleet."""
        span = self.makespan_s
        if span <= 0:
            return 0.0
        return sum(self.chip_busy_s) / (self.num_chips * span)

    @property
    def energy_j(self) -> float:
        """Total active energy spent serving all batches."""
        return sum(batch.energy_j for batch in self.batches)

    @property
    def idle_energy_j(self) -> float:
        """Leakage / standby energy over the fleet's un-occupied time.

        Each chip pays its idle power for the share of the makespan it was
        not serving a batch; zero when no idle power was modelled.
        """
        if not self.chip_idle_power_w:
            return 0.0
        span = self.makespan_s
        return sum(
            power * max(0.0, span - busy)
            for power, busy in zip(self.chip_idle_power_w, self.chip_busy_s)
        )

    @property
    def wasted_energy_j(self) -> float:
        """Energy burned by in-flight batches that a chip failure killed."""
        return sum(f.wasted_energy_j for f in self.failures)

    @property
    def total_energy_j(self) -> float:
        """Active plus idle energy over the run, including wasted work."""
        return self.energy_j + self.idle_energy_j + self.wasted_energy_j

    @property
    def active_energy_per_query_j(self) -> float:
        """Active-only energy per completed request (the pre-idle-power figure)."""
        if not self.requests:
            return 0.0
        return self.energy_j / self.num_requests

    @property
    def energy_per_query_j(self) -> float:
        """Energy per completed request including idle/leakage power.

        The serving-side figure of merit: at high load it approaches the
        active-only figure, at low load the makespan's leakage dominates —
        which is exactly what a capacity planner needs to see.
        """
        if not self.requests:
            return 0.0
        return self.total_energy_j / self.num_requests

    # ------------------------------------------------------------------ #
    # availability, shedding and goodput (fault-injected runs)
    # ------------------------------------------------------------------ #
    @property
    def num_shed(self) -> int:
        """Requests rejected by admission control or deadline shedding."""
        return len(self.shed)

    @property
    def num_abandoned(self) -> int:
        """Requests lost to failures that exhausted retries or deadlines."""
        return len(self.abandoned)

    @property
    def num_retries(self) -> int:
        """Retry re-entries after chip failures (one request may retry twice)."""
        return len(self.retries)

    @property
    def num_offered(self) -> int:
        """Every request that entered the system: completed + shed + abandoned."""
        return self.num_requests + self.num_shed + self.num_abandoned

    @property
    def completion_fraction(self) -> float:
        """Completed share of offered traffic (1.0 for a healthy run)."""
        offered = self.num_offered
        return self.num_requests / offered if offered else 0.0

    @property
    def num_good(self) -> int:
        """Completed requests that also met their deadline.

        Without a deadline every completion is good — goodput equals
        throughput, as on the healthy path.
        """
        if self.deadline_s is None:
            return self.num_requests
        return sum(
            1 for r in self.requests if r.latency_s <= self.deadline_s
        )

    @property
    def goodput_rps(self) -> float:
        """Deadline-meeting completions per second of makespan."""
        span = self.makespan_s
        return self.num_good / span if span > 0 else float("inf")

    @property
    def num_failures(self) -> int:
        """Chip failure events over the run."""
        return len(self.failures)

    @property
    def num_lost_batches(self) -> int:
        """Failures that killed an in-flight batch."""
        return sum(1 for f in self.failures if f.lost_requests > 0)

    def chip_downtime_s(self, chip: int) -> float:
        """Downtime of one chip clipped to the observation window.

        The window is the makespan (first arrival to last completion);
        repair intervals extending past the last completion only count
        their in-window share, so availability never goes negative from a
        repair that outlives the run.
        """
        if not self.requests:
            return 0.0
        start = min(r.arrival_s for r in self.requests)
        end = max(r.completion_s for r in self.requests)
        down = 0.0
        for f in self.failures:
            if f.chip == chip:
                down += max(0.0, min(f.repaired_s, end) - max(f.fail_s, start))
        return down

    def chip_availability(self, chip: int) -> float:
        """Healthy fraction of one chip over the observation window."""
        span = self.makespan_s
        if span <= 0:
            return 1.0
        return 1.0 - self.chip_downtime_s(chip) / span

    @property
    def fleet_availability(self) -> float:
        """Mean healthy fraction across the fleet (1.0 for a healthy run)."""
        span = self.makespan_s
        if span <= 0:
            return 1.0
        down = sum(self.chip_downtime_s(chip) for chip in range(self.num_chips))
        return 1.0 - down / (self.num_chips * span)

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        """Dictionary form used by the benchmark harness."""
        summary = {
            "num_requests": float(self.num_requests),
            "offered_rate_rps": self.offered_rate_rps,
            "throughput_rps": self.throughput_rps,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "mean_wait_s": self.mean_wait_s,
            "mean_queue_depth": self.mean_queue_depth,
            "queue_peak": float(self.queue_peak),
            "mean_batch_size": self.mean_batch_size,
            "mean_utilization": self.mean_utilization,
            "energy_per_query_j": self.energy_per_query_j,
            "active_energy_per_query_j": self.active_energy_per_query_j,
        }
        if self.faults_enabled:
            summary.update(
                {
                    "num_offered": float(self.num_offered),
                    "num_shed": float(self.num_shed),
                    "num_abandoned": float(self.num_abandoned),
                    "num_retries": float(self.num_retries),
                    "num_failures": float(self.num_failures),
                    "goodput_rps": self.goodput_rps,
                    "completion_fraction": self.completion_fraction,
                    "fleet_availability": self.fleet_availability,
                    "wasted_energy_j": self.wasted_energy_j,
                }
            )
        return summary

    def format_availability(self) -> str:
        """Printable availability section of a fault-injected run."""
        lines = [
            f"offered -> completed    : {self.num_offered} -> {self.num_requests} "
            f"(shed {self.num_shed}, abandoned {self.num_abandoned}, "
            f"retries {self.num_retries})",
            f"goodput                 : {self.goodput_rps:.1f} req/s "
            f"({self.completion_fraction * 100:.1f}% of offered completed)",
            f"fleet availability      : {self.fleet_availability * 100:.2f}% "
            f"({self.num_failures} failure(s), {self.num_lost_batches} lost "
            f"batch(es), wasted {self.wasted_energy_j * 1e3:.2f} mJ)",
        ]
        if self.failures:
            downtime = " ".join(
                f"{self.chip_downtime_s(chip) * 1e3:.1f}"
                for chip in range(self.num_chips)
            )
            lines.append(f"per-chip downtime (ms)  : {downtime}")
        return "\n".join(lines)

    def format_table(self) -> str:
        """Printable one-run summary."""
        lines = [
            f"requests / batches      : {self.num_requests} / {self.num_batches} "
            f"(mean batch {self.mean_batch_size:.2f})",
            f"offered / served rate   : {self.offered_rate_rps:.1f} / "
            f"{self.throughput_rps:.1f} req/s",
            f"latency p50/p95/p99     : {self.p50_latency_s * 1e6:.1f} / "
            f"{self.p95_latency_s * 1e6:.1f} / {self.p99_latency_s * 1e6:.1f} us",
            f"mean wait / queue depth : {self.mean_wait_s * 1e6:.1f} us / "
            f"{self.mean_queue_depth:.2f} (peak {self.queue_peak})",
            f"fleet utilization       : {self.mean_utilization * 100:.1f}% "
            f"over {self.num_chips} chip(s)",
            f"energy per query        : {self.energy_per_query_j * 1e6:.2f} uJ "
            f"(active only {self.active_energy_per_query_j * 1e6:.2f} uJ)",
        ]
        if self.faults_enabled:
            lines.append(self.format_availability())
        return "\n".join(lines)
