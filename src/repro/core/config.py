"""Configuration of the STAR accelerator and its softmax engine.

The defaults follow Section III of the paper:

* MatMul engine: 128 x 128 RRAM crossbars with 5-bit ADCs (after
  ReTransformer);
* Softmax engine: one 512 x 18 CAM/SUB crossbar, and 256 x 18 CAM, LUT and
  VMM crossbars, supporting up to 9-bit data (the MRPC format) with the sign
  bit of ``x_i - x_max`` removed;
* LUT quantisation ``m = 4`` fractional bits (Fig. 2).

The per-dataset softmax precision (8 / 9 / 7 bits) is selected by passing
the corresponding :class:`~repro.utils.fixed_point.FixedPointFormat`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.rram.noise import IDEAL_NOISE, NoiseConfig
from repro.utils.fixed_point import CNEWS_FORMAT, FixedPointFormat

__all__ = ["SoftmaxEngineConfig", "MatMulEngineConfig", "PipelineConfig", "STARConfig"]


@dataclass(frozen=True)
class SoftmaxEngineConfig:
    """Sizing of the RRAM softmax engine.

    Attributes
    ----------
    fmt:
        Fixed-point format of the softmax inputs (sign dropped after the
        ``x_i - x_max`` subtraction).  The CAM/LUT/VMM crossbars must have at
        least ``2 ** fmt.magnitude_bits`` rows.
    cam_sub_rows:
        Rows of the CAM/SUB crossbar (512 in the paper, enough for 9-bit
        signed scores).
    exp_rows:
        Rows of the exponential unit's CAM / LUT / VMM crossbars (256 in the
        paper).  Difference codes beyond ``exp_rows`` produce no CAM match
        and therefore contribute ``exp() = 0`` — which is numerically exact,
        because ``round(e^{-d} * 2^m)`` already rounds to zero long before
        the stored range runs out.
    lut_frac_bits:
        ``m`` in the LUT entry rule ``round(e^x * 2^m) * 2^-m`` (Fig. 2).
    lut_value_bits:
        Width of the stored LUT / VMM words (18 columns in the paper).
    counter_bits:
        Width of each per-level counter (must count up to the sequence
        length; 10 bits covers 1024).
    divider_bits:
        Width of the final normalisation divider.
    cam_search_error_rate:
        Probability that one CAM/SUB matchline search flips its decision
        (sense-margin failures under device noise).  When non-zero the
        engine simulates matchline vectors row by row; the vectorized batch
        backend requires 0.  The exponential unit's CAM is kept ideal on the
        functional path regardless — a flip there is equivalent to an analog
        LUT/VMM perturbation, which :attr:`noise` already models.
    cam_seed:
        Seed of the CAM error-injection random stream.
    noise:
        RRAM non-idealities injected into the crossbars (ideal by default).
    """

    fmt: FixedPointFormat = CNEWS_FORMAT
    cam_sub_rows: int = 512
    exp_rows: int = 256
    lut_frac_bits: int = 4
    lut_value_bits: int = 18
    counter_bits: int = 10
    divider_bits: int = 16
    cam_search_error_rate: float = 0.0
    cam_seed: int = 0
    noise: NoiseConfig = field(default_factory=lambda: IDEAL_NOISE)

    def __post_init__(self) -> None:
        if self.cam_sub_rows < self.fmt.num_levels:
            raise ValueError(
                f"cam_sub_rows={self.cam_sub_rows} cannot store the "
                f"{self.fmt.num_levels} levels of format {self.fmt}"
            )
        if self.exp_rows < 2:
            raise ValueError(f"exp_rows must be >= 2, got {self.exp_rows}")
        if self.lut_frac_bits < 1:
            raise ValueError(f"lut_frac_bits must be >= 1, got {self.lut_frac_bits}")
        if self.lut_value_bits < self.lut_frac_bits + 1:
            raise ValueError(
                "lut_value_bits must exceed lut_frac_bits "
                f"({self.lut_value_bits} vs {self.lut_frac_bits})"
            )
        if self.counter_bits < 4:
            raise ValueError(f"counter_bits must be >= 4, got {self.counter_bits}")
        if self.divider_bits < 8:
            raise ValueError(f"divider_bits must be >= 8, got {self.divider_bits}")
        if not 0.0 <= self.cam_search_error_rate <= 1.0:
            raise ValueError(
                "cam_search_error_rate must lie in [0, 1], "
                f"got {self.cam_search_error_rate}"
            )

    @property
    def cam_bits(self) -> int:
        """Stored codeword width of the CAM crossbars (the score magnitude bits)."""
        return self.fmt.magnitude_bits

    @property
    def max_sequence_length(self) -> int:
        """Largest row length the counters can accumulate without overflow."""
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class MatMulEngineConfig:
    """Sizing of the ReTransformer-style MatMul engine.

    Attributes
    ----------
    crossbar_rows / crossbar_cols:
        Tile dimensions (128 x 128 in the paper).
    adc_bits:
        Column ADC resolution (5 bits, following ReTransformer).
    dac_bits / input_bits:
        Wordline DAC resolution and streamed input precision.
    weight_bits:
        Weight precision mapped onto the cells (8 bits, two 4-level cells
        per weight pair handled inside the crossbar model).
    bits_per_cell:
        Programmable bits per RRAM cell (2 is the usual multi-level-cell
        assumption; raise it in functional demos that need finer weights).
    num_tiles:
        Number of crossbar tiles provisioned per engine.
    allow_duplication:
        Replicate stationary operands across idle tiles so every tile can
        work on a different input row of the same GEMM (the standard weight
        duplication of ISAAC-style designs).
    noise:
        RRAM non-idealities (ideal by default).
    """

    crossbar_rows: int = 128
    crossbar_cols: int = 128
    adc_bits: int = 5
    dac_bits: int = 1
    input_bits: int = 8
    weight_bits: int = 8
    bits_per_cell: int = 2
    num_tiles: int = 96
    allow_duplication: bool = True
    noise: NoiseConfig = field(default_factory=lambda: IDEAL_NOISE)

    def __post_init__(self) -> None:
        if self.crossbar_rows < 1 or self.crossbar_cols < 1:
            raise ValueError("crossbar dimensions must be positive")
        if not 1 <= self.adc_bits <= 16:
            raise ValueError(f"adc_bits must be in [1, 16], got {self.adc_bits}")
        if self.num_tiles < 1:
            raise ValueError(f"num_tiles must be >= 1, got {self.num_tiles}")
        if self.weight_bits < 1:
            raise ValueError(f"weight_bits must be >= 1, got {self.weight_bits}")
        if not 1 <= self.bits_per_cell <= 6:
            raise ValueError(f"bits_per_cell must be in [1, 6], got {self.bits_per_cell}")


@dataclass(frozen=True)
class PipelineConfig:
    """Granularity and overhead of the attention pipeline.

    Attributes
    ----------
    granularity:
        ``"vector"`` — STAR's fine-grained pipeline where each score row
        flows to the softmax engine as soon as the MatMul engine produces
        it; ``"operand"`` — the coarse pipeline of prior work where softmax
        waits for the complete score matrix.
    stage_handoff_s:
        Control/buffering overhead of forwarding one vector between stages.
    """

    granularity: str = "vector"
    stage_handoff_s: float = 2.0e-9

    def __post_init__(self) -> None:
        if self.granularity not in ("vector", "operand"):
            raise ValueError(
                f"granularity must be 'vector' or 'operand', got {self.granularity!r}"
            )
        if self.stage_handoff_s < 0:
            raise ValueError(f"stage_handoff_s must be >= 0, got {self.stage_handoff_s}")


@dataclass(frozen=True)
class STARConfig:
    """Top-level STAR accelerator configuration."""

    softmax: SoftmaxEngineConfig = field(default_factory=SoftmaxEngineConfig)
    matmul: MatMulEngineConfig = field(default_factory=MatMulEngineConfig)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)

    def with_format(self, fmt: FixedPointFormat) -> "STARConfig":
        """A copy of this configuration using a different softmax precision."""
        softmax = replace(self.softmax, fmt=fmt)
        return STARConfig(softmax=softmax, matmul=self.matmul, pipeline=self.pipeline)
