"""Batch-aware cost accounting for the MatMul engine's tile bank.

Up to now every layer of the stack priced a batch as
``batch_size x single_request``: the analytical GEMM formulas took an
``m = batch * seq_len`` shape and scaled linearly, so the serving
simulator's :class:`~repro.serving.batcher.DynamicBatcher` amortised only
dispatch overhead.  The weight-stationary RRAM design the paper builds on
has three real batching levers, and this module makes them first-class
pricing dimensions:

* **Operand-programming reuse** — a stationary operand is written into the
  tile bank *once per dispatched batch* and every request's rows stream
  through the same cells.  Under the :attr:`~BatchCostModel.weight_policy`
  ``"streamed"`` (the tile bank is far too small to hold all of BERT-base,
  so operands are written on demand, PipeLayer-style time multiplexing)
  this one-time programming cost amortises across the batch — the PIM
  analogue of a GPU amortising weight reads.  ``"resident"`` keeps the
  paper's idealisation that weights are programmed at model-load time and
  never charged per inference.
* **Activation-buffer double-buffering** — while a tile's shared ADCs read
  out row ``i``, the wordline DACs already drive row ``i + 1`` from the
  second buffer bank.  Rows of *other* requests in the batch are always
  independent of the row in flight, so they stream at the overlapped cycle
  (:meth:`~repro.rram.crossbar.AnalogCrossbar.overlapped_vmm_latency_s`);
  the first request's rows are conservatively charged the serialized cycle
  (its rows interleave with dependent attention stages), which keeps
  ``batch_size = 1`` pricing bit-identical to the pre-batching model.
* **Inter-request tile parallelism** — spare tiles in the bank hold other
  requests' attention operands, so concurrent head-streams grow with the
  batch until the tile budget (``ChipResources.num_tiles``) caps them.

All three levers reduce *latency* only: energy is conversions and cell
accesses, which overlap does not remove, so batch energy never decreases
when the batch grows, and amortised programming energy is exactly one
:meth:`~repro.core.matmul_engine.MatMulEngine.programming_energy_j` per
operand per batch.

:class:`BatchGEMMExecutor` executes the same batched GEMM as a discrete-
event simulation on :mod:`repro.core.events` — every tile-level VMM task is
dispatched to the first tile that frees up — and cross-validates the closed
forms the same way PR 3's pipeline executor validated the batch-1 attention
formulas: exact when the task count divides the tile count, within a wave
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.events import ARRIVE, FREE, EventLoop, ServerPool
from repro.utils.validation import require_positive

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.core.matmul_engine import GEMMShape, MatMulEngine

__all__ = [
    "WEIGHT_POLICIES",
    "BatchCostModel",
    "DEFAULT_BATCH_COST",
    "BatchGEMMCost",
    "ExecutedGEMMSchedule",
    "BatchGEMMExecutor",
]

#: Valid values of :attr:`BatchCostModel.weight_policy`.
WEIGHT_POLICIES = ("resident", "streamed")


@dataclass(frozen=True)
class BatchCostModel:
    """Which batching levers the cost formulas apply.

    Attributes
    ----------
    weight_policy:
        ``"resident"`` — stationary weights live in the tiles permanently
        (programmed at model load, never charged per batch): the paper's
        idealisation, and the pre-batching behaviour.  ``"streamed"`` —
        the bank is time-multiplexed, so each GEMM's operand is programmed
        once per dispatched batch and the write cost amortises over the
        batch's requests.
    double_buffering:
        Overlap the input staging (DAC drive + settle + S&H) of one row
        with the ADC readout of the previous row for rows beyond the first
        request's.  Latency-only; never changes ``batch_size = 1``.
    inter_request_parallelism:
        Let concurrent attention head-streams grow with the batch (spare
        tiles hold other requests' ``K^T`` / ``V`` operands), capped by the
        tile budget.  Disabled, streams stay pinned at their batch-1
        allocation — the strictly serialized baseline.
    """

    weight_policy: str = "resident"
    double_buffering: bool = True
    inter_request_parallelism: bool = True

    def __post_init__(self) -> None:
        if self.weight_policy not in WEIGHT_POLICIES:
            raise ValueError(
                f"weight_policy must be one of {WEIGHT_POLICIES}, "
                f"got {self.weight_policy!r}"
            )

    @property
    def charges_programming(self) -> bool:
        """Whether stationary-operand programming is charged per batch."""
        return self.weight_policy == "streamed"

    @classmethod
    def legacy(cls) -> "BatchCostModel":
        """The pre-batching pricing: every lever off except stream growth.

        Reproduces the original model exactly at every batch size — batch
        service time is linear in the streamed rows — and serves as the
        "linear model" baseline the serving sweeps compare against.
        """
        return cls(
            weight_policy="resident",
            double_buffering=False,
            inter_request_parallelism=True,
        )

    @classmethod
    def streamed(cls) -> "BatchCostModel":
        """The honest serving configuration: every batching lever on."""
        return cls(
            weight_policy="streamed",
            double_buffering=True,
            inter_request_parallelism=True,
        )

    def maintenance_reprogram_latency_s(
        self, engine: "MatMulEngine", shapes: Sequence["GEMMShape"]
    ) -> float:
        """Latency of rewriting every stationary operand in ``shapes``.

        A chip repair (a crashed chip, stuck/drifted devices remapped) must
        rewrite its tile bank's conductance state from scratch, so — unlike
        per-batch pricing — the programming cost is charged regardless of
        :attr:`weight_policy`: even ``"resident"`` weights are gone after a
        failure.  This is what makes fault repair a physically grounded
        maintenance event rather than a magic downtime constant.
        """
        return sum(engine.programming_latency_s(shape) for shape in shapes)

    def maintenance_reprogram_energy_j(
        self, engine: "MatMulEngine", shapes: Sequence["GEMMShape"]
    ) -> float:
        """Energy of the same maintenance rewrite (all cells repriced)."""
        return sum(engine.programming_energy_j(shape) for shape in shapes)

    def wake_refresh_latency_s(self, engine: "MatMulEngine") -> float:
        """Peripheral re-bias after deep power-down — *not* a reprogram.

        RRAM conductances are non-volatile, so a woken chip keeps its tile
        bank's weights (the whole point of parking RRAM chips instead of
        DRAM-backed ones); what must settle before the first VMM is the
        analog periphery — DAC/ADC bias points and sense-amp references —
        which every tile refreshes in parallel with one dummy VMM cycle.
        Contrast :meth:`maintenance_reprogram_latency_s`, the full rewrite
        a *failed* chip pays because its conductance state is suspect.
        """
        return engine.tile_vmm_latency_s()

    def wake_refresh_energy_j(self, engine: "MatMulEngine") -> float:
        """Energy of the same re-bias: the whole bank's dummy VMM cycle."""
        return engine.config.num_tiles * engine.tile_vmm_energy_j()


#: Default pricing: batch-1 bit-identical to the pre-batching model, with
#: the latency-only levers active for larger batches.
DEFAULT_BATCH_COST = BatchCostModel()


@dataclass(frozen=True)
class BatchGEMMCost:
    """Price of one batched GEMM, split into one-time and per-row parts.

    ``shape`` is the *per-request* GEMM; the batch streams
    ``batch_size * shape.m`` activation rows through one programmed
    operand.  ``single_latency_s`` / ``single_energy_j`` are the same
    GEMM's batch-1 cost under the same :class:`BatchCostModel`, so the
    amortisation ratios compare against an honest linear baseline.
    """

    shape: "GEMMShape"
    batch_size: int
    programming_latency_s: float
    programming_energy_j: float
    streaming_latency_s: float
    streaming_energy_j: float
    single_latency_s: float
    single_energy_j: float

    @property
    def latency_s(self) -> float:
        """Total service latency of the batched GEMM."""
        return self.programming_latency_s + self.streaming_latency_s

    @property
    def energy_j(self) -> float:
        """Total energy of the batched GEMM."""
        return self.programming_energy_j + self.streaming_energy_j

    @property
    def latency_per_request_s(self) -> float:
        """Amortised per-request latency."""
        return self.latency_s / self.batch_size

    @property
    def energy_per_request_j(self) -> float:
        """Amortised per-request energy."""
        return self.energy_j / self.batch_size

    @property
    def linear_latency_s(self) -> float:
        """What the batch would cost if priced as ``batch x single_request``."""
        return self.batch_size * self.single_latency_s

    @property
    def amortisation(self) -> float:
        """Batch latency over the linear price (1.0 = no batching benefit)."""
        linear = self.linear_latency_s
        return self.latency_s / linear if linear > 0 else 1.0


@dataclass(frozen=True)
class ExecutedGEMMSchedule:
    """Result of event-driven execution of one batched GEMM.

    The measured counterpart of :class:`BatchGEMMCost`'s latency: the
    streaming makespan comes from simulated tile-task completions, with the
    serial operand programming (when charged) as a deterministic prologue.
    """

    shape: "GEMMShape"
    batch_size: int
    num_tiles: int
    num_tasks: int
    programming_latency_s: float
    streaming_makespan_s: float
    busy_s: float

    @property
    def total_latency_s(self) -> float:
        """Programming prologue plus the simulated streaming makespan."""
        return self.programming_latency_s + self.streaming_makespan_s

    @property
    def utilization(self) -> float:
        """Tile busy fraction over the streaming makespan."""
        span = self.num_tiles * self.streaming_makespan_s
        return self.busy_s / span if span > 0 else 0.0


class BatchGEMMExecutor:
    """Event-driven executor of one batched GEMM over the tile bank.

    Each of the ``tiles_for(shape) * m * batch`` tile-level VMMs is an
    independent task (partial sums are buffered, so the tasks of one row
    need not be simultaneous); tasks are dispatched FIFO in request order
    to whichever tile frees first, exactly the
    :class:`~repro.core.events.ServerPool` discipline the attention
    executor and the serving simulator use.  Under ``double_buffering``
    the first request's tasks are served at the serialized VMM latency and
    later requests' tasks at the overlapped latency, mirroring the closed
    form's split.
    """

    def __init__(
        self,
        engine: "MatMulEngine",
        cost_model: BatchCostModel | None = None,
    ) -> None:
        self.engine = engine
        self.cost_model = cost_model or DEFAULT_BATCH_COST

    def execute(
        self,
        shape: "GEMMShape",
        batch_size: int = 1,
        tiles_available: int | None = None,
    ) -> ExecutedGEMMSchedule:
        """Simulate the batched GEMM and report its measured schedule."""
        require_positive(batch_size, "batch_size")
        engine = self.engine
        model = self.cost_model
        tiles = tiles_available if tiles_available is not None else engine.config.num_tiles
        require_positive(tiles, "tiles_available")
        parallel = engine.gemm_parallel_tiles(shape, tiles)
        tasks_per_request = engine.gemm_tile_vmms(shape)
        num_tasks = tasks_per_request * batch_size

        full = engine.tile_vmm_latency_s()
        overlapped = (
            engine.tile_vmm_overlapped_latency_s() if model.double_buffering else full
        )
        programming = (
            engine.programming_latency_s(shape) if model.charges_programming else 0.0
        )

        loop = EventLoop()
        pool = ServerPool("tiles", parallel)
        for tile in range(parallel):
            loop.schedule(0.0, ARRIVE, tile)

        # tiles never starve while tasks remain (the whole batch is queued
        # at t = 0), so each tile's completion time is an exact product sum
        # of its served task counts — no cumulative floating-point drift,
        # and the uniform batch-1 case lands bit-identically on the
        # closed-form ``waves * tile_vmm_latency`` arithmetic
        full_served = [0] * parallel
        overlapped_served = [0] * parallel
        dispatched = 0
        makespan = 0.0
        while loop:
            time, kind, (tile,) = loop.pop()
            if kind == FREE:
                pool.release(tile)
            if dispatched >= num_tasks:
                continue
            # the first request's rows interleave with dependent stages and
            # stream serialized; later requests' rows are double-buffered
            if dispatched < tasks_per_request:
                full_served[tile] += 1
                service = full
            else:
                overlapped_served[tile] += 1
                service = overlapped
            dispatched += 1
            pool.acquire(tile)
            pool.occupy(service)
            if overlapped_served[tile]:
                end = full_served[tile] * full + overlapped_served[tile] * overlapped
            else:
                end = full_served[tile] * full
            makespan = max(makespan, end)
            loop.schedule(end, FREE, tile)

        return ExecutedGEMMSchedule(
            shape=shape,
            batch_size=batch_size,
            num_tiles=parallel,
            num_tasks=num_tasks,
            programming_latency_s=programming,
            streaming_makespan_s=makespan,
            busy_s=pool.busy_s,
        )
