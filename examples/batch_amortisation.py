"""Batch-aware costs: batching that actually batches compute.

Run with:  python examples/batch_amortisation.py

The tile bank is far too small to hold BERT-base, so a real serving chip
time-multiplexes it: every dispatched batch programs each layer's
stationary operands once and streams all requests' rows through them,
double-buffering the activation DACs behind the shared-ADC readout for
every row beyond the first request.  That makes batch service time
genuinely sublinear — and this script shows the consequence at every
level:

1. GEMM level — the one-time programming vs per-row streaming split of a
   single projection GEMM across batch sizes;
2. chip level — whole-model BERT-base batch service time against the
   linear ``batch x single`` price;
3. fleet level — raising the ``DynamicBatcher`` cap at fixed offered load
   now raises sustained throughput at bounded p99, which the linearized
   pricing of the same hardware cannot do.
"""

from __future__ import annotations

from repro.core.accelerator import STARAccelerator
from repro.core.batch_cost import BatchCostModel
from repro.nn.bert import BertWorkload
from repro.serving import (
    ChipFleet,
    DynamicBatcher,
    LinearServiceModel,
    PoissonArrivals,
    ServingSimulator,
    StarServiceModel,
)

BATCHES = (1, 4, 16, 32)


def main() -> None:
    star = STARAccelerator(batch_cost=BatchCostModel.streamed())
    engine = star.matmul_engine

    # 1. one projection GEMM: programming amortises, streaming does not
    shape = BertWorkload(seq_len=128).projection_shape()
    print("--- one 128x768 @ 768x768 projection GEMM (streamed weights) ---")
    print(f"{'batch':>6} {'program (us)':>13} {'stream (us)':>12} {'total (us)':>11} {'x linear':>9}")
    for batch in BATCHES:
        cost = engine.gemm_batch_cost(shape, batch_size=batch, cost_model=star.batch_cost)
        print(
            f"{batch:>6d} {cost.programming_latency_s * 1e6:>13.2f} "
            f"{cost.streaming_latency_s * 1e6:>12.2f} {cost.latency_s * 1e6:>11.2f} "
            f"{cost.amortisation:>9.3f}"
        )

    # 2. whole-model batch pricing vs the linear baseline
    print("\n--- BERT-base (L=128) whole-model batch service time ---")
    single = star.request_timing(BertWorkload(seq_len=128)).latency_s
    print(f"{'batch':>6} {'service (ms)':>13} {'per-req (ms)':>13} {'x linear':>9}")
    for batch in BATCHES:
        service = star.request_timing(BertWorkload(seq_len=128, batch_size=batch)).latency_s
        print(
            f"{batch:>6d} {service * 1e3:>13.3f} {service / batch * 1e3:>13.3f} "
            f"{service / (batch * single):>9.3f}"
        )

    # 3. serving consequence: larger batcher caps buy throughput at
    #    bounded p99 — only under batch-aware pricing
    model = StarServiceModel(accelerator=star)
    amortised_capacity = 4 * 32 / model.batch_latency_s(32, 128)
    rate = 0.8 * amortised_capacity
    requests = PoissonArrivals(rate_rps=rate, seq_len=128, seed=3).generate(3000)
    print(
        f"\n--- 4-chip fleet, {rate:.0f} req/s offered "
        f"(80% of amortised batch-32 capacity) ---"
    )
    print(f"{'cap':>5} {'pricing':>12} {'served (r/s)':>13} {'p99 (ms)':>9} {'mean batch':>11}")
    for cap in (1, 8, 32):
        batcher = DynamicBatcher(max_batch_size=cap, max_wait_s=2e-3)
        for label, priced in (("batch-aware", model), ("linear", LinearServiceModel(model))):
            report = ServingSimulator(ChipFleet(priced, num_chips=4), batcher).run(requests)
            print(
                f"{cap:>5d} {label:>12} {report.throughput_rps:>13.1f} "
                f"{report.p99_latency_s * 1e3:>9.2f} {report.mean_batch_size:>11.2f}"
            )


if __name__ == "__main__":
    main()
